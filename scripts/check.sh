#!/usr/bin/env sh
# Repo-wide hygiene gate: formatting, lints (warnings are errors), tests.
# Run from anywhere; operates on the workspace root.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> all checks passed"
