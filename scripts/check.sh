#!/usr/bin/env sh
# Repo-wide hygiene gate: formatting, lints (warnings are errors), tests.
# Run from anywhere; operates on the workspace root.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> smoke: examples"
cargo run -q --release --example quickstart > /dev/null
cargo run -q --release --example check_misuse > /dev/null

echo "==> smoke: profile conv --metrics --trace"
smoke_trace="$(mktemp /tmp/check-trace.XXXXXX.json)"
cargo run -q --release -p bench --bin profile -- \
    conv --p 4 --steps 5 --metrics --trace "$smoke_trace" > /dev/null
test -s "$smoke_trace" || { echo "empty trace output: $smoke_trace"; exit 1; }
cargo run -q --release -p bench --bin jsoncheck -- "$smoke_trace"
rm -f "$smoke_trace"

echo "==> smoke: profile conv --efficiency --timeline --windows 8"
smoke_metrics="$(mktemp /tmp/check-metrics.XXXXXX.json)"
cargo run -q --release -p bench --bin profile -- \
    conv --p 8 --steps 10 --efficiency --timeline /tmp/tl.csv --windows 8 \
    --metrics-json "$smoke_metrics" > /dev/null
test -s /tmp/tl.csv || { echo "empty timeline CSV: /tmp/tl.csv"; exit 1; }
head -1 /tmp/tl.csv | grep -q '^window,start_ns' \
    || { echo "timeline CSV missing header"; exit 1; }
cargo run -q --release -p bench --bin jsoncheck -- "$smoke_metrics"
grep -q '"timeline"' "$smoke_metrics" \
    || { echo "metrics JSON missing timeline object"; exit 1; }
rm -f "$smoke_metrics" /tmp/tl.csv

echo "==> smoke: what-if counterfactual replay"
# The noisy p=64 convolution run flags HALO as degrading; replaying the
# same trace with jitter removed must recover the noise-free verdict
# ("no degrading sections") without re-running the program.
smoke_whatif="$(mktemp /tmp/check-whatif.XXXXXX.json)"
whatif_out="$(cargo run -q --release -p bench --bin profile -- \
    conv --p 64 --steps 100 --machine nehalem --seed 1 --efficiency \
    --what-if jitter=0 --what-if net=ideal,jitter=0 \
    --metrics-json "$smoke_whatif")"
cargo run -q --release -p bench --bin jsoncheck -- "$smoke_whatif"
grep -q '"whatif":\[{"spec":"jitter=0"' "$smoke_whatif" \
    || { echo "metrics JSON missing whatif scenarios"; exit 1; }
grep -q '"config":{"machine":{' "$smoke_whatif" \
    || { echo "metrics JSON missing machine config block"; exit 1; }
echo "$whatif_out" | grep -q 'HALO.*DEGRADING: late-sender wait' \
    || { echo "what-if: noisy baseline should flag HALO as degrading"; exit 1; }
echo "$whatif_out" | grep -q 'jitter=0.*all steady' \
    || { echo "what-if: jitter=0 replay should recover the steady verdict"; exit 1; }
rm -f "$smoke_whatif"

echo "==> smoke: dynamic verification (mpiverify)"
# The verify_race example asserts both directions in-process (confirmed
# race with replayable divergent witnesses; benign wildcard exhaustively
# refuted) and writes the combined verdict JSON for validation here.
smoke_verdicts="$(mktemp /tmp/check-verdicts.XXXXXX.json)"
cargo run -q --release --example verify_race -- "$smoke_verdicts" > /dev/null
cargo run -q --release -p bench --bin jsoncheck -- "$smoke_verdicts"
grep -q '"verdict":"confirmed"' "$smoke_verdicts" \
    || { echo "verify_race: expected a confirmed verdict"; exit 1; }
grep -q '"verdict":"refuted"' "$smoke_verdicts" \
    || { echo "verify_race: expected a refuted verdict"; exit 1; }
rm -f "$smoke_verdicts"

# The racy workload must exit 1 with a confirmed verdict and a witness
# pair whose replays produce observably different metrics JSON.
smoke_verify="$(mktemp /tmp/check-verify.XXXXXX.json)"
wprefix="$(mktemp -u /tmp/check-witness.XXXXXX)"
verify_status=0
cargo run -q --release -p bench --bin profile -- \
    race --p 4 --verify --verify-json "$smoke_verify" \
    --verify-witnesses "$wprefix" > /dev/null 2>&1 || verify_status=$?
test "$verify_status" -eq 1 \
    || { echo "profile race --verify: expected exit 1, got $verify_status"; exit 1; }
cargo run -q --release -p bench --bin jsoncheck -- "$smoke_verify"
grep -q '"verdict":"confirmed"' "$smoke_verify" \
    || { echo "profile race --verify: expected a confirmed verdict"; exit 1; }
cargo run -q --release -p bench --bin profile -- \
    race --p 4 --replay-schedule "$wprefix.a.json" \
    --metrics-json /tmp/check-replay-a.json > /dev/null
cargo run -q --release -p bench --bin profile -- \
    race --p 4 --replay-schedule "$wprefix.b.json" \
    --metrics-json /tmp/check-replay-b.json > /dev/null
cargo run -q --release -p bench --bin jsoncheck -- /tmp/check-replay-a.json
cargo run -q --release -p bench --bin jsoncheck -- /tmp/check-replay-b.json
if cmp -s /tmp/check-replay-a.json /tmp/check-replay-b.json; then
    echo "witness replays produced identical metrics JSON (divergence lost)"
    exit 1
fi
rm -f "$smoke_verify" "$wprefix.a.json" "$wprefix.b.json" \
    /tmp/check-replay-a.json /tmp/check-replay-b.json

# The wildcard-free paper workload must come back clean (exit 0, no
# confirmed verdicts) under the same budget.
smoke_clean="$(mktemp /tmp/check-verify-conv.XXXXXX.json)"
cargo run -q --release -p bench --bin profile -- \
    conv --p 4 --steps 5 --verify --verify-json "$smoke_clean" > /dev/null
cargo run -q --release -p bench --bin jsoncheck -- "$smoke_clean"
if grep -q '"verdict":"confirmed"' "$smoke_clean"; then
    echo "profile conv --verify: unexpected confirmed race"
    exit 1
fi
rm -f "$smoke_clean"

echo "==> smoke: study service (cold sweep, warm cache, report, gc)"
smoke_store="$(mktemp -d /tmp/check-study.XXXXXX)"
smoke_grid="workload=conv machine=nehalem_cluster p=1,4,8 steps=5 seeds=0,1"
cold_out="$(cargo run -q --release -p mpistudy --bin study -- \
    run --store "$smoke_store" --grid "$smoke_grid" --jobs 2)"
echo "$cold_out" | grep -q '6 cells, 6 executed, 0 cached' \
    || { echo "study run (cold): unexpected stats: $cold_out"; exit 1; }
# The warm rerun must be served entirely from the store: zero simulations.
warm_out="$(cargo run -q --release -p mpistudy --bin study -- \
    run --store "$smoke_store" --grid "$smoke_grid" --jobs 2)"
echo "$warm_out" | grep -q '6 cells, 0 executed, 6 cached (100% hit)' \
    || { echo "study run (warm): expected 100% cache hits: $warm_out"; exit 1; }
smoke_report="$(mktemp /tmp/check-study-report.XXXXXX.json)"
cargo run -q --release -p mpistudy --bin study -- \
    report --store "$smoke_store" --json > "$smoke_report"
cargo run -q --release -p bench --bin jsoncheck -- "$smoke_report"
grep -q '"schema": "mpistudy-report-v1"' "$smoke_report" \
    || { echo "study report: missing schema marker"; exit 1; }
cargo run -q --release -p mpistudy --bin study -- gc --store "$smoke_store" \
    | grep -q '6 intact, 0 removed' \
    || { echo "study gc: store should be intact"; exit 1; }
rm -rf "$smoke_store" "$smoke_report"

echo "==> smoke: DES scale, conv --p 4096 (time-boxed)"
smoke_scale="$(mktemp /tmp/check-scale.XXXXXX.json)"
scale_start="$(date +%s)"
cargo run -q --release -p bench --bin profile -- \
    conv --p 4096 --steps 10 --engine des --machine ideal \
    --metrics --metrics-json "$smoke_scale" > /dev/null
scale_secs="$(( $(date +%s) - scale_start ))"
# Generous box: the run itself takes ~1 s; anything near a minute means
# the event queue has regressed to thread-like scaling.
test "$scale_secs" -le 60 \
    || { echo "p=4096 DES smoke took ${scale_secs}s (> 60s box)"; exit 1; }
cargo run -q --release -p bench --bin jsoncheck -- "$smoke_scale"
rm -f "$smoke_scale"

echo "==> smoke: streaming summary, conv --p 4096 --summary (time-boxed)"
# At p >= 1024 the profiler switches to summary-only recording: bounded
# sketches instead of a full event log. The summary JSON must validate
# and carry the edge-eviction counter that proves the top-k cap engaged.
smoke_summary="$(mktemp /tmp/check-summary.XXXXXX.json)"
summary_start="$(date +%s)"
cargo run -q --release -p bench --bin profile -- \
    conv --p 4096 --steps 10 --engine des --machine ideal \
    --summary --summary-json "$smoke_summary" > /dev/null
summary_secs="$(( $(date +%s) - summary_start ))"
test "$summary_secs" -le 60 \
    || { echo "p=4096 summary smoke took ${summary_secs}s (> 60s box)"; exit 1; }
cargo run -q --release -p bench --bin jsoncheck -- "$smoke_summary"
grep -q '"dropped_edges"' "$smoke_summary" \
    || { echo "summary JSON missing dropped_edges counter"; exit 1; }
grep -q '"schema":"mpisim-summary-v1"' "$smoke_summary" \
    || { echo "summary JSON missing schema marker"; exit 1; }
rm -f "$smoke_summary"

echo "==> all checks passed"
