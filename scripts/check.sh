#!/usr/bin/env sh
# Repo-wide hygiene gate: formatting, lints (warnings are errors), tests.
# Run from anywhere; operates on the workspace root.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> smoke: examples"
cargo run -q --release --example quickstart > /dev/null
cargo run -q --release --example check_misuse > /dev/null

echo "==> smoke: profile conv --metrics --trace"
smoke_trace="$(mktemp /tmp/check-trace.XXXXXX.json)"
cargo run -q --release -p bench --bin profile -- \
    conv --p 4 --steps 5 --metrics --trace "$smoke_trace" > /dev/null
test -s "$smoke_trace" || { echo "empty trace output: $smoke_trace"; exit 1; }
cargo run -q --release -p bench --bin jsoncheck -- "$smoke_trace"
rm -f "$smoke_trace"

echo "==> smoke: profile conv --efficiency --timeline --windows 8"
smoke_metrics="$(mktemp /tmp/check-metrics.XXXXXX.json)"
cargo run -q --release -p bench --bin profile -- \
    conv --p 8 --steps 10 --efficiency --timeline /tmp/tl.csv --windows 8 \
    --metrics-json "$smoke_metrics" > /dev/null
test -s /tmp/tl.csv || { echo "empty timeline CSV: /tmp/tl.csv"; exit 1; }
head -1 /tmp/tl.csv | grep -q '^window,start_ns' \
    || { echo "timeline CSV missing header"; exit 1; }
cargo run -q --release -p bench --bin jsoncheck -- "$smoke_metrics"
grep -q '"timeline"' "$smoke_metrics" \
    || { echo "metrics JSON missing timeline object"; exit 1; }
rm -f "$smoke_metrics" /tmp/tl.csv

echo "==> all checks passed"
