#!/usr/bin/env sh
# Repo-wide hygiene gate: formatting, lints (warnings are errors), tests.
# Run from anywhere; operates on the workspace root.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> smoke: examples"
cargo run -q --release --example quickstart > /dev/null
cargo run -q --release --example check_misuse > /dev/null

echo "==> smoke: profile conv --metrics --trace"
smoke_trace="$(mktemp /tmp/check-trace.XXXXXX.json)"
cargo run -q --release -p bench --bin profile -- \
    conv --p 4 --steps 5 --metrics --trace "$smoke_trace" > /dev/null
test -s "$smoke_trace" || { echo "empty trace output: $smoke_trace"; exit 1; }
rm -f "$smoke_trace"

echo "==> all checks passed"
