//! Exporter integration tests: every JSON document the toolchain emits
//! must be well-formed (checked by the shared `common::check_json`
//! validator), and every metrics artifact must be byte-stable across
//! identical seeded runs — the property that makes profile diffs and
//! golden files trustworthy.

mod common;

use common::assert_json;
use mpi_sections::{
    classify, critpath, CommRecorder, PvarRegistry, SectionRuntime, TraceTool, VerifyMode,
};
use mpisim::{Src, TagSel, WorldBuilder};
use std::sync::Arc;

struct Observed {
    trace: Arc<TraceTool>,
    pvar: Arc<PvarRegistry>,
    recorder: Arc<CommRecorder>,
    makespan_secs: f64,
}

/// A small fixed-seed workload exercising sections, p2p (with skew, so
/// both late-sender and late-receiver states occur) and collectives, with
/// the whole observability stack attached.
fn observed_run(seed: u64) -> Observed {
    let sections = SectionRuntime::new(VerifyMode::Active);
    let trace = TraceTool::new();
    let pvar = PvarRegistry::new();
    let recorder = CommRecorder::new();
    sections.attach(trace.clone());
    let s = sections.clone();
    let report = WorldBuilder::new(4)
        .machine(machine::presets::nehalem_cluster()) // noisy: seed matters
        .seed(seed)
        .tool(sections.clone())
        .tool(trace.clone())
        .tool(pvar.clone())
        .tool(recorder.clone())
        .run(move |p| {
            let world = p.world();
            s.scoped(p, &world, "COMPUTE", |p| {
                p.advance_secs(0.01 * (p.world_rank() + 1) as f64);
            });
            s.scoped(p, &world, "RING", |p| {
                let world = p.world();
                let next = (p.world_rank() + 1) % p.world_size();
                let prev = (p.world_rank() + p.world_size() - 1) % p.world_size();
                world.send(p, next, 0, &[0u8; 128]);
                let _ = world.recv::<u8>(p, Src::Rank(prev), TagSel::Is(0));
            });
            s.scoped(p, &world, "SYNC", |p| {
                let world = p.world();
                world.barrier(p);
            });
        })
        .expect("observed run failed");
    Observed {
        trace,
        pvar,
        recorder,
        makespan_secs: report.makespan_secs(),
    }
}

#[test]
fn chrome_trace_is_valid_json_with_metadata_and_flows() {
    let o = observed_run(1);
    let json = o.trace.to_chrome_trace();
    assert_json(&json, "chrome trace");
    // Labeled rank rows.
    assert!(json.contains("\"process_name\""), "missing metadata");
    assert!(json.contains("\"name\":\"rank 3\""));
    assert!(json.contains("\"name\":\"MPI_COMM_WORLD\""));
    // One flow arrow (s/f pair) per ring message.
    assert_eq!(json.matches("\"ph\":\"s\"").count(), 4);
    assert_eq!(json.matches("\"ph\":\"f\"").count(), 4);
}

#[test]
fn metrics_documents_are_valid_json() {
    let o = observed_run(1);
    assert_json(&o.pvar.snapshot().to_json(), "pvar snapshot");
    let log = o.recorder.freeze();
    assert_json(&classify(&log).to_json(), "wait-state report");
    assert_json(&critpath::extract(&log).to_json(), "critical path");
}

#[test]
fn diagnostic_report_is_valid_json() {
    let diag = mpisim::diag::Diagnostic {
        kind: mpisim::diag::DiagnosticKind::CollectiveDivergence {
            position: 3,
            expected: "barrier".into(),
            observed: "bcast \"quoted\"".into(),
        },
        severity: mpisim::diag::Severity::Error,
        ranks: vec![0, 2],
        comm: Some(mpisim::CommId::WORLD),
        message: "ranks disagree on collective #3\nnewline and \"quotes\"".into(),
    };
    assert_json(&mpisim::diag::report_json(&[diag]), "diagnostic report");
    assert_json(&mpisim::diag::report_json(&[]), "empty diagnostic report");
}

#[test]
fn flamegraph_folded_stacks_are_stable_across_identical_runs() {
    let a = observed_run(7).trace.to_folded();
    let b = observed_run(7).trace.to_folded();
    assert!(!a.is_empty());
    assert_eq!(a, b, "folded stacks differ between identical seeded runs");
    // Every line is `path weight` with a strictly positive integer weight.
    for line in a.lines() {
        let (path, weight) = line.rsplit_once(' ').expect("line shape");
        assert!(path.starts_with("rank "), "{line}");
        assert!(weight.parse::<u64>().expect("weight") > 0, "{line}");
    }
}

#[test]
fn metrics_json_is_byte_identical_across_identical_seeds() {
    let render = |o: &Observed| {
        let log = o.recorder.freeze();
        format!(
            "{}\n{}\n{}",
            o.pvar.snapshot().to_json(),
            classify(&log).to_json(),
            critpath::extract(&log).to_json()
        )
    };
    let a = render(&observed_run(42));
    let b = render(&observed_run(42));
    assert_eq!(a, b);
    // And a different seed actually changes the timings it contains.
    let c = render(&observed_run(43));
    assert_ne!(a, c, "seed should influence the virtual timings");
}

#[test]
fn critical_path_is_bounded_by_makespan() {
    let o = observed_run(1);
    let cp = critpath::extract(&o.recorder.freeze());
    assert!(cp.length_ns > 0);
    assert!(
        cp.length_secs() <= o.makespan_secs + 1e-9,
        "critical path {} exceeds makespan {}",
        cp.length_secs(),
        o.makespan_secs
    );
    // Rank 3 computes longest before the ring; its compute is on the path.
    assert!(cp.per_rank[3] > 0);
}

#[test]
fn wait_states_cover_the_expected_classes() {
    let o = observed_run(1);
    let report = classify(&o.recorder.freeze());
    let totals = report.totals();
    // The skewed COMPUTE phase makes the ring skew-sensitive and the
    // barrier catches the stragglers: both classes must show up.
    assert!(
        totals.late_sender_ns + totals.late_receiver_ns > 0,
        "no p2p wait states found"
    );
    assert!(totals.coll_wait_ns > 0, "no collective wait found");
    assert!(report.per_section.contains_key("RING"));
    assert!(report.per_section.contains_key("SYNC"));
}
