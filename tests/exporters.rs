//! Exporter integration tests: every JSON document the toolchain emits
//! must be well-formed (checked by the shared `common::check_json`
//! validator), and every metrics artifact must be byte-stable across
//! identical seeded runs — the property that makes profile diffs and
//! golden files trustworthy.

mod common;

use common::assert_json;
use mpi_sections::timeline::{build, Windowing};
use mpi_sections::{
    classify, critpath, CommRecorder, PvarRegistry, SectionRuntime, TraceTool, VerifyMode,
};
use mpisim::{Src, TagSel, WorldBuilder};
use std::sync::Arc;

struct Observed {
    trace: Arc<TraceTool>,
    pvar: Arc<PvarRegistry>,
    recorder: Arc<CommRecorder>,
    makespan_secs: f64,
}

/// A small fixed-seed workload exercising sections, p2p (with skew, so
/// both late-sender and late-receiver states occur) and collectives, with
/// the whole observability stack attached.
fn observed_run(seed: u64) -> Observed {
    let sections = SectionRuntime::new(VerifyMode::Active);
    let trace = TraceTool::new();
    let pvar = PvarRegistry::new();
    let recorder = CommRecorder::new();
    sections.attach(trace.clone());
    let s = sections.clone();
    let report = WorldBuilder::new(4)
        .machine(machine::presets::nehalem_cluster()) // noisy: seed matters
        .seed(seed)
        .tool(sections.clone())
        .tool(trace.clone())
        .tool(pvar.clone())
        .tool(recorder.clone())
        .run(move |p| {
            let world = p.world();
            s.scoped(p, &world, "COMPUTE", |p| {
                p.advance_secs(0.01 * (p.world_rank() + 1) as f64);
            });
            s.scoped(p, &world, "RING", |p| {
                let world = p.world();
                let next = (p.world_rank() + 1) % p.world_size();
                let prev = (p.world_rank() + p.world_size() - 1) % p.world_size();
                world.send(p, next, 0, &[0u8; 128]);
                let _ = world.recv::<u8>(p, Src::Rank(prev), TagSel::Is(0));
            });
            s.scoped(p, &world, "SYNC", |p| {
                let world = p.world();
                world.barrier(p);
            });
        })
        .expect("observed run failed");
    Observed {
        trace,
        pvar,
        recorder,
        makespan_secs: report.makespan_secs(),
    }
}

#[test]
fn chrome_trace_is_valid_json_with_metadata_and_flows() {
    let o = observed_run(1);
    let json = o.trace.to_chrome_trace();
    assert_json(&json, "chrome trace");
    // Labeled rank rows.
    assert!(json.contains("\"process_name\""), "missing metadata");
    assert!(json.contains("\"name\":\"rank 3\""));
    assert!(json.contains("\"name\":\"MPI_COMM_WORLD\""));
    // One flow arrow (s/f pair) per ring message.
    assert_eq!(json.matches("\"ph\":\"s\"").count(), 4);
    assert_eq!(json.matches("\"ph\":\"f\"").count(), 4);
}

#[test]
fn metrics_documents_are_valid_json() {
    let o = observed_run(1);
    assert_json(&o.pvar.snapshot().to_json(), "pvar snapshot");
    let log = o.recorder.freeze();
    assert_json(&classify(&log).to_json(), "wait-state report");
    assert_json(&critpath::extract(&log).to_json(), "critical path");
}

#[test]
fn diagnostic_report_is_valid_json() {
    let diag = mpisim::diag::Diagnostic {
        kind: mpisim::diag::DiagnosticKind::CollectiveDivergence {
            position: 3,
            expected: "barrier".into(),
            observed: "bcast \"quoted\"".into(),
        },
        severity: mpisim::diag::Severity::Error,
        ranks: vec![0, 2],
        comm: Some(mpisim::CommId::WORLD),
        message: "ranks disagree on collective #3\nnewline and \"quotes\"".into(),
    };
    assert_json(&mpisim::diag::report_json(&[diag]), "diagnostic report");
    assert_json(&mpisim::diag::report_json(&[]), "empty diagnostic report");
}

#[test]
fn flamegraph_folded_stacks_are_stable_across_identical_runs() {
    let a = observed_run(7).trace.to_folded();
    let b = observed_run(7).trace.to_folded();
    assert!(!a.is_empty());
    assert_eq!(a, b, "folded stacks differ between identical seeded runs");
    // Every line is `path weight` with a strictly positive integer weight.
    for line in a.lines() {
        let (path, weight) = line.rsplit_once(' ').expect("line shape");
        assert!(path.starts_with("rank "), "{line}");
        assert!(weight.parse::<u64>().expect("weight") > 0, "{line}");
    }
}

#[test]
fn metrics_json_is_byte_identical_across_identical_seeds() {
    let render = |o: &Observed| {
        let log = o.recorder.freeze();
        format!(
            "{}\n{}\n{}",
            o.pvar.snapshot().to_json(),
            classify(&log).to_json(),
            critpath::extract(&log).to_json()
        )
    };
    let a = render(&observed_run(42));
    let b = render(&observed_run(42));
    assert_eq!(a, b);
    // And a different seed actually changes the timings it contains.
    let c = render(&observed_run(43));
    assert_ne!(a, c, "seed should influence the virtual timings");
}

#[test]
fn critical_path_is_bounded_by_makespan() {
    let o = observed_run(1);
    let cp = critpath::extract(&o.recorder.freeze());
    assert!(cp.length_ns > 0);
    assert!(
        cp.length_secs() <= o.makespan_secs + 1e-9,
        "critical path {} exceeds makespan {}",
        cp.length_secs(),
        o.makespan_secs
    );
    // Rank 3 computes longest before the ring; its compute is on the path.
    assert!(cp.per_rank[3] > 0);
}

#[test]
fn timeline_window_sums_recompose_pvar_section_totals() {
    // The recomposition invariant: every point event lands in exactly one
    // window, so per-window counters summed over all windows must equal
    // the whole-run per-section pvar deltas. (Pvar attribution is
    // *inclusive* — nested activity also counts into enclosing sections —
    // while the timeline attributes to the innermost section only, so the
    // comparison holds for leaf sections; the fixture's sections are all
    // flat under MPI_MAIN.)
    let o = observed_run(5);
    let tl = build(&o.recorder.freeze(), &Windowing::Fixed(9));
    let totals = tl.section_totals();
    let snap = o.pvar.snapshot();
    let mut compared = 0;
    for (key, c) in &snap.per_section {
        if key.label == mpi_sections::MPI_MAIN {
            continue;
        }
        let ws = totals
            .get(&key.label)
            .unwrap_or_else(|| panic!("timeline missing section {}", key.label));
        assert_eq!(ws.sent_msgs, c.sent_msgs, "{}", key.label);
        assert_eq!(ws.sent_bytes, c.sent_bytes, "{}", key.label);
        assert_eq!(ws.recv_msgs, c.recv_msgs, "{}", key.label);
        assert_eq!(ws.recv_bytes, c.recv_bytes, "{}", key.label);
        assert_eq!(ws.coll_exits, c.coll_calls, "{}", key.label);
        compared += 1;
    }
    assert!(compared >= 3, "expected COMPUTE/RING/SYNC, saw {compared}");
    // The ring moved real traffic, so the invariant is not vacuous.
    assert_eq!(totals["RING"].sent_msgs, 4);
    assert_eq!(totals["RING"].sent_bytes, 4 * 128);
    assert_eq!(totals["SYNC"].coll_exits, 4);
}

#[test]
fn timeline_exports_are_byte_identical_across_identical_seeds() {
    let render = |o: &Observed| {
        let tl = build(&o.recorder.freeze(), &Windowing::Fixed(6));
        format!("{}\n{}", tl.to_csv(), tl.to_json())
    };
    let a = render(&observed_run(42));
    let b = render(&observed_run(42));
    assert_eq!(a, b, "windowed metrics differ between identical seeds");
    let c = render(&observed_run(43));
    assert_ne!(a, c, "seed should influence the windowed timings");
}

#[test]
fn timeline_and_trend_documents_are_valid_json() {
    let o = observed_run(1);
    let tl = build(&o.recorder.freeze(), &Windowing::Fixed(5));
    assert_json(&tl.to_json(), "timeline");
    let trends = speedup::trend::detect(&tl, &speedup::trend::TrendConfig::default());
    assert_json(&speedup::trend::to_json(&trends), "trend report");
    // Counter lanes keep the Chrome trace valid JSON too.
    assert_json(
        &o.trace.to_chrome_trace_with(Some(&tl)),
        "chrome trace with counter lanes",
    );
}

#[test]
fn wait_states_cover_the_expected_classes() {
    let o = observed_run(1);
    let report = classify(&o.recorder.freeze());
    let totals = report.totals();
    // The skewed COMPUTE phase makes the ring skew-sensitive and the
    // barrier catches the stragglers: both classes must show up.
    assert!(
        totals.late_sender_ns + totals.late_receiver_ns > 0,
        "no p2p wait states found"
    );
    assert!(totals.coll_wait_ns > 0, "no collective wait found");
    assert!(report.per_section.contains_key("RING"));
    assert!(report.per_section.contains_key("SYNC"));
}
