//! Cross-tool consistency: every tool shipped with `mpi-sections`
//! (profiler, trace, histogram, context, Pcontrol adapter) observes the
//! same event stream, so their views of one run must agree with each
//! other. This is the invariant a real PMPI tool chain relies on.

use mpisim::WorldBuilder;
use speedup_repro::lulesh::{run_lulesh, LuleshConfig, SECTION_LABELS};
use speedup_repro::sections::{
    ContextTool, HistogramTool, SectionProfiler, SectionRuntime, TraceTool, VerifyMode, MPI_MAIN,
};
use std::sync::Arc;

#[test]
fn all_tools_agree_on_a_lulesh_run() {
    let nranks = 8;
    let iterations = 4;
    let sections = SectionRuntime::new(VerifyMode::Active);
    let profiler = SectionProfiler::new();
    let trace = TraceTool::new();
    let histogram = HistogramTool::new();
    let context = ContextTool::new();
    sections.attach(profiler.clone());
    sections.attach(trace.clone());
    sections.attach(histogram.clone());
    sections.attach(context.clone());

    let s = sections.clone();
    let cfg = Arc::new(LuleshConfig::timing(6, iterations, 2));
    WorldBuilder::new(nranks)
        .machine(machine::presets::knl())
        .seed(21)
        .tool(sections.clone())
        .run(move |p| {
            run_lulesh(p, &s, &cfg);
        })
        .unwrap();

    let profile = profiler.snapshot();
    let spans = trace.spans();
    let hists = histogram.snapshot();

    // 1. The trace has exactly one span per (instance, rank) of every
    //    section the profiler counted.
    for label in SECTION_LABELS.iter().chain([MPI_MAIN].iter()) {
        let stats = profile
            .get_world(label)
            .unwrap_or_else(|| panic!("{label}"));
        let expected = stats.instances * nranks as u64;
        let span_count = spans.iter().filter(|e| e.label == *label).count() as u64;
        assert_eq!(span_count, expected, "span count for {label}");

        // 2. The histogram folded in the same number of events, and its
        //    exact-sum mean matches the profiler's total.
        let hist = &hists[*label];
        assert_eq!(hist.total, expected, "histogram count for {label}");
        let hist_total_secs = hist.mean_secs() * hist.total as f64;
        assert!(
            (hist_total_secs - stats.total_own_secs).abs() < 1e-6,
            "{label}: histogram total {hist_total_secs} vs profiler {}",
            stats.total_own_secs
        );

        // 3. Extremes agree with the per-instance records.
        let min_own = stats
            .per_instance
            .iter()
            .map(|i| i.min_own.as_nanos())
            .min()
            .unwrap();
        let max_own = stats
            .per_instance
            .iter()
            .map(|i| i.max_own.as_nanos())
            .max()
            .unwrap();
        assert_eq!(hist.min_ns, min_own, "{label} min");
        assert_eq!(hist.max_ns, max_own, "{label} max");
    }

    // 4. Span nesting in the trace is consistent: every span lies within
    //    its rank's MPI_MAIN span.
    for rank in 0..nranks {
        let main = spans
            .iter()
            .find(|e| e.rank == rank && e.label == MPI_MAIN)
            .expect("MPI_MAIN span");
        for e in spans.iter().filter(|e| e.rank == rank) {
            assert!(e.enter_ns >= main.enter_ns && e.exit_ns <= main.exit_ns);
        }
    }

    // 5. The run ended cleanly: no rank is inside any section.
    for rank in 0..nranks {
        assert!(
            context.context_of(rank).is_empty(),
            "rank {rank} still inside {:?}",
            context.context_of(rank)
        );
    }

    // 6. Per-rank distributions sum to the profiler totals.
    for label in SECTION_LABELS {
        let stats = profile.get_world(label).unwrap();
        let dist_sum: f64 = stats.per_rank_own.iter().sum();
        assert!(
            (dist_sum - stats.total_own_secs).abs() < 1e-6,
            "{label}: per-rank sum {dist_sum} vs {}",
            stats.total_own_secs
        );
    }
}
