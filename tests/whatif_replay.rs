//! Acceptance tests for the counterfactual replay engine: the identity
//! replay must be bitwise faithful, the fully idealized replay must
//! converge to the critical-path length, and removing jitter from the
//! noisy convolution run must recover the noise-free trend verdict the
//! trend detector pins in `timeline_trend.rs`.

use bench::whatif::{analyze, machine_config_json, to_json};
use mpi_sections::whatif::{parse, WhatIfSpec};
use mpi_sections::{classify, critpath, replay, CommLog, CommRecorder, SectionRuntime, VerifyMode};
use mpi_sections::{timeline, Windowing};
use mpisim::WorldBuilder;
use speedup::trend::{detect, TrendConfig};
use std::sync::Arc;

fn conv_log(machine: machine::MachineModel, p: usize, steps: usize, seed: u64) -> CommLog {
    let sections = SectionRuntime::new(VerifyMode::Active);
    let recorder = CommRecorder::new();
    let s = sections.clone();
    let cfg = Arc::new(convolution::ConvConfig::paper(steps));
    WorldBuilder::new(p)
        .machine(machine)
        .seed(seed)
        .tool(sections.clone())
        .tool(recorder.clone())
        .run(move |p| {
            convolution::run_convolution(p, &s, &cfg);
        })
        .expect("conv run failed");
    recorder.freeze()
}

fn lulesh_log(machine: machine::MachineModel, p: usize, iters: usize, seed: u64) -> CommLog {
    let sections = SectionRuntime::new(VerifyMode::Active);
    let recorder = CommRecorder::new();
    let s = sections.clone();
    let size = lulesh_proxy::size_for(lulesh_proxy::PAPER_TOTAL_ELEMENTS, p).expect("cube p");
    let cfg = Arc::new(lulesh_proxy::LuleshConfig::timing(size, iters, 1));
    WorldBuilder::new(p)
        .machine(machine)
        .seed(seed)
        .tool(sections.clone())
        .tool(recorder.clone())
        .run(move |p| {
            lulesh_proxy::run_lulesh(p, &s, &cfg);
        })
        .expect("lulesh run failed");
    recorder.freeze()
}

/// Identity replay reproduces the recorded run bitwise: same makespan,
/// same wait-state report (JSON byte equality), same critical path.
#[test]
fn identity_replay_is_bitwise_faithful() {
    let m = machine::presets::nehalem_cluster();
    let log = conv_log(m.clone(), 8, 40, 1);
    let re = replay(&log, &m, 1, &WhatIfSpec::identity()).expect("identity replay");
    assert_eq!(re.makespan_ns(), log.makespan_ns());
    assert_eq!(classify(&re).to_json(), classify(&log).to_json());
    assert_eq!(
        critpath::extract(&re).to_json(),
        critpath::extract(&log).to_json()
    );
    let tl = timeline::build(&re, &Windowing::Fixed(8));
    let tl0 = timeline::build(&log, &Windowing::Fixed(8));
    assert_eq!(tl.to_json(), tl0.to_json());
}

/// Fully idealized replay (free network, zero jitter) converges to the
/// critical-path length of the re-timed trace: with every priced
/// component at zero, the makespan *is* the longest dependency chain.
#[test]
fn ideal_replay_converges_to_critical_path() {
    let spec = parse("net=ideal,jitter=0").expect("spec");
    let cases: Vec<(&str, CommLog, machine::MachineModel)> = vec![
        (
            "conv p=8",
            conv_log(machine::presets::nehalem_cluster(), 8, 40, 1),
            machine::presets::nehalem_cluster(),
        ),
        (
            "conv p=64",
            conv_log(machine::presets::nehalem_cluster(), 64, 40, 1),
            machine::presets::nehalem_cluster(),
        ),
        (
            "lulesh p=8",
            lulesh_log(machine::presets::knl(), 8, 10, 1),
            machine::presets::knl(),
        ),
        (
            "lulesh p=64",
            lulesh_log(machine::presets::knl(), 64, 10, 1),
            machine::presets::knl(),
        ),
    ];
    for (name, log, m) in cases {
        let re = replay(&log, &m, 1, &spec).expect("ideal replay");
        let cp = critpath::extract(&re);
        let makespan = re.makespan_ns();
        let diff = makespan.abs_diff(cp.length_ns);
        assert!(
            diff <= 2,
            "{name}: idealized makespan {makespan} != critical path {} (diff {diff})",
            cp.length_ns
        );
    }
}

/// The PR 5 pinned scenario, counterfactually: the noisy p=64 run flags
/// HALO as degrading (late-sender); replaying the same trace with the
/// jitter removed must recover the noise-free verdict — no degrading
/// sections — without re-running the program.
#[test]
fn jitter_free_replay_recovers_noise_free_trend_verdict() {
    let m = machine::presets::nehalem_cluster();
    let log = conv_log(m.clone(), 64, 100, 1);

    let baseline = timeline::build(&log, &Windowing::Fixed(8));
    let trends = detect(&baseline, &TrendConfig::default());
    let halo = trends
        .iter()
        .find(|t| t.label == convolution::SECTION_HALO)
        .expect("HALO trend");
    assert!(halo.degrading, "noisy baseline must flag HALO: {halo:?}");

    let spec = parse("jitter=0").expect("spec");
    let re = replay(&log, &m, 1, &spec).expect("jitter-free replay");
    let tl = timeline::build(&re, &Windowing::Fixed(8));
    let trends = detect(&tl, &TrendConfig::default());
    assert!(
        trends.iter().all(|t| !t.degrading),
        "jitter-free replay still flags: {:?}",
        trends
            .iter()
            .filter(|t| t.degrading)
            .map(|t| (&t.label, t.slope))
            .collect::<Vec<_>>()
    );
    // The HALO trajectory is genuinely analyzed and flat, not skipped.
    let halo = trends
        .iter()
        .find(|t| t.label == convolution::SECTION_HALO)
        .expect("HALO trend");
    assert!(!halo.degrading, "{halo:?}");
    // Removing noise can only help: the prediction is not slower.
    assert!(re.makespan_ns() <= log.makespan_ns());
}

/// The what-if report is jsoncheck-valid and byte-deterministic across
/// equal seeds, for every clause type at once.
#[test]
fn whatif_report_json_is_valid_and_deterministic() {
    let m = machine::presets::nehalem_cluster();
    let specs = [
        "jitter=0".to_string(),
        "net=ideal".to_string(),
        "null=late-sender".to_string(),
        format!("scale:{}=0.5", convolution::SECTION_HALO),
    ];
    let emit = || {
        let log = conv_log(m.clone(), 8, 40, 7);
        let scenarios: Vec<_> = specs
            .iter()
            .map(|raw| {
                let spec = parse(raw).expect("spec");
                analyze(&log, &m, 7, &spec, 10.0, 8, &Windowing::Fixed(8)).expect("scenario")
            })
            .collect();
        to_json(&scenarios)
    };
    let a = emit();
    let b = emit();
    assert_eq!(a, b, "what-if JSON must be byte-deterministic");
    mpisim::jsoncheck::check_json(&a).unwrap_or_else(|pos| panic!("invalid JSON at {pos}: {a}"));
    assert!(!a.contains("inf") && !a.contains("NaN"), "{a}");
}

/// The machine config block is jsoncheck-valid for every preset,
/// including the ideal machine's non-finite bandwidth.
#[test]
fn machine_config_block_is_valid_for_every_preset() {
    for m in [
        machine::presets::nehalem_cluster(),
        machine::presets::knl(),
        machine::presets::dual_broadwell(),
        machine::presets::ideal(),
    ] {
        let json = machine_config_json(&m);
        mpisim::jsoncheck::check_json(&json)
            .unwrap_or_else(|pos| panic!("{}: invalid JSON at {pos}: {json}", m.name));
    }
}
