//! Cross-crate integration tests: the full measurement pipeline
//! (runtime → sections → profiler → speedup analysis) against the paper's
//! headline numbers.

use mpisim::WorldBuilder;
use speedup_repro::convolution::{run_convolution, ConvConfig};
use speedup_repro::lulesh::{run_lulesh, LuleshConfig, PAPER_ITERATIONS};
use speedup_repro::sections::{Profile, SectionProfiler, SectionRuntime, VerifyMode, MPI_MAIN};
use std::sync::Arc;

fn conv_run(p: usize, steps: usize, seed: u64) -> (Profile, f64) {
    let sections = SectionRuntime::new(VerifyMode::Active);
    let profiler = SectionProfiler::new();
    sections.attach(profiler.clone());
    let s = sections.clone();
    let cfg = Arc::new(ConvConfig::paper(steps));
    let report = WorldBuilder::new(p)
        .machine(machine::presets::nehalem_cluster())
        .seed(seed)
        .tool(sections.clone())
        .run(move |pr| {
            run_convolution(pr, &s, &cfg);
        })
        .unwrap();
    (profiler.snapshot(), report.makespan_secs())
}

fn lulesh_run(p: usize, s: usize, iters: usize, threads: usize) -> Profile {
    let sections = SectionRuntime::new(VerifyMode::Active);
    let profiler = SectionProfiler::new();
    sections.attach(profiler.clone());
    let sr = sections.clone();
    let cfg = Arc::new(LuleshConfig::timing(s, iters, threads));
    WorldBuilder::new(p)
        .machine(machine::presets::knl())
        .seed(5)
        .tool(sections.clone())
        .run(move |pr| {
            run_lulesh(pr, &sr, &cfg);
        })
        .unwrap();
    profiler.snapshot()
}

/// §5.1 calibration: the sequential convolution's total section time is
/// within 10% of the paper's 5589.84 s (at the paper's 1000 steps, which
/// we check at 100 steps and scale — the benchmark is step-linear).
#[test]
fn sequential_convolution_total_matches_paper() {
    let (profile, _) = conv_run(1, 100, 1);
    let total: f64 = speedup_repro::convolution::SECTIONS
        .iter()
        .filter_map(|l| profile.get_world(l))
        .map(|s| s.total_own_secs)
        .sum();
    // LOAD/SCATTER/GATHER/STORE are once-per-run; CONVOLVE dominates so
    // linear scaling of the step sections is accurate to well under 1%.
    let per_step_sections = ["CONVOLVE", "HALO"];
    let step_total: f64 = per_step_sections
        .iter()
        .filter_map(|l| profile.get_world(l))
        .map(|s| s.total_own_secs)
        .sum();
    let fixed = total - step_total;
    let scaled = fixed + step_total * 10.0;
    assert!(
        (scaled - 5589.84).abs() / 5589.84 < 0.10,
        "sequential total {scaled} vs paper 5589.84"
    );
}

/// Eq. 6 at every scale: measured speedup never exceeds the HALO bound.
#[test]
fn halo_bound_is_valid_at_every_scale() {
    let (_, seq_wall) = conv_run(1, 50, 2);
    let (seq_profile, _) = conv_run(1, 50, 2);
    let seq_total: f64 = speedup_repro::convolution::SECTIONS
        .iter()
        .filter_map(|l| seq_profile.get_world(l))
        .map(|s| s.total_own_secs)
        .sum();
    for p in [8usize, 32, 64] {
        let (profile, wall) = conv_run(p, 50, 2);
        let halo = profile.get_world("HALO").unwrap().total_own_secs;
        let bound = speedup::partial_bound(seq_total, halo, p);
        let s = seq_wall / wall;
        assert!(s <= bound, "p={p}: S={s} exceeds bound {bound}");
    }
}

/// The §5.2 headline numbers at full paper scale (KNL, s = 48, 2500
/// iterations): sequential walltime, the Eq. 6 bound at 24 threads and the
/// actual speedup there, each within 5% of the paper.
#[test]
fn lulesh_fig10_headline_numbers() {
    let seq = lulesh_run(1, 48, PAPER_ITERATIONS, 1);
    let at24 = lulesh_run(1, 48, PAPER_ITERATIONS, 24);
    let wall = |p: &Profile| p.get_world("timeloop").unwrap().avg_per_rank_secs();
    let seq_wall = wall(&seq);
    assert!(
        (seq_wall - 882.48).abs() / 882.48 < 0.05,
        "sequential walltime {seq_wall} vs paper 882.48"
    );
    let nodal = at24.get_world("LagrangeNodal").unwrap().avg_per_rank_secs();
    let elements = at24
        .get_world("LagrangeElements")
        .unwrap()
        .avg_per_rank_secs();
    assert!(
        (nodal - 43.84).abs() / 43.84 < 0.05,
        "nodal {nodal} vs 43.84"
    );
    assert!(
        (elements - 64.29).abs() / 64.29 < 0.05,
        "elements {elements} vs 64.29"
    );
    let bound = speedup::partial_bound_per_process(seq_wall, nodal + elements);
    assert!((bound - 8.16).abs() / 8.16 < 0.05, "bound {bound} vs 8.16");
    let actual = seq_wall / wall(&at24);
    assert!(
        (actual - 8.08).abs() / 8.08 < 0.05,
        "speedup {actual} vs 8.08"
    );
    // "each section is individually bounding the speedup": the
    // LagrangeElements-only bound, paper 13.72x.
    let eb = speedup::partial_bound_per_process(seq_wall, elements);
    assert!(
        (eb - 13.72).abs() / 13.72 < 0.05,
        "elements bound {eb} vs 13.72"
    );
}

/// The timeloop accounts for ≈99% of MPI_MAIN (paper §5.2) and an
/// inflexion exists in the pure-OpenMP walltime series.
#[test]
fn lulesh_structure_and_inflexion() {
    let mut series = Vec::new();
    for threads in [1usize, 4, 16, 64, 256] {
        let profile = lulesh_run(1, 48, 100, threads);
        let main = profile.get_world(MPI_MAIN).unwrap().avg_per_rank_secs();
        let timeloop = profile.get_world("timeloop").unwrap().avg_per_rank_secs();
        assert!(timeloop / main > 0.99, "timeloop share at t={threads}");
        series.push((threads, timeloop));
    }
    let scaling = speedup::ScalingSeries::new(series);
    let inflexion = scaling.inflexion(0.0).unwrap();
    assert_eq!(inflexion.p, 16, "valley of the KNL curve at this grid");
    assert!(!scaling.still_scaling(0.0));
}

/// Hybrid crossover (Figs. 8/9): on the KNL, at p = 1 threads help, at
/// p = 27 they hurt.
#[test]
fn knl_hybrid_crossover() {
    let wall = |p: usize, s: usize, t: usize| {
        lulesh_run(p, s, 50, t)
            .get_world("timeloop")
            .unwrap()
            .avg_per_rank_secs()
    };
    assert!(wall(1, 48, 8) < wall(1, 48, 1) * 0.5, "threads help at p=1");
    assert!(wall(27, 16, 8) > wall(27, 16, 1), "threads hurt at p=27");
}

/// MPI outruns OpenMP on Broadwell in strong scaling (Fig. 8): 8 processes
/// of 1 thread beat 1 process of 8 threads on the same problem.
#[test]
fn broadwell_mpi_beats_openmp() {
    let run = |p: usize, s: usize, t: usize| {
        let sections = SectionRuntime::new(VerifyMode::Off);
        let profiler = SectionProfiler::new();
        sections.attach(profiler.clone());
        let sr = sections.clone();
        let cfg = Arc::new(LuleshConfig::timing(s, 100, t));
        WorldBuilder::new(p)
            .machine(machine::presets::dual_broadwell())
            .seed(5)
            .tool(sections.clone())
            .run(move |pr| {
                run_lulesh(pr, &sr, &cfg);
            })
            .unwrap();
        profiler
            .snapshot()
            .get_world("timeloop")
            .unwrap()
            .avg_per_rank_secs()
    };
    let mpi = run(8, 24, 1);
    let omp = run(1, 48, 8);
    assert!(
        mpi < omp,
        "MPI(p=8,t=1)={mpi} should beat OpenMP(p=1,t=8)={omp}"
    );
}

/// The convolution CONVOLVE section conserves total work while HALO grows
/// with p — the Fig. 5(a/b) direction.
#[test]
fn convolution_section_shapes() {
    let (p1, _) = conv_run(1, 50, 3);
    let (p16, _) = conv_run(16, 50, 3);
    let (p64, _) = conv_run(64, 50, 3);
    let conv = |pr: &Profile| pr.get_world("CONVOLVE").unwrap().total_own_secs;
    let halo = |pr: &Profile| pr.get_world("HALO").unwrap().total_own_secs;
    // Work conserved within noise.
    assert!((conv(&p16) - conv(&p1)).abs() / conv(&p1) < 0.05);
    assert!((conv(&p64) - conv(&p1)).abs() / conv(&p1) < 0.05);
    // Communication overhead appears and grows.
    assert!(halo(&p1) < 1e-9);
    assert!(halo(&p16) > 0.0);
    assert!(halo(&p64) > halo(&p16));
}
