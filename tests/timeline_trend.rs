//! Acceptance-level trend detection: on the noisy machine model, jitter
//! accumulates across the convolution's time-step loop (the paper's
//! Fig. 5b mechanism) and the HALO exchange's windowed communication
//! efficiency must trend downward and be flagged; on the noise-free
//! machine the same workload's trajectory must stay flat and unflagged.

use mpi_sections::timeline::{build, Timeline, Windowing};
use mpi_sections::{CommRecorder, SectionRuntime, VerifyMode};
use mpisim::WorldBuilder;
use speedup::trend::{detect, TrendConfig};
use std::sync::Arc;

fn conv_timeline(machine: machine::MachineModel, p: usize, windows: usize) -> Timeline {
    let sections = SectionRuntime::new(VerifyMode::Active);
    let recorder = CommRecorder::new();
    let s = sections.clone();
    let cfg = Arc::new(convolution::ConvConfig::paper(100));
    WorldBuilder::new(p)
        .machine(machine)
        .seed(1)
        .tool(sections.clone())
        .tool(recorder.clone())
        .run(move |p| {
            convolution::run_convolution(p, &s, &cfg);
        })
        .expect("conv run failed");
    build(&recorder.freeze(), &Windowing::Fixed(windows))
}

#[test]
fn jitter_accumulation_degrades_halo_and_only_halo_like_sections() {
    let tl = conv_timeline(machine::presets::nehalem_cluster(), 64, 8);
    let trends = detect(&tl, &TrendConfig::default());
    let halo = trends
        .iter()
        .find(|t| t.label == convolution::SECTION_HALO)
        .expect("HALO trend");
    assert!(halo.degrading, "{halo:?}");
    assert!(halo.slope < 0.0, "{halo:?}");
    assert_eq!(halo.dominant_wait, "late-sender");
    // Compute phases wobble but do not slide.
    for t in &trends {
        if t.label == convolution::SECTION_CONVOLVE {
            assert!(!t.degrading, "{t:?}");
        }
    }
}

#[test]
fn noise_free_machine_shows_flat_trajectories() {
    let tl = conv_timeline(machine::presets::ideal(), 64, 8);
    let trends = detect(&tl, &TrendConfig::default());
    assert!(
        trends.iter().all(|t| !t.degrading),
        "flagged on the ideal machine: {:?}",
        trends
            .iter()
            .filter(|t| t.degrading)
            .map(|t| (&t.label, t.slope))
            .collect::<Vec<_>>()
    );
    // HALO is present and genuinely analyzed, not just skipped.
    let halo = trends
        .iter()
        .find(|t| t.label == convolution::SECTION_HALO)
        .expect("HALO trend");
    assert!(halo.slope.abs() < 1e-3, "{halo:?}");
}
