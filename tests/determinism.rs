//! Reproducibility guarantees: identical seeds produce bit-identical
//! virtual-time measurements regardless of OS-thread interleaving, and
//! different seeds genuinely perturb the run. Determinism is what makes
//! the regenerated figures stable artifacts rather than one-off samples.

use mpisim::WorldBuilder;
use speedup_repro::convolution::{run_convolution, ConvConfig};
use speedup_repro::lulesh::{run_lulesh, LuleshConfig};
use speedup_repro::sections::{SectionProfiler, SectionRuntime, VerifyMode};
use std::sync::Arc;

fn conv_signature(seed: u64) -> Vec<(String, u64)> {
    let sections = SectionRuntime::new(VerifyMode::Active);
    let profiler = SectionProfiler::new();
    sections.attach(profiler.clone());
    let s = sections.clone();
    let cfg = Arc::new(ConvConfig::paper(30));
    WorldBuilder::new(16)
        .machine(machine::presets::nehalem_cluster())
        .seed(seed)
        .tool(sections.clone())
        .run(move |p| {
            run_convolution(p, &s, &cfg);
        })
        .unwrap();
    profiler
        .snapshot()
        .sections()
        .map(|st| {
            (
                st.key.label.clone(),
                // Nanosecond-exact totals: any nondeterminism shows up.
                (st.total_own_secs * 1e9).round() as u64,
            )
        })
        .collect()
}

fn lulesh_signature(seed: u64) -> Vec<(String, u64)> {
    let sections = SectionRuntime::new(VerifyMode::Active);
    let profiler = SectionProfiler::new();
    sections.attach(profiler.clone());
    let s = sections.clone();
    let cfg = Arc::new(LuleshConfig::timing(8, 20, 4));
    WorldBuilder::new(8)
        .machine(machine::presets::knl())
        .seed(seed)
        .tool(sections.clone())
        .run(move |p| {
            run_lulesh(p, &s, &cfg);
        })
        .unwrap();
    profiler
        .snapshot()
        .sections()
        .map(|st| {
            (
                st.key.label.clone(),
                (st.total_own_secs * 1e9).round() as u64,
            )
        })
        .collect()
}

#[test]
fn convolution_runs_are_bit_reproducible() {
    let a = conv_signature(42);
    let b = conv_signature(42);
    assert_eq!(a, b);
}

#[test]
fn lulesh_runs_are_bit_reproducible() {
    let a = lulesh_signature(42);
    let b = lulesh_signature(42);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_change_noisy_measurements() {
    let a = conv_signature(1);
    let b = conv_signature(2);
    assert_ne!(a, b, "noise must depend on the seed");
}

#[test]
fn full_fidelity_results_do_not_depend_on_seed() {
    // The *data* computed at Full fidelity is noise-independent — only the
    // virtual timings move with the seed.
    let result_with = |seed: u64| {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let s = sections.clone();
        let cfg = Arc::new(ConvConfig::small(16, 12, 2));
        let report = WorldBuilder::new(4)
            .machine(machine::presets::nehalem_cluster())
            .seed(seed)
            .run(move |p| run_convolution(p, &s, &cfg).checksum)
            .unwrap();
        report.results[0]
    };
    let a = result_with(1).expect("rank 0 checksum");
    let b = result_with(999).expect("rank 0 checksum");
    assert_eq!(a, b);
}
