//! The mpicheck analyzer is a pure observer: attaching it to well-formed
//! workloads — the quickstart example's program and the §5.1 convolution
//! benchmark — yields zero diagnostics and bit-identical virtual-time
//! results.

use machine::{presets, Work};
use mpicheck::Analyzer;
use mpisim::{Src, TagSel, WorldBuilder};
use speedup_repro::convolution::{run_convolution, ConvConfig};
use speedup_repro::sections::{SectionRuntime, VerifyMode};
use std::sync::Arc;

/// The SPMD program of `examples/quickstart.rs`, verbatim.
fn quickstart_times(analyzer: Option<Arc<Analyzer>>) -> Vec<machine::VTime> {
    let sections = SectionRuntime::new(VerifyMode::Active);
    let s = sections.clone();
    let mut builder = WorldBuilder::new(8)
        .machine(presets::nehalem_cluster())
        .seed(42)
        .tool(sections.clone());
    if let Some(a) = analyzer {
        builder = builder.tool(a);
    }
    let report = builder
        .run(move |p| {
            let world = p.world();
            let rank = p.world_rank();
            let n = p.world_size();
            for step in 0..20 {
                s.scoped(p, &world, "COMPUTE", |p| {
                    let slow = if rank == 3 { 2.0 } else { 1.0 };
                    p.compute(Work::flops(2.0e8 * slow));
                });
                s.scoped(p, &world, "EXCHANGE", |p| {
                    let right = (rank + 1) % n;
                    let left = (rank + n - 1) % n;
                    let _ = world.sendrecv(
                        p,
                        right,
                        step,
                        &[rank as f64],
                        Src::Rank(left),
                        TagSel::Is(step),
                    );
                });
                s.scoped(p, &world, "REDUCE", |p| {
                    let _ = world.allreduce_sum_f64(p, rank as f64);
                });
            }
        })
        .expect("quickstart program must run clean");
    report.final_times
}

#[test]
fn quickstart_is_clean_and_unperturbed_under_check() {
    let plain = quickstart_times(None);
    let analyzer = Analyzer::new();
    let checked = quickstart_times(Some(analyzer.clone()));
    assert!(
        analyzer.diagnostics().is_empty(),
        "quickstart flagged: {:?}",
        analyzer.diagnostics()
    );
    assert_eq!(plain, checked, "analyzer changed virtual-time results");
}

fn convolution_times(analyzer: Option<Arc<Analyzer>>) -> Vec<machine::VTime> {
    let sections = SectionRuntime::new(VerifyMode::Active);
    let s = sections.clone();
    let cfg = Arc::new(ConvConfig::paper(10));
    let mut builder = WorldBuilder::new(8)
        .machine(presets::nehalem_cluster())
        .seed(1)
        .tool(sections.clone());
    if let Some(a) = analyzer {
        builder = builder.tool(a);
    }
    let report = builder
        .run(move |p| {
            run_convolution(p, &s, &cfg);
        })
        .expect("convolution must run clean");
    report.final_times
}

#[test]
fn convolution_is_clean_and_unperturbed_under_check() {
    let plain = convolution_times(None);
    let analyzer = Analyzer::new();
    let checked = convolution_times(Some(analyzer.clone()));
    assert!(
        analyzer.diagnostics().is_empty(),
        "convolution flagged: {:?}",
        analyzer.diagnostics()
    );
    assert_eq!(plain, checked, "analyzer changed virtual-time results");
}
