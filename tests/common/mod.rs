//! Shared integration-test helpers.
//!
//! The JSON well-formedness checker the exporter tests use lives in
//! [`mpisim::jsoncheck`] so the `jsoncheck` CLI (used by
//! `scripts/check.sh` to validate emitted artifacts) can run the exact
//! same validator; this module just re-exports it for the tests.

#[allow(unused_imports)] // each integration-test crate uses its own subset
pub use mpisim::jsoncheck::{assert_json, check_json};
