//! Cross-crate property tests: random phase-structured programs measured
//! through the full stack satisfy the paper's structural guarantees.

use machine::{presets, Work};
use mpisim::WorldBuilder;
use proptest::prelude::*;
use speedup_repro::sections::{ProfileComparison, SectionProfiler, SectionRuntime, VerifyMode};
use std::sync::Arc;

/// A random phase-structured SPMD program: a list of (label, flops-scale,
/// uses-collective) phases repeated over a few steps.
#[derive(Debug, Clone)]
struct Phase {
    label: u8,
    flops: f64,
    collective: bool,
}

fn phases() -> impl Strategy<Value = Vec<Phase>> {
    prop::collection::vec(
        (0u8..5, 1.0f64..100.0, any::<bool>()).prop_map(|(label, flops, collective)| Phase {
            label,
            flops: flops * 1e6,
            collective,
        }),
        1..5,
    )
}

fn run_phases(
    nranks: usize,
    steps: usize,
    program: &Arc<Vec<Phase>>,
    seed: u64,
) -> mpi_sections::Profile {
    let sections = SectionRuntime::new(VerifyMode::Active);
    let profiler = SectionProfiler::new();
    sections.attach(profiler.clone());
    let s = sections.clone();
    let program = program.clone();
    WorldBuilder::new(nranks)
        .machine(presets::nehalem_cluster())
        .seed(seed)
        .tool(sections.clone())
        .run(move |p| {
            let world = p.world();
            for _ in 0..steps {
                for phase in program.iter() {
                    s.scoped(p, &world, &format!("phase{}", phase.label), |p| {
                        p.compute(Work::flops(phase.flops / p.world_size() as f64));
                        if phase.collective {
                            let _ = world.allreduce_sum_f64(p, 1.0);
                        }
                    });
                }
            }
        })
        .unwrap();
    profiler.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Eq. 6 structural guarantee: for any random program, at any scale,
    /// the measured program speedup never exceeds any section's bound.
    #[test]
    fn eq6_holds_for_random_programs(program in phases(), nranks in 2usize..9) {
        let program = Arc::new(program);
        let base = run_phases(1, 3, &program, 7);
        let target = run_phases(nranks, 3, &program, 7);
        let cmp = ProfileComparison::between(&base, &target, nranks);

        let base_wall = base
            .get_world(mpi_sections::MPI_MAIN)
            .unwrap()
            .avg_per_rank_secs();
        let target_wall = target
            .get_world(mpi_sections::MPI_MAIN)
            .unwrap()
            .avg_per_rank_secs();
        let measured = base_wall / target_wall.max(1e-12);
        for section in &cmp.sections {
            prop_assert!(
                measured <= section.program_bound + 1e-6,
                "S={measured} exceeds {}'s bound {}",
                section.label,
                section.program_bound
            );
        }
    }

    /// Exclusive-time partition: over any random program, the sum of
    /// exclusive section times equals the summed per-rank elapsed time.
    #[test]
    fn exclusive_times_partition_elapsed(program in phases(), nranks in 1usize..6) {
        let program = Arc::new(program);
        let profile = run_phases(nranks, 2, &program, 3);
        let excl: f64 = profile.sections().map(|s| s.total_excl_secs).sum();
        let main = profile.get_world(mpi_sections::MPI_MAIN).unwrap();
        prop_assert!(
            (excl - main.total_own_secs).abs() < 1e-6,
            "{excl} vs {}",
            main.total_own_secs
        );
    }

    /// Determinism through the whole stack: identical seeds, identical
    /// profiles, for any random program.
    #[test]
    fn full_stack_determinism(program in phases()) {
        let program = Arc::new(program);
        let a = run_phases(4, 2, &program, 11);
        let b = run_phases(4, 2, &program, 11);
        let sig = |p: &mpi_sections::Profile| -> Vec<(String, u64)> {
            p.sections()
                .map(|s| (s.key.label.clone(), (s.total_own_secs * 1e9).round() as u64))
                .collect()
        };
        prop_assert_eq!(sig(&a), sig(&b));
    }
}
