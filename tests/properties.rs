//! Cross-crate property tests: random phase-structured programs measured
//! through the full stack satisfy the paper's structural guarantees.

use machine::{presets, Work};
use mpisim::{Src, TagSel, WorldBuilder};
use mpiverify::{explore, RunOutcome, ScheduleController, Verdict};
use proptest::prelude::*;
use speedup_repro::sections::{ProfileComparison, SectionProfiler, SectionRuntime, VerifyMode};
use std::sync::Arc;

/// A random phase-structured SPMD program: a list of (label, flops-scale,
/// uses-collective) phases repeated over a few steps.
#[derive(Debug, Clone)]
struct Phase {
    label: u8,
    flops: f64,
    collective: bool,
}

fn phases() -> impl Strategy<Value = Vec<Phase>> {
    prop::collection::vec(
        (0u8..5, 1.0f64..100.0, any::<bool>()).prop_map(|(label, flops, collective)| Phase {
            label,
            flops: flops * 1e6,
            collective,
        }),
        1..5,
    )
}

fn run_phases(
    nranks: usize,
    steps: usize,
    program: &Arc<Vec<Phase>>,
    seed: u64,
) -> mpi_sections::Profile {
    let sections = SectionRuntime::new(VerifyMode::Active);
    let profiler = SectionProfiler::new();
    sections.attach(profiler.clone());
    let s = sections.clone();
    let program = program.clone();
    WorldBuilder::new(nranks)
        .machine(presets::nehalem_cluster())
        .seed(seed)
        .tool(sections.clone())
        .run(move |p| {
            let world = p.world();
            for _ in 0..steps {
                for phase in program.iter() {
                    s.scoped(p, &world, &format!("phase{}", phase.label), |p| {
                        p.compute(Work::flops(phase.flops / p.world_size() as f64));
                        if phase.collective {
                            let _ = world.allreduce_sum_f64(p, 1.0);
                        }
                    });
                }
            }
        })
        .unwrap();
    profiler.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Eq. 6 structural guarantee: for any random program, at any scale,
    /// the measured program speedup never exceeds any section's bound.
    #[test]
    fn eq6_holds_for_random_programs(program in phases(), nranks in 2usize..9) {
        let program = Arc::new(program);
        let base = run_phases(1, 3, &program, 7);
        let target = run_phases(nranks, 3, &program, 7);
        let cmp = ProfileComparison::between(&base, &target, nranks);

        let base_wall = base
            .get_world(mpi_sections::MPI_MAIN)
            .unwrap()
            .avg_per_rank_secs();
        let target_wall = target
            .get_world(mpi_sections::MPI_MAIN)
            .unwrap()
            .avg_per_rank_secs();
        let measured = base_wall / target_wall.max(1e-12);
        for section in &cmp.sections {
            prop_assert!(
                measured <= section.program_bound + 1e-6,
                "S={measured} exceeds {}'s bound {}",
                section.label,
                section.program_bound
            );
        }
    }

    /// Exclusive-time partition: over any random program, the sum of
    /// exclusive section times equals the summed per-rank elapsed time.
    #[test]
    fn exclusive_times_partition_elapsed(program in phases(), nranks in 1usize..6) {
        let program = Arc::new(program);
        let profile = run_phases(nranks, 2, &program, 3);
        let excl: f64 = profile.sections().map(|s| s.total_excl_secs).sum();
        let main = profile.get_world(mpi_sections::MPI_MAIN).unwrap();
        prop_assert!(
            (excl - main.total_own_secs).abs() < 1e-6,
            "{excl} vs {}",
            main.total_own_secs
        );
    }

    /// Verifier soundness on race-free programs: a random phase program
    /// (deterministic collectives, no competing wildcard senders) extended
    /// with a single-sender wildcard receive must come out of schedule
    /// exploration fully refuted — zero divergent fingerprints, every
    /// wildcard site trivially refuted or exhaustively byte-identical.
    #[test]
    fn race_free_programs_are_refuted(program in phases(), nranks in 2usize..5) {
        let program = Arc::new(program);
        let report = explore(32, |ctl: &Arc<ScheduleController>| {
            let sections = SectionRuntime::new(VerifyMode::Active);
            let profiler = SectionProfiler::new();
            sections.attach(profiler.clone());
            let s = sections.clone();
            let program = program.clone();
            let run = WorldBuilder::new(nranks)
                .machine(presets::nehalem_cluster())
                .seed(5)
                .engine(mpisim::Engine::Des)
                .match_controller(ctl.clone() as Arc<dyn mpisim::MatchController>)
                .tool(sections.clone())
                .run(move |p| {
                    let world = p.world();
                    for phase in program.iter() {
                        s.scoped(p, &world, &format!("phase{}", phase.label), |p| {
                            p.compute(Work::flops(phase.flops / p.world_size() as f64));
                            if phase.collective {
                                let _ = world.allreduce_sum_f64(p, 1.0);
                            }
                        });
                    }
                    // A wildcard receive with exactly one live sender:
                    // `Src::Any` in form, race-free in fact.
                    if p.world_rank() == 0 {
                        let m = world.recv::<u64>(p, Src::Any, TagSel::Is(3));
                        m.data[0]
                    } else {
                        if p.world_rank() == 1 {
                            world.send(p, 0, 3, &[41u64]);
                        }
                        0
                    }
                });
            match run {
                Ok(rep) => {
                    let mut artifact = format!("{:?};", rep.results);
                    for sec in profiler.snapshot().sections() {
                        artifact.push_str(&format!(
                            "{}:{};",
                            sec.key.label,
                            (sec.total_own_secs * 1e9).round() as u64
                        ));
                    }
                    RunOutcome { artifact, failure: None }
                }
                Err(e) => RunOutcome { artifact: String::new(), failure: Some(e.to_string()) },
            }
        });
        prop_assert_eq!(report.divergent, 0, "race-free program produced divergent fingerprints");
        prop_assert!(!report.any_confirmed());
        prop_assert!(report.exhausted_space, "exploration should exhaust a race-free space");
        prop_assert!(!report.verdicts.is_empty(), "the wildcard site must be judged");
        for v in &report.verdicts {
            prop_assert!(
                matches!(
                    v,
                    Verdict::TriviallyRefuted { .. }
                        | Verdict::Refuted { exhaustive: true, .. }
                ),
                "unexpected verdict: {v:?}"
            );
        }
    }

    /// Determinism through the whole stack: identical seeds, identical
    /// profiles, for any random program.
    #[test]
    fn full_stack_determinism(program in phases()) {
        let program = Arc::new(program);
        let a = run_phases(4, 2, &program, 11);
        let b = run_phases(4, 2, &program, 11);
        let sig = |p: &mpi_sections::Profile| -> Vec<(String, u64)> {
            p.sections()
                .map(|s| (s.key.label.clone(), (s.total_own_secs * 1e9).round() as u64))
                .collect()
        };
        prop_assert_eq!(sig(&a), sig(&b));
    }
}
