//! # speedup-repro — umbrella crate
//!
//! Reproduction of *"Towards a Better Expressiveness of the Speedup Metric
//! in MPI Context"* (Besnard, Malony, Shende, Pérache, Carribault, Jaeger —
//! ICPP Workshops 2017).
//!
//! This crate re-exports the workspace's public surface and hosts the
//! runnable examples (`examples/`) and cross-crate integration tests
//! (`tests/`). See README.md for a tour and DESIGN.md for the system
//! inventory.
//!
//! * [`machine`] — machine models (compute, network, OpenMP overhead,
//!   noise) and the calibrated presets.
//! * [`mpisim`] — the virtual-time MPI-like runtime with PMPI-style tool
//!   hooks.
//! * [`mpicheck`] — the correctness analyzer tool: deadlock, collective
//!   divergence, wildcard-race and section-misuse diagnostics.
//! * [`mpiverify`] — the dynamic verifier: stateless model checking over
//!   wildcard-receive matchings that upgrades each race warning to a
//!   confirmed/refuted verdict with replayable witness schedules.
//! * [`shmem`] — the OpenMP-like fork-join model.
//! * [`sections`] — the paper's `MPI_Section` abstraction, callback
//!   interface and profiler (crate `mpi-sections`).
//! * [`speedup`] — scaling laws and partial speedup bounding (Eq. 6).
//! * [`convolution`] — the §5.1 image-convolution benchmark.
//! * [`lulesh`] — the §5.2 LULESH-like hybrid proxy (crate
//!   `lulesh-proxy`).

pub use convolution;
pub use lulesh_proxy as lulesh;
pub use machine;
pub use mpi_sections as sections;
pub use mpicheck;
pub use mpisim;
pub use mpiverify;
pub use shmem;
pub use speedup;
