//! The paper's §5.1 study in miniature: run the convolution benchmark at
//! several scales, print the per-section breakdown, and infer the partial
//! speedup bounds (Eq. 6) from the HALO section — the workflow behind
//! Figs. 5 and 6.
//!
//! ```text
//! cargo run --release --example convolution_scaling [steps]
//! ```

use mpisim::WorldBuilder;
use speedup_repro::convolution::{run_convolution, ConvConfig, SECTIONS};
use speedup_repro::sections::{SectionProfiler, SectionRuntime, VerifyMode};
use std::sync::Arc;

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let machine = machine::presets::nehalem_cluster();
    println!(
        "convolution {}x{} RGB doubles, {steps} steps, machine '{}'\n",
        5616, 3744, machine.name
    );

    let mut seq_total = 0.0;
    let mut seq_wall = 0.0;
    println!(
        "{:>4}  {:>10}  {:>8}  {:>10}  {:>10}  {:>8}",
        "p", "wall (s)", "speedup", "conv (s)", "halo (s)", "B_halo"
    );
    for p in [1usize, 8, 16, 32, 64, 128] {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let profiler = SectionProfiler::new();
        sections.attach(profiler.clone());
        let s = sections.clone();
        let cfg = Arc::new(ConvConfig::paper(steps));
        let report = WorldBuilder::new(p)
            .machine(machine.clone())
            .seed(20170802) // the venue date, why not
            .tool(sections.clone())
            .run(move |proc| {
                run_convolution(proc, &s, &cfg);
            })
            .expect("run failed");

        let profile = profiler.snapshot();
        let wall = report.makespan_secs();
        let total_of = |label: &str| {
            profile
                .get_world(label)
                .map(|st| st.total_own_secs)
                .unwrap_or(0.0)
        };
        if p == 1 {
            seq_total = SECTIONS.iter().map(|l| total_of(l)).sum();
            seq_wall = wall;
        }
        let halo = total_of("HALO");
        let bound = speedup::partial_bound(seq_total, halo, p);
        println!(
            "{:>4}  {:>10.2}  {:>8.2}  {:>10.2}  {:>10.2}  {:>8.1}",
            p,
            wall,
            seq_wall / wall,
            total_of("CONVOLVE"),
            halo,
            bound,
        );
    }

    println!(
        "\nCONVOLVE total stays ~constant (the work is conserved) while HALO\n\
         grows with p — so HALO's partial bound (Eq. 6) is the curve that\n\
         caps the measured speedup, exactly the paper's Fig. 5/6 finding."
    );
}
