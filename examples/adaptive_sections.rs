//! The paper's §8 closing idea, executed: "dynamically restraining
//! parallelism for non-scalable sections — investigating potential
//! improvements for the overall computation."
//!
//! A program alternates between a large, scalable kernel and a small,
//! overhead-dominated one on the simulated KNL. A fixed full-width team
//! runs both past their sweet spots; `shmem::AdaptiveTeam` probes a thread
//! ladder per section label and commits to each section's own optimum —
//! recovering most of the wasted time. Sections profile both policies so
//! the effect is visible in the same metrics the paper proposes.
//!
//! ```text
//! cargo run --release --example adaptive_sections
//! ```

use machine::{presets, Work};
use mpisim::WorldBuilder;
use shmem::{AdaptiveTeam, Team};
use speedup_repro::sections::{SectionProfiler, SectionRuntime, VerifyMode};

const REPS: usize = 400;
const BIG: usize = 110_592; // a LULESH-sized element loop
const SMALL: usize = 2_048; // a boundary-sized loop
const W: Work = Work::new(500.0, 48.0);

fn run(policy: &'static str) -> (f64, mpi_sections::Profile, Option<(usize, usize)>) {
    let sections = SectionRuntime::new(VerifyMode::Active);
    let profiler = SectionProfiler::new();
    sections.attach(profiler.clone());
    let s = sections.clone();
    let report = WorldBuilder::new(1)
        .machine(presets::knl())
        .seed(8)
        .tool(sections.clone())
        .run(move |p| {
            let world = p.world();
            match policy {
                "fixed" => {
                    let team = Team::new(128);
                    for _ in 0..REPS {
                        s.scoped(p, &world, "BIG_KERNEL", |p| {
                            team.for_cost_uniform(p, BIG, W);
                        });
                        s.scoped(p, &world, "SMALL_KERNEL", |p| {
                            team.for_cost_uniform(p, SMALL, W);
                        });
                    }
                    None
                }
                _ => {
                    let mut team = AdaptiveTeam::new(128);
                    for _ in 0..REPS {
                        s.scoped(p, &world, "BIG_KERNEL", |p| {
                            team.for_cost_uniform(p, "BIG_KERNEL", BIG, W);
                        });
                        s.scoped(p, &world, "SMALL_KERNEL", |p| {
                            team.for_cost_uniform(p, "SMALL_KERNEL", SMALL, W);
                        });
                    }
                    Some((
                        team.threads_for("BIG_KERNEL"),
                        team.threads_for("SMALL_KERNEL"),
                    ))
                }
            }
        })
        .expect("run failed");
    let decisions = report.results.into_iter().next().unwrap();
    (
        report.makespan.as_secs_f64(),
        profiler.snapshot(),
        decisions,
    )
}

fn main() {
    let (fixed_wall, fixed_profile, _) = run("fixed");
    let (adaptive_wall, adaptive_profile, decisions) = run("adaptive");
    let (big_threads, small_threads) = decisions.expect("adaptive decisions");

    println!(
        "{:<22} {:>12} {:>14} {:>16}",
        "policy", "wall (s)", "BIG total (s)", "SMALL total (s)"
    );
    let totals = |p: &mpi_sections::Profile| {
        (
            p.get_world("BIG_KERNEL").unwrap().total_own_secs,
            p.get_world("SMALL_KERNEL").unwrap().total_own_secs,
        )
    };
    let (fb, fs) = totals(&fixed_profile);
    let (ab, a_small) = totals(&adaptive_profile);
    println!(
        "{:<22} {fixed_wall:>12.3} {fb:>14.3} {fs:>16.3}",
        "fixed (128 threads)"
    );
    println!(
        "{:<22} {adaptive_wall:>12.3} {ab:>14.3} {a_small:>16.3}",
        "adaptive"
    );
    println!(
        "\nadaptive committed to {big_threads} threads for BIG_KERNEL and \
         {small_threads} for SMALL_KERNEL,\nrecovering {:.1}% of the fixed \
         policy's walltime.",
        100.0 * (fixed_wall - adaptive_wall) / fixed_wall
    );
    println!(
        "\nThe section view explains why: under the fixed policy the small\n\
         kernel is pure fork/join overhead (its inflexion point sits far\n\
         below 128 threads), and by Eq. 6 it alone caps the whole program's\n\
         speedup. Restraining just that section removes the cap."
    );
    assert!(adaptive_wall < fixed_wall, "adaptation must pay off here");
}
