//! Dynamic verification of wildcard-receive races: run the schedule-space
//! explorer over one genuinely racy program and one benign one, and show
//! the difference between a *warning* ("two senders could match") and a
//! *verdict* ("here are two replayable schedules whose outputs differ" /
//! "all reachable matchings are byte-identical").
//!
//! ```text
//! cargo run --release --example verify_race [REPORT.json]
//! ```
//!
//! With a path argument, the two verdict reports are written as one JSON
//! document (`{"confirmed_case":...,"benign_case":...}`) for scripted
//! consumption (`scripts/check.sh` validates it with `jsoncheck`).
//!
//! The confirmed case is the classic order-sensitive fold: ranks 1..4 each
//! send a distinct value to rank 0's `Src::Any` loop, and the receive
//! order changes the result. The benign case is identical message traffic
//! with *identical* payloads folded commutatively — the wildcard still has
//! three competing senders, but no reachable matching changes anything
//! observable, so every schedule fingerprints the same and the race is
//! refuted within budget.

use speedup_repro::mpisim::{Src, TagSel, WorldBuilder};
use speedup_repro::mpiverify::{explore, Report, RunOutcome, ScheduleController, Verdict};
use std::sync::Arc;

const P: usize = 4;
const BUDGET: usize = 64;

/// One exploration run: the racy fold. Rank 0 receives `P - 1` wildcard
/// messages and folds them order-sensitively, so the matching order is
/// observable in the result.
fn racy_run(ctl: &Arc<ScheduleController>) -> RunOutcome {
    run_program(ctl, true)
}

/// One exploration run: same traffic, commutative fold over identical
/// payloads — the matching order is unobservable.
fn benign_run(ctl: &Arc<ScheduleController>) -> RunOutcome {
    run_program(ctl, false)
}

fn run_program(ctl: &Arc<ScheduleController>, order_sensitive: bool) -> RunOutcome {
    let result = WorldBuilder::new(P)
        .seed(7)
        .match_controller(ctl.clone() as Arc<dyn speedup_repro::mpisim::MatchController>)
        .run(move |p| {
            let world = p.world();
            let me = p.world_rank();
            if me == 0 {
                world.barrier(p);
                let mut acc: u64 = 0;
                for _ in 1..P {
                    let m = world.recv::<u64>(p, Src::Any, TagSel::Is(7));
                    if order_sensitive {
                        acc = acc.wrapping_mul(31).wrapping_add(m.data[0]);
                    } else {
                        acc = acc.wrapping_add(m.data[0]);
                    }
                }
                acc
            } else {
                let payload = if order_sensitive { me as u64 } else { 1u64 };
                world.send(p, 0, 7, &[payload]);
                world.barrier(p);
                0
            }
        });
    match result {
        // The artifact is exactly what the program computed; anything the
        // matching order can change must appear here to count as a race.
        Ok(report) => RunOutcome {
            artifact: format!("{:?}", report.results),
            failure: None,
        },
        Err(e) => RunOutcome {
            artifact: String::new(),
            failure: Some(e.to_string()),
        },
    }
}

fn summarize(name: &str, report: &Report) {
    println!("== {name} ==");
    print!("{}", report.render_text());
    println!();
}

fn main() {
    // Case 1: the verifier must CONFIRM — and its witness pair must
    // actually reproduce the divergence when replayed.
    let confirmed = explore(BUDGET, racy_run);
    summarize("order-sensitive wildcard fold (real race)", &confirmed);
    assert!(
        confirmed.any_confirmed(),
        "the order-sensitive fold must be a confirmed race"
    );
    let (wa, wb) = confirmed
        .first_witness_pair()
        .expect("confirmed verdicts carry witnesses");
    let ra = racy_run(&Arc::new(ScheduleController::replaying(wa.clone())));
    let rb = racy_run(&Arc::new(ScheduleController::replaying(wb.clone())));
    assert_ne!(
        ra.artifact, rb.artifact,
        "replaying the two witness schedules must reproduce the divergence"
    );
    // Witness replays are deterministic: replaying the same schedule twice
    // gives byte-identical artifacts.
    let ra2 = racy_run(&Arc::new(ScheduleController::replaying(wa.clone())));
    assert_eq!(ra.artifact, ra2.artifact, "witness replay must be stable");
    println!(
        "witness replay: schedule A -> {}, schedule B -> {} (divergence reproduced)\n",
        ra.artifact, rb.artifact
    );

    // Case 2: the verifier must REFUTE — same wildcard, same competing
    // senders, but no matching changes the observable result.
    let benign = explore(BUDGET, benign_run);
    summarize("commutative fold over identical payloads (benign)", &benign);
    assert!(
        !benign.any_confirmed(),
        "the commutative fold must not be confirmed"
    );
    assert!(
        benign.verdicts.iter().all(|v| matches!(
            v,
            Verdict::Refuted {
                exhaustive: true,
                ..
            } | Verdict::TriviallyRefuted { .. }
        )),
        "every benign wildcard site must be exhaustively refuted"
    );

    if let Some(path) = std::env::args().nth(1) {
        let json = format!(
            "{{\"confirmed_case\":{},\"benign_case\":{}}}\n",
            confirmed.to_json(),
            benign.to_json()
        );
        std::fs::write(&path, json).expect("write report");
        println!("wrote combined verdict JSON to {path}");
    }
}
