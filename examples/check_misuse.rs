//! mpicheck in action: run three deliberately broken MPI programs and one
//! racy-but-live one under the correctness analyzer, and print the
//! structured diagnostics it produces instead of opaque hangs or panics.
//!
//! ```text
//! cargo run --release --example check_misuse
//! ```

use mpicheck::Analyzer;
use mpisim::{diag, RunError, Src, TagSel, WorldBuilder};

fn show(title: &str, err: &RunError) {
    println!("--- {title} ---");
    match err {
        RunError::Diagnosed(diags) => {
            println!("{}", diag::report(diags));
            println!("as JSON: {}\n", diag::report_json(diags));
        }
        other => println!("unexpected failure: {other}\n"),
    }
}

/// The broken programs below abort rank threads via mpisim's sentinel
/// panics; keep the default hook for genuine panics but silence those so
/// the diagnostic reports are readable.
fn quiet_sentinel_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| info.payload().downcast_ref::<String>().map(String::as_str))
            .unwrap_or("");
        if msg != diag::DIAGNOSED_MSG && msg != mpisim::error::POISONED_MSG {
            default_hook(info);
        }
    }));
}

fn main() {
    quiet_sentinel_panics();

    // 1. A recv/recv cross-wait: both ranks receive before sending. On a
    //    real MPI this hangs until the batch scheduler kills the job;
    //    here the analyzer names the wait-for cycle.
    let err = WorldBuilder::new(2)
        .tool(Analyzer::new())
        .run(|p| {
            let world = p.world();
            let peer = 1 - p.world_rank();
            let _ = world.recv::<u32>(p, Src::Rank(peer), TagSel::Is(0));
            world.send(p, peer, 0, &[1u32]);
        })
        .unwrap_err();
    show("deadlock: recv/recv cross-wait", &err);

    // 2. Collective divergence: rank 0 enters a barrier while rank 1
    //    enters an allreduce. The analyzer reports the first position at
    //    which the per-communicator collective sequences disagree.
    let err = WorldBuilder::new(2)
        .tool(Analyzer::new())
        .run(|p| {
            let world = p.world();
            if p.world_rank() == 0 {
                world.barrier(p);
            } else {
                let _ = world.allreduce_sum_f64(p, 1.0);
            }
        })
        .unwrap_err();
    show("collective divergence: barrier vs allreduce", &err);

    // 3. Section misuse: exiting sections out of order ("imperfect
    //    nesting" in the paper's terms) is reported with the offending
    //    rank's open-label stack instead of a bare panic.
    let sections =
        speedup_repro::sections::SectionRuntime::new(speedup_repro::sections::VerifyMode::Active);
    let s = sections.clone();
    let err = WorldBuilder::new(2)
        .tool(sections)
        .tool(Analyzer::new())
        .run(move |p| {
            let world = p.world();
            s.enter(p, &world, "solve");
            s.enter(p, &world, "exchange");
            s.exit(p, &world, "solve"); // out of order
        })
        .unwrap_err();
    show("section misuse: imperfect nesting", &err);

    // 4. A wildcard-receive race is a hazard, not a fault: the run
    //    completes, and the analyzer reports the competing senders as a
    //    warning afterwards.
    let analyzer = Analyzer::new();
    let report = WorldBuilder::new(3)
        .tool(analyzer.clone())
        .run(|p| {
            let world = p.world();
            if p.world_rank() == 0 {
                world.barrier(p);
                let a = world.recv::<u32>(p, Src::Any, TagSel::Is(7));
                let b = world.recv::<u32>(p, Src::Any, TagSel::Is(7));
                a.data[0] + b.data[0]
            } else {
                world.send(p, 0, 7, &[p.world_rank() as u32]);
                world.barrier(p);
                0
            }
        })
        .expect("the racy program still completes");
    println!("--- message race: wildcard receive with two senders ---");
    println!("run completed (rank 0 summed {})", report.results[0]);
    println!("{}", diag::report(&analyzer.diagnostics()));
}
