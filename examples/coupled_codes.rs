//! Sections on sub-communicators: a coupled multi-physics job.
//!
//! The paper defines a section as "a temporal outline of a distributed
//! code region entered by all the MPI Processes belonging to a given
//! communicator" — deliberately *not* just MPI_COMM_WORLD. This example
//! exercises that: a fluid solver owns 12 ranks, a structure solver owns
//! 4, each outlines its own phases on its own communicator, and the
//! coupling exchange is a world-communicator section. The profile then
//! answers the question coupled codes always ask: *who waits at the
//! coupling boundary, and why?*
//!
//! ```text
//! cargo run --release --example coupled_codes
//! ```

use machine::{presets, Work};
use mpisim::{Src, TagSel, WorldBuilder};
use speedup_repro::sections::{BalanceReport, SectionProfiler, SectionRuntime, VerifyMode};

const STEPS: usize = 40;
const FLUID_RANKS: usize = 12;

fn main() {
    let sections = SectionRuntime::new(VerifyMode::Active);
    let profiler = SectionProfiler::new();
    sections.attach(profiler.clone());
    let s = sections.clone();

    WorldBuilder::new(16)
        .machine(presets::nehalem_cluster())
        .seed(14)
        .tool(sections.clone())
        .run(move |p| {
            let world = p.world();
            let is_fluid = p.world_rank() < FLUID_RANKS;
            // Each physics gets its own communicator — and therefore its
            // own section namespace and its own verification domain.
            let team = world
                .split(p, Some(if is_fluid { 0 } else { 1 }), 0)
                .expect("every rank has a color");

            for step in 0..STEPS {
                if is_fluid {
                    s.scoped(p, &team, "fluid.advect", |p| {
                        p.compute(Work::flops(3.0e8 / FLUID_RANKS as f64));
                    });
                    s.scoped(p, &team, "fluid.pressure", |p| {
                        p.compute(Work::flops(2.0e8 / FLUID_RANKS as f64));
                        let _ = team.allreduce_sum_f64(p, 1.0);
                    });
                } else {
                    s.scoped(p, &team, "solid.assemble", |p| {
                        p.compute(Work::flops(1.0e8 / 4.0));
                    });
                    s.scoped(p, &team, "solid.solve", |p| {
                        // The structure solver is the slow partner.
                        p.compute(Work::flops(6.0e8 / 4.0));
                        let _ = team.allreduce_sum_f64(p, 1.0);
                    });
                }
                // The coupling: boundary tractions/displacements cross the
                // interface — a world-communicator section.
                s.scoped(p, &world, "COUPLING", |p| {
                    // Fluid rank i pairs with solid rank i % 4.
                    if is_fluid {
                        let partner = FLUID_RANKS + p.world_rank() % 4;
                        let _ = world.sendrecv(
                            p,
                            partner,
                            step as i32,
                            &[1.0f64; 256],
                            Src::Rank(partner),
                            TagSel::Is(step as i32),
                        );
                    } else {
                        // Each solid rank serves 3 fluid partners.
                        for k in 0..3 {
                            let partner = (p.world_rank() - FLUID_RANKS) + 4 * k;
                            let _ = world.sendrecv(
                                p,
                                partner,
                                step as i32,
                                &[1.0f64; 256],
                                Src::Rank(partner),
                                TagSel::Is(step as i32),
                            );
                        }
                    }
                });
            }
        })
        .expect("run failed");

    let profile = profiler.snapshot();
    println!(
        "{:<16} {:>6} {:>12} {:>14}",
        "section", "ranks", "avg/rank (s)", "entry imb (s)"
    );
    let mut rows: Vec<_> = profile
        .sections()
        .filter(|st| st.key.label != speedup_repro::sections::MPI_MAIN)
        .collect();
    rows.sort_by(|a, b| a.key.label.cmp(&b.key.label));
    for st in rows {
        println!(
            "{:<16} {:>6} {:>12.3} {:>14.4}",
            st.key.label,
            st.participants,
            st.avg_per_rank_secs(),
            st.mean_entry_imbalance_secs,
        );
    }

    let coupling = profile.get_world("COUPLING").expect("profiled");
    let balance = BalanceReport::for_section(coupling).expect("ranks");
    println!("\ncoupling-boundary balance: {}", balance.summary());
    println!(
        "\nreading: each solver's phases live on its own communicator (12\n\
         fluid ranks, 4 solid ranks — note the 'ranks' column), so each\n\
         team's nesting is verified independently. The COUPLING section's\n\
         entry imbalance shows who arrives late at the interface: the side\n\
         with the larger per-step compute. That asymmetry — not the\n\
         message size — is what the coupling section pays for, which is\n\
         precisely the paper's argument for measuring *distributed phases*\n\
         rather than function durations."
    );
}
