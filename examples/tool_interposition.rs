//! Writing a custom section tool — the paper's Fig. 2 callback interface.
//!
//! Two tools are attached to the same section runtime:
//!
//! * a **latency watchdog** that stamps its own entry timestamp into the
//!   32-byte `data` blob at enter and flags slow instances at leave
//!   (demonstrating that the runtime preserves tool data, the blob's whole
//!   purpose);
//! * a **trace writer** that emits a per-rank, flame-graph-style indented
//!   trace of section nesting.
//!
//! ```text
//! cargo run --release --example tool_interposition
//! ```

use machine::{presets, Work};
use mpisim::{SectionData, WorldBuilder};
use parking_lot::Mutex;
use speedup_repro::sections::{EnterInfo, LeaveInfo, SectionRuntime, SectionTool, VerifyMode};
use std::sync::Arc;

/// Flags section instances slower than a threshold, using the data blob to
/// carry its own timestamp between enter and leave.
struct Watchdog {
    threshold_secs: f64,
    slow: Mutex<Vec<(usize, String, f64)>>,
}

impl SectionTool for Watchdog {
    fn on_enter(&self, info: &EnterInfo, data: &mut SectionData) {
        data[..8].copy_from_slice(&info.time.as_nanos().to_le_bytes());
    }

    fn on_leave(&self, info: &LeaveInfo, data: &SectionData) {
        let stamped = u64::from_le_bytes(data[..8].try_into().unwrap());
        let elapsed = (info.time.as_nanos() - stamped) as f64 * 1e-9;
        if elapsed > self.threshold_secs {
            self.slow
                .lock()
                .push((info.world_rank, info.label.to_string(), elapsed));
        }
    }
}

/// Emits an indented per-rank trace of rank 0's section activity.
struct Tracer {
    lines: Mutex<Vec<String>>,
}

impl SectionTool for Tracer {
    fn on_enter(&self, info: &EnterInfo, _data: &mut SectionData) {
        if info.world_rank == 0 {
            self.lines.lock().push(format!(
                "{:>10.3}ms {}> {}",
                info.time.as_secs_f64() * 1e3,
                "  ".repeat(info.depth),
                info.label
            ));
        }
    }

    fn on_leave(&self, info: &LeaveInfo, _data: &SectionData) {
        if info.world_rank == 0 {
            self.lines.lock().push(format!(
                "{:>10.3}ms {}< {} ({:.3}ms, excl {:.3}ms)",
                info.time.as_secs_f64() * 1e3,
                "  ".repeat(info.depth),
                info.label,
                info.duration.as_secs_f64() * 1e3,
                info.exclusive.as_secs_f64() * 1e3,
            ));
        }
    }
}

fn main() {
    let sections = SectionRuntime::new(VerifyMode::Active);
    let watchdog = Arc::new(Watchdog {
        threshold_secs: 0.35,
        slow: Mutex::new(Vec::new()),
    });
    let tracer = Arc::new(Tracer {
        lines: Mutex::new(Vec::new()),
    });
    sections.attach(watchdog.clone());
    sections.attach(tracer.clone());

    let s = sections.clone();
    WorldBuilder::new(4)
        .machine(presets::nehalem_cluster())
        .seed(3)
        .tool(sections.clone())
        .run(move |p| {
            let world = p.world();
            for step in 0..3 {
                s.scoped(p, &world, "step", |p| {
                    s.scoped(p, &world, "assemble", |p| {
                        p.compute(Work::flops(2.0e7));
                    });
                    s.scoped(p, &world, "solve", |p| {
                        // Step 1 is pathological on rank 2.
                        let f = if step == 1 && p.world_rank() == 2 {
                            6.0
                        } else {
                            1.0
                        };
                        p.compute(Work::flops(2.0e7 * f));
                        world.barrier(p);
                    });
                });
            }
        })
        .expect("run failed");

    println!("rank-0 section trace:");
    for line in tracer.lines.lock().iter() {
        println!("  {line}");
    }

    println!("\nwatchdog report (threshold 350 ms):");
    let slow = watchdog.slow.lock();
    if slow.is_empty() {
        println!("  nothing above threshold");
    }
    for (rank, label, secs) in slow.iter() {
        println!("  rank {rank}: '{label}' took {:.1} ms", secs * 1e3);
    }
}
