//! Partial speedup bounding (Eq. 6) end to end: run a phase-structured
//! program at one modest scale, derive the per-section bounds, then check
//! them against speedups actually measured at larger scales.
//!
//! The program has three sections with different scaling behaviour:
//! perfectly parallel work, a sequential (rank 0 only) phase, and a
//! collective whose cost grows with p. Amdahl's law sees only the
//! aggregate; the section bounds name the culprit.
//!
//! ```text
//! cargo run --release --example partial_bounds
//! ```

use machine::{presets, NoiseModel, Work};
use mpisim::WorldBuilder;
use speedup_repro::sections::{Profile, SectionProfiler, SectionRuntime, VerifyMode};

const STEPS: usize = 30;

fn run_at(p: usize) -> (Profile, f64) {
    let sections = SectionRuntime::new(VerifyMode::Active);
    let profiler = SectionProfiler::new();
    sections.attach(profiler.clone());
    let s = sections.clone();
    // Noise off: with jitter, a section following an imbalanced phase
    // absorbs its neighbours' waiting time, which muddies the clean
    // "SERIAL time is constant in p" story this example demonstrates.
    // (The convolution study keeps the noise — there the coupling *is*
    // the finding.)
    let mut machine = presets::nehalem_cluster();
    machine.noise = NoiseModel::NONE;
    let report = WorldBuilder::new(p)
        .machine(machine)
        .seed(13)
        .tool(sections.clone())
        .run(move |proc| {
            let world = proc.world();
            for _ in 0..STEPS {
                // Perfectly parallel: total work divides by p.
                s.scoped(proc, &world, "PARALLEL", |proc| {
                    let share = 2.0e9 / proc.world_size() as f64;
                    proc.compute(Work::flops(share));
                });
                // Sequential: rank 0 works, everyone converges at a bcast.
                s.scoped(proc, &world, "SERIAL", |proc| {
                    if proc.world_rank() == 0 {
                        proc.compute(Work::flops(2.0e7));
                    }
                    let _ = world.bcast(proc, 0, (proc.world_rank() == 0).then(|| vec![1u8]));
                });
                // Collective whose cost grows with the communicator size.
                s.scoped(proc, &world, "EXCHANGE", |proc| {
                    let _ = world.allgather(proc, vec![0f64; 2048]);
                });
            }
        })
        .expect("run failed");
    (profiler.snapshot(), report.makespan_secs())
}

fn main() {
    let (seq_profile, seq_wall) = run_at(1);
    let seq_total = seq_profile.total_over(&["PARALLEL", "SERIAL", "EXCHANGE"]);
    println!("sequential: wall {seq_wall:.2} s (section total {seq_total:.2} s)\n");

    // Bounds derived at p = 8 (Eq. 6 per section).
    let probe_p = 8;
    let (probe, _) = run_at(probe_p);
    let bounds = speedup::bounds_from_profile(seq_total, &probe, probe_p);
    println!("per-section bounds derived at p = {probe_p} (tightest first):");
    for (label, bound) in &bounds {
        println!("  {label:<10} S <= {bound:>8.2}");
    }
    let (binding_label, binding) = speedup::binding_bound(&bounds).unwrap().clone();
    println!("  -> binding constraint: {binding_label} (S <= {binding:.2})\n");

    // Compare against measured speedups at larger scales. SERIAL's
    // per-process time cannot shrink with p, so its bound transposes.
    println!(
        "{:>6} {:>10} {:>10} {:>22}",
        "p", "wall (s)", "speedup", "within SERIAL bound?"
    );
    for p in [8usize, 16, 32, 64, 128] {
        let (_, wall) = run_at(p);
        let s = seq_wall / wall;
        let serial_bound = bounds
            .iter()
            .find(|(l, _)| l == "SERIAL")
            .map(|(_, b)| *b)
            .unwrap();
        println!(
            "{p:>6} {wall:>10.2} {s:>10.2} {:>22}",
            if s <= serial_bound {
                "yes"
            } else {
                "NO (check model)"
            }
        );
    }
    println!(
        "\nAmdahl would need a fitted \"serial fraction\"; the section bound\n\
         points at the SERIAL phase directly from measurable region times —\n\
         the practical advantage the paper argues for in Section 2."
    );
}
