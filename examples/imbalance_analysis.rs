//! Load-balance diagnostics from section metadata — the paper's Fig. 3
//! metrics in action, and a preview of its future-work "MPI Section
//! analysis interface describing the load-balancing of Sections".
//!
//! A deliberately imbalanced domain decomposition (rank r gets ~r times
//! the work) is profiled; the entry-imbalance and section-imbalance
//! metrics expose which phase loses the time, without any tracing.
//!
//! ```text
//! cargo run --release --example imbalance_analysis
//! ```

use machine::{presets, Work};
use mpisim::WorldBuilder;
use speedup_repro::sections::{SectionProfiler, SectionRuntime, VerifyMode};

fn main() {
    let sections = SectionRuntime::new(VerifyMode::Active);
    let profiler = SectionProfiler::new();
    sections.attach(profiler.clone());
    let s = sections.clone();
    let nranks = 16;

    WorldBuilder::new(nranks)
        .machine(presets::nehalem_cluster())
        .seed(7)
        .tool(sections.clone())
        .run(move |p| {
            let world = p.world();
            let rank = p.world_rank();
            for _step in 0..50 {
                // BALANCED: equal work everywhere.
                s.scoped(p, &world, "BALANCED", |p| {
                    p.compute(Work::flops(5.0e7));
                });
                // SKEWED: work grows linearly with rank (a bad partition).
                s.scoped(p, &world, "SKEWED", |p| {
                    p.compute(Work::flops(1.0e7 * (rank + 1) as f64));
                });
                // SYNC: the barrier that converts imbalance into waiting.
                s.scoped(p, &world, "SYNC", |p| {
                    world.barrier(p);
                });
            }
        })
        .expect("run failed");

    let profile = profiler.snapshot();
    println!(
        "{:<10} {:>12} {:>16} {:>14} {:>12}",
        "section", "total (s)", "entry imb (s)", "sect imb (s)", "span (s)"
    );
    for label in ["BALANCED", "SKEWED", "SYNC"] {
        let st = profile.get_world(label).expect("profiled");
        println!(
            "{:<10} {:>12.3} {:>16.4} {:>14.4} {:>12.3}",
            label,
            st.total_own_secs,
            st.mean_entry_imbalance_secs,
            st.mean_imbalance_secs,
            st.total_span_secs,
        );
    }

    let skewed = profile.get_world("SKEWED").unwrap();
    let sync = profile.get_world("SYNC").unwrap();
    println!(
        "\ndiagnosis: SKEWED's section imbalance ({:.4} s/instance) is what the\n\
         SYNC barrier pays for — its per-rank time is almost pure waiting\n\
         ({:.2} s total). The paper's point: \"loosely synchronized MPI ranks\n\
         may avoid an MPI_Barrier call which would convert the imbalance in a\n\
         parallel synchronization cost\" — here the metrics quantify exactly\n\
         that conversion, from two enter/exit calls per phase.",
        skewed.mean_imbalance_secs, sync.total_own_secs,
    );

    // Per-instance drill-down for one phase: the first few SKEWED steps.
    println!("\nSKEWED per-instance detail (first 5 steps):");
    println!(
        "{:>6} {:>12} {:>12} {:>14} {:>12}",
        "step", "Tmin (s)", "Tmax (s)", "mean Tsec (s)", "imb (s)"
    );
    for (i, inst) in skewed.per_instance.iter().take(5).enumerate() {
        println!(
            "{:>6} {:>12.4} {:>12.4} {:>14.4} {:>12.4}",
            i,
            inst.t_min().as_secs_f64(),
            inst.t_max().as_secs_f64(),
            inst.mean_t_section_secs(),
            inst.imbalance_secs(),
        );
    }
}
