//! Model *your* cluster without recompiling: define a machine in the
//! plain-text config format, load it, and ask the usual section-based
//! questions — which phase will cap my scaling on this hardware?
//!
//! ```text
//! cargo run --release --example custom_machine
//! ```
//!
//! The same file format works with the profiling CLI:
//! `cargo run -p bench --bin profile -- conv --machine-file my.mach ...`

use machine::MachineModel;
use mpisim::WorldBuilder;
use speedup_repro::convolution::{run_convolution, ConvConfig};
use speedup_repro::sections::{SectionProfiler, SectionRuntime, VerifyMode};
use std::sync::Arc;

/// Two hypothetical procurement options for the same budget: fat nodes on
/// a slow fabric vs thin nodes on a fast one.
const FAT_NODES: &str = "
name = fat-nodes-slow-fabric
cores_per_node = 64
ranks_per_node = 64
flops_per_sec = 2.05e8
node_bandwidth = 100e9
per_thread_bandwidth = 4e9
intra.latency  = 5e-7
intra.bandwidth = 10e9
intra.overhead = 2e-7
inter.latency  = 8e-6          # cheap fabric
inter.bandwidth = 1e9
inter.overhead = 2e-6
noise.compute_sigma = 0.04
";

const THIN_NODES: &str = "
name = thin-nodes-fast-fabric
cores_per_node = 8
ranks_per_node = 8
flops_per_sec = 2.05e8
node_bandwidth = 25e9
per_thread_bandwidth = 6e9
intra.latency  = 5e-7
intra.bandwidth = 10e9
intra.overhead = 2e-7
inter.latency  = 1.2e-6        # premium fabric
inter.bandwidth = 10e9
inter.overhead = 4e-7
noise.compute_sigma = 0.04
";

fn measure(machine: &MachineModel, p: usize, steps: usize) -> (f64, f64, f64) {
    let sections = SectionRuntime::new(VerifyMode::Off);
    let profiler = SectionProfiler::new();
    sections.attach(profiler.clone());
    let s = sections.clone();
    let cfg = Arc::new(ConvConfig::paper(steps));
    let report = WorldBuilder::new(p)
        .machine(machine.clone())
        .seed(42)
        .tool(sections.clone())
        .run(move |pr| {
            run_convolution(pr, &s, &cfg);
        })
        .expect("run failed");
    let profile = profiler.snapshot();
    let total = |label: &str| {
        profile
            .get_world(label)
            .map(|st| st.total_own_secs)
            .unwrap_or(0.0)
    };
    (report.makespan_secs(), total("HALO"), total("SCATTER"))
}

fn main() {
    let fat = MachineModel::from_config_str(FAT_NODES).expect("valid config");
    let thin = MachineModel::from_config_str(THIN_NODES).expect("valid config");
    println!(
        "option A: {}\noption B: {}\n",
        fat.describe(),
        thin.describe()
    );

    let steps = 100;
    println!(
        "{:>4} | {:>31} | {:>31}",
        "p", "A: wall / HALO / SCATTER (s)", "B: wall / HALO / SCATTER (s)"
    );
    for p in [8usize, 64, 256, 456] {
        let (wall_a, halo_a, scat_a) = measure(&fat, p, steps);
        let (wall_b, halo_b, scat_b) = measure(&thin, p, steps);
        println!(
            "{p:>4} | {wall_a:>10.2} / {halo_a:>7.2} / {scat_a:>7.2} | {wall_b:>10.2} / {halo_b:>7.2} / {scat_b:>7.2}"
        );
    }
    println!(
        "\nThe answer this workload gives is itself instructive: the two\n\
         designs are indistinguishable until the job spans option A's\n\
         nodes (p > 64), and even then only the bulk SCATTER/GATHER and\n\
         the walltime tail notice the 10x fabric gap — a 1-D stencil's\n\
         halo traffic is overwhelmingly node-local, and its waiting time\n\
         is jitter, not wire. Eight config lines and one section profile\n\
         answer a procurement question that folklore usually argues about.\n\
         Edit the two config strings (or load files with\n\
         MachineModel::from_config_file) to ask your own."
    );
}
