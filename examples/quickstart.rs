//! Quickstart: outline the phases of a small MPI program with
//! `MPI_Section`s, profile them, and read off the paper's Fig. 3 metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The program is a toy domain-decomposition loop: each of 8 ranks
//! computes, exchanges a boundary with its neighbours, and participates in
//! a global reduction — with rank 3 deliberately slowed down so the
//! imbalance metrics have something to show.

use machine::{presets, Work};
use mpisim::{Src, TagSel, WorldBuilder};
use speedup_repro::sections::{SectionProfiler, SectionRuntime, VerifyMode, MPI_MAIN};

fn main() {
    // 1. Create the section runtime and attach the profiler tool — the
    //    equivalent of linking a PMPI tool against an instrumented app.
    let sections = SectionRuntime::new(VerifyMode::Active);
    let profiler = SectionProfiler::new();
    sections.attach(profiler.clone());

    // 2. Run an SPMD program on a simulated 8-core-per-node cluster.
    let s = sections.clone();
    let report = WorldBuilder::new(8)
        .machine(presets::nehalem_cluster())
        .seed(42)
        .tool(sections.clone()) // opens/closes MPI_MAIN at Init/Finalize
        .run(move |p| {
            let world = p.world();
            let rank = p.world_rank();
            let n = p.world_size();
            for step in 0..20 {
                // COMPUTE: rank 3 is a straggler.
                s.scoped(p, &world, "COMPUTE", |p| {
                    let slow = if rank == 3 { 2.0 } else { 1.0 };
                    p.compute(Work::flops(2.0e8 * slow));
                });
                // EXCHANGE: ring sendrecv with the right neighbour.
                s.scoped(p, &world, "EXCHANGE", |p| {
                    let right = (rank + 1) % n;
                    let left = (rank + n - 1) % n;
                    let _ = world.sendrecv(
                        p,
                        right,
                        step,
                        &[rank as f64],
                        Src::Rank(left),
                        TagSel::Is(step),
                    );
                });
                // REDUCE: a global residual norm.
                s.scoped(p, &world, "REDUCE", |p| {
                    let _ = world.allreduce_sum_f64(p, rank as f64);
                });
            }
        })
        .expect("run failed");

    // 3. Read the profile: this is what a section-aware tool reports.
    let profile = profiler.snapshot();
    println!("simulated job walltime: {:.3} s\n", report.makespan_secs());
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>14} {:>12}",
        "section", "instances", "total (s)", "avg/rank (s)", "entry imb (s)", "imb (s)"
    );
    for label in [MPI_MAIN, "COMPUTE", "EXCHANGE", "REDUCE"] {
        let st = profile.get_world(label).expect("profiled");
        println!(
            "{:<10} {:>10} {:>12.3} {:>12.3} {:>14.6} {:>12.6}",
            label,
            st.instances,
            st.total_own_secs,
            st.avg_per_rank_secs(),
            st.mean_entry_imbalance_secs,
            st.mean_imbalance_secs,
        );
    }

    // 4. The paper's point: the straggler-limited COMPUTE section bounds
    //    the achievable speedup (Eq. 6) without running at any other scale.
    let seq_estimate: f64 = profile.total_over(&["COMPUTE", "EXCHANGE", "REDUCE"]);
    let bounds = speedup::bounds_from_profile(seq_estimate, &profile, 8);
    println!("\npartial speedup bounds (Eq. 6), tightest first:");
    for (label, bound) in bounds.iter().take(3) {
        println!("  {label:<10} S <= {bound:.2}");
    }
}
