//! The paper's §5.2 headline: measure OpenMP scaling *solely from MPI-level
//! sections*. Runs the LULESH proxy on the simulated KNL in several
//! MPI × OpenMP configurations and locates the inflexion point that bounds
//! the speedup (Fig. 10).
//!
//! ```text
//! cargo run --release --example lulesh_hybrid [iterations]
//! ```

use mpisim::WorldBuilder;
use speedup_repro::lulesh::{run_lulesh, size_for, LuleshConfig, PAPER_TOTAL_ELEMENTS};
use speedup_repro::sections::{SectionProfiler, SectionRuntime, VerifyMode};
use std::sync::Arc;

fn measure(p: usize, threads: usize, iterations: usize) -> (f64, f64, f64) {
    let s = size_for(PAPER_TOTAL_ELEMENTS, p).expect("cubic process count");
    let sections = SectionRuntime::new(VerifyMode::Active);
    let profiler = SectionProfiler::new();
    sections.attach(profiler.clone());
    let sr = sections.clone();
    let cfg = Arc::new(LuleshConfig::timing(s, iterations, threads));
    WorldBuilder::new(p)
        .machine(machine::presets::knl())
        .seed(9)
        .tool(sections.clone())
        .run(move |proc| {
            run_lulesh(proc, &sr, &cfg);
        })
        .expect("run failed");
    let profile = profiler.snapshot();
    let avg = |label: &str| {
        profile
            .get_world(label)
            .map(|st| st.avg_per_rank_secs())
            .unwrap_or(0.0)
    };
    (
        avg("timeloop"),
        avg("LagrangeNodal"),
        avg("LagrangeElements"),
    )
}

fn main() {
    let iterations: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(250);
    println!(
        "LULESH proxy, 110 592 elements strong scaling on the simulated KNL\n\
         ({iterations} iterations; the paper's scale is 2500)\n"
    );

    println!(
        "{:>3} {:>8} {:>12} {:>16} {:>18}",
        "p", "threads", "walltime (s)", "LagrangeNodal (s)", "LagrangeElements (s)"
    );
    // The hybrid grid of Fig. 9.
    for p in [1usize, 8, 27] {
        for threads in [1usize, 4, 16, 64] {
            let (wall, nodal, elements) = measure(p, threads, iterations);
            println!("{p:>3} {threads:>8} {wall:>12.2} {nodal:>16.2} {elements:>18.2}");
        }
        println!();
    }

    // The pure-OpenMP sweep of Fig. 10: find the inflexion point.
    let mut series = Vec::new();
    let mut seq = 0.0;
    for threads in [1usize, 2, 4, 8, 16, 20, 24, 32, 48, 64] {
        let (wall, _, _) = measure(1, threads, iterations);
        if threads == 1 {
            seq = wall;
        }
        series.push((threads, wall));
    }
    let scaling = speedup::ScalingSeries::new(series);
    let inflexion = scaling.inflexion(0.02).expect("measured");
    println!(
        "pure OpenMP (p = 1): inflexion at {} threads — walltime stops\n\
         decreasing there, so Eq. 6 caps any further speedup at {:.2}x\n\
         (measured speedup at the inflexion: {:.2}x).",
        inflexion.p,
        scaling.bound_at_inflexion(seq, 0.02).unwrap(),
        seq / inflexion.secs,
    );
    println!(
        "\nRun `cargo run --release -p bench --bin figures -- fig10` for the\n\
         full-scale version compared against the paper's numbers."
    );
}
