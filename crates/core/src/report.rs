//! Text profile reports — the kind of breakdown the paper's MALP tool
//! (§8) renders from section data: per-section share of the execution,
//! imbalance columns, and the partial-speedup-bound ranking that tells the
//! user which region caps their scaling.

use crate::balance::BalanceReport;
use crate::profiler::{Profile, SectionStats};
use crate::section::MPI_MAIN;

/// Options controlling report rendering.
#[derive(Debug, Clone)]
pub struct ReportOptions {
    /// Sort sections by exclusive (true) or inclusive (false) time.
    pub sort_by_exclusive: bool,
    /// Cap the number of sections shown (0 = all).
    pub top: usize,
    /// Include the per-section load-balance block.
    pub with_balance: bool,
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            sort_by_exclusive: true,
            top: 0,
            with_balance: true,
        }
    }
}

/// Render a human-readable profile report.
pub fn render(profile: &Profile, opts: &ReportOptions) -> String {
    let mut sections: Vec<&SectionStats> = profile
        .sections()
        .filter(|s| s.key.label != MPI_MAIN)
        .collect();
    let keyf = |s: &SectionStats| {
        if opts.sort_by_exclusive {
            s.total_excl_secs
        } else {
            s.total_own_secs
        }
    };
    sections.sort_by(|a, b| {
        keyf(b)
            .partial_cmp(&keyf(a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    if opts.top > 0 {
        sections.truncate(opts.top);
    }
    let denom: f64 = profile
        .sections()
        .filter(|s| s.key.label != MPI_MAIN)
        .map(|s| s.total_excl_secs)
        .sum();

    let mut out = String::new();
    out.push_str(&format!(
        "{:<32} {:>6} {:>6} {:>12} {:>12} {:>8} {:>10}\n",
        "section", "ranks", "inst", "incl (s)", "excl (s)", "excl %", "imb (s)"
    ));
    out.push_str(&"-".repeat(92));
    out.push('\n');
    for s in &sections {
        let pct = if denom > 0.0 {
            100.0 * s.total_excl_secs / denom
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<32} {:>6} {:>6} {:>12.3} {:>12.3} {:>7.2}% {:>10.4}\n",
            truncate_label(&s.key.label, 32),
            s.participants,
            s.instances,
            s.total_own_secs,
            s.total_excl_secs,
            pct,
            s.mean_imbalance_secs,
        ));
    }
    if let Some(main) = profile.get_world(MPI_MAIN) {
        out.push_str(&format!(
            "\nMPI_MAIN: {:.3} s inclusive over {} ranks ({:.3} s per rank)\n",
            main.total_own_secs,
            main.participants,
            main.avg_per_rank_secs(),
        ));
    }
    if opts.with_balance {
        let reports = crate::balance::rank_by_saving(profile);
        let interesting: Vec<&BalanceReport> = reports
            .iter()
            .filter(|r| r.potential_saving_secs() > 1e-9)
            .take(5)
            .collect();
        if !interesting.is_empty() {
            out.push_str("\nload balance (largest potential saving first):\n");
            for r in interesting {
                out.push_str("  ");
                out.push_str(&r.summary());
                out.push('\n');
            }
        }
    }
    out
}

/// Render the Eq. 6 bound ranking against a sequential baseline total.
pub fn render_bounds(profile: &Profile, seq_total_secs: f64, p: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "partial speedup bounds (Eq. 6) vs sequential total {seq_total_secs:.2} s at p = {p}:\n"
    ));
    let mut bounds: Vec<(String, f64)> = profile
        .sections()
        .filter(|s| s.key.label != MPI_MAIN)
        .map(|s| {
            let per_process = s.total_own_secs / p.max(1) as f64;
            let bound = if per_process > 0.0 {
                seq_total_secs / per_process
            } else {
                f64::INFINITY
            };
            (s.key.label.clone(), bound)
        })
        .collect();
    bounds.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    for (label, bound) in bounds {
        if bound.is_infinite() {
            out.push_str(&format!("  {label:<32} (no cost: unbounded)\n"));
        } else {
            out.push_str(&format!("  {label:<32} S <= {bound:.2}\n"));
        }
    }
    out
}

/// Truncate a section label to `max` characters for table alignment,
/// marking the cut with `…` (char-safe on multi-byte labels). Public so
/// downstream report renderers (e.g. `speedup::trend`) align the same way.
pub fn truncate_label(label: &str, max: usize) -> String {
    if label.chars().count() <= max {
        label.to_string()
    } else {
        // Char-safe: byte slicing would panic on multi-byte labels.
        let head: String = label.chars().take(max.saturating_sub(1)).collect();
        format!("{head}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SectionProfiler, SectionRuntime, VerifyMode};
    use mpisim::WorldBuilder;

    fn sample_profile() -> Profile {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let profiler = SectionProfiler::new();
        sections.attach(profiler.clone());
        let s = sections.clone();
        WorldBuilder::new(4)
            .tool(sections.clone())
            .run(move |p| {
                let world = p.world();
                s.scoped(p, &world, "compute", |p| {
                    p.advance_secs(1.0 + p.world_rank() as f64 * 0.5);
                });
                s.scoped(p, &world, "io", |p| {
                    p.advance_secs(0.25);
                });
            })
            .unwrap();
        profiler.snapshot()
    }

    #[test]
    fn report_lists_sections_by_exclusive_share() {
        let profile = sample_profile();
        let text = render(&profile, &ReportOptions::default());
        assert!(text.contains("compute"));
        assert!(text.contains("io"));
        assert!(text.contains("MPI_MAIN"));
        // compute (7 s total) sorts above io (1 s total). Search at line
        // starts ("section" also contains the substring "io").
        let c = text.find("\ncompute").unwrap();
        let i = text.find("\nio").unwrap();
        assert!(c < i);
        // Balance block flags compute's skew.
        assert!(text.contains("load balance"));
        assert!(text.contains("imbalance x"));
    }

    #[test]
    fn top_truncates() {
        let profile = sample_profile();
        let text = render(
            &profile,
            &ReportOptions {
                top: 1,
                with_balance: false,
                ..Default::default()
            },
        );
        assert!(text.contains("compute"));
        assert!(!text.lines().any(|l| l.starts_with("io")));
    }

    #[test]
    fn bounds_report_sorted_tightest_first() {
        let profile = sample_profile();
        let text = render_bounds(&profile, 10.0, 4);
        let compute_at = text.find("compute").unwrap();
        let io_at = text.find("io ").unwrap_or(text.find("io").unwrap());
        assert!(compute_at < io_at, "tighter bound first:\n{text}");
    }

    #[test]
    fn per_rank_distribution_is_recorded() {
        let profile = sample_profile();
        let compute = profile.get_world("compute").unwrap();
        assert_eq!(compute.per_rank_own.len(), 4);
        // Rank 3 advanced 2.5 s inside compute.
        assert!((compute.per_rank_own[3] - 2.5).abs() < 1e-9);
        assert!((compute.per_rank_own[0] - 1.0).abs() < 1e-9);
        let balance = crate::balance::BalanceReport::for_section(compute).unwrap();
        assert_eq!(balance.max.0, 3);
    }

    #[test]
    fn truncation_helper() {
        assert_eq!(truncate_label("short", 10), "short");
        let long = truncate_label("averyveryverylonglabel", 8);
        assert!(long.chars().count() <= 8);
    }
}
