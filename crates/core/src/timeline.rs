//! Time-resolved windowing of a recorded run.
//!
//! Whole-run aggregates (the pvar registry, the wait-state report) cannot
//! show the paper's central finding — Fig. 5b's HALO time grows with p
//! because jitter *accumulates* over the time-step loop. Following
//! trace-based time-resolved analysis (Haldar, arXiv:2512.01764) and the
//! idle-wave mechanics of Afzal et al. (arXiv:2302.12164), this module
//! segments a run's virtual time into windows and re-derives, per window
//! and per section,
//!
//! * **presence**: rank-summed time the section was open,
//! * **wait classes**: late-sender and wait-at-collective idling (same
//!   taxonomy as [`crate::waitstate::classify`], re-cut along windows),
//! * **transfer**: post-send wire + rendezvous-operation time,
//! * **useful** time (presence minus waits and transfer),
//! * message/byte counters (pvar-style deltas: each point event lands in
//!   exactly one window, so window sums recompose the run totals),
//! * a log-bucket wait-duration histogram per window (reusing
//!   [`DurationHistogram`] — one binning scheme for the whole repo).
//!
//! Everything is extracted from the frozen [`CommLog`] after the run: the
//! engine adds zero overhead while virtual time advances, and identical
//! seeds yield byte-identical timelines. The POP-style efficiency
//! hierarchy over these numbers lives in [`crate::efficiency`]; trend
//! detection over the resulting metric series lives in `speedup::trend`.

use crate::histogram::{DurationHistogram, BUCKETS};
use crate::waitstate::{CommLog, RecKind};
use mpisim::diag::json_str;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// How to cut the run into windows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Windowing {
    /// `n` equal-width windows over `[0, makespan]`.
    Fixed(usize),
    /// Phase-aligned: one window per iteration of the named outermost
    /// section, edges at each entry of that section observed on rank 0
    /// (plus the run's start and end). Falls back to a single window when
    /// the label never occurs.
    Aligned(String),
}

/// Per-(window, section) accumulation over all ranks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowSection {
    /// The window's total rank-time, `nranks × window width`, ns — the
    /// capacity every efficiency in [`crate::efficiency`] is normalized
    /// by, so a section's losses are measured against what the machine
    /// could have done in the window, not against the section's own
    /// (wait-inflated) presence.
    pub capacity_ns: u64,
    /// Rank-summed presence of the section inside the window, ns.
    pub time_ns: u64,
    /// Rank-summed useful time: presence minus waits and transfer.
    pub useful_ns: u64,
    /// Rank-summed late-sender idling (receive posted before the send).
    pub late_sender_ns: u64,
    /// Rank-summed early-arrival idling at collective rendezvous.
    pub coll_wait_ns: u64,
    /// Rank-summed transfer time: post-send wire time of receives plus
    /// the modelled cost of collective operations after the last arrival.
    pub transfer_ns: u64,
    /// Largest single-rank presence in the window (the window's wall
    /// extent through this section).
    pub max_time_ns: u64,
    /// Largest single-rank useful time.
    pub max_useful_ns: u64,
    /// Ranks with non-zero presence.
    pub ranks: usize,
    /// Point-to-point messages sent from inside the (window, section).
    pub sent_msgs: u64,
    /// Logical bytes of those sends.
    pub sent_bytes: u64,
    /// Point-to-point messages whose receive completed here.
    pub recv_msgs: u64,
    /// Logical bytes of those receives.
    pub recv_bytes: u64,
    /// Collective rendezvous completed here.
    pub coll_exits: u64,
}

impl WindowSection {
    fn add_counters(&mut self, other: &WindowSection) {
        self.capacity_ns += other.capacity_ns;
        self.time_ns += other.time_ns;
        self.useful_ns += other.useful_ns;
        self.late_sender_ns += other.late_sender_ns;
        self.coll_wait_ns += other.coll_wait_ns;
        self.transfer_ns += other.transfer_ns;
        self.max_time_ns = self.max_time_ns.max(other.max_time_ns);
        self.max_useful_ns = self.max_useful_ns.max(other.max_useful_ns);
        self.ranks = self.ranks.max(other.ranks);
        self.sent_msgs += other.sent_msgs;
        self.sent_bytes += other.sent_bytes;
        self.recv_msgs += other.recv_msgs;
        self.recv_bytes += other.recv_bytes;
        self.coll_exits += other.coll_exits;
    }

    /// The POP-style efficiency hierarchy of this cell.
    pub fn efficiency(&self) -> crate::efficiency::Efficiencies {
        crate::efficiency::Efficiencies::of(self)
    }

    fn to_json(self) -> String {
        let e = self.efficiency();
        format!(
            "{{\"capacity_ns\":{},\"time_ns\":{},\"useful_ns\":{},\"late_sender_ns\":{},\"coll_wait_ns\":{},\
             \"transfer_ns\":{},\"max_time_ns\":{},\"max_useful_ns\":{},\"ranks\":{},\
             \"sent_msgs\":{},\"sent_bytes\":{},\"recv_msgs\":{},\"recv_bytes\":{},\
             \"coll_exits\":{},\"efficiency\":{}}}",
            self.capacity_ns,
            self.time_ns,
            self.useful_ns,
            self.late_sender_ns,
            self.coll_wait_ns,
            self.transfer_ns,
            self.max_time_ns,
            self.max_useful_ns,
            self.ranks,
            self.sent_msgs,
            self.sent_bytes,
            self.recv_msgs,
            self.recv_bytes,
            self.coll_exits,
            e.to_json()
        )
    }
}

/// One virtual-time window.
#[derive(Debug, Clone)]
pub struct Window {
    /// Inclusive start, ns.
    pub start_ns: u64,
    /// Exclusive end (the last window closes at the makespan), ns.
    pub end_ns: u64,
    /// Per-section stats, keyed by label.
    pub sections: BTreeMap<String, WindowSection>,
    /// Distribution of the individual wait durations (late-sender and
    /// collective waits) that *started* in this window — the same
    /// half-decade log buckets as [`crate::HistogramTool`].
    pub wait_hist: DurationHistogram,
}

impl Window {
    /// Window width in seconds.
    pub fn width_secs(&self) -> f64 {
        (self.end_ns - self.start_ns) as f64 / 1e9
    }
}

/// The windowed view of one run.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// `windows.len() + 1` window edges, ascending, ns.
    pub edges_ns: Vec<u64>,
    /// World size of the recorded run.
    pub nranks: usize,
    /// The windows, in time order.
    pub windows: Vec<Window>,
}

/// Per-rank working cell during extraction.
#[derive(Default, Clone, Copy)]
struct RankCell {
    time_ns: u64,
    late_sender_ns: u64,
    coll_wait_ns: u64,
    transfer_ns: u64,
    sent_msgs: u64,
    sent_bytes: u64,
    recv_msgs: u64,
    recv_bytes: u64,
    coll_exits: u64,
}

impl RankCell {
    fn useful_ns(&self) -> u64 {
        self.time_ns
            .saturating_sub(self.late_sender_ns + self.coll_wait_ns + self.transfer_ns)
    }
}

/// Compute the window edges for a log under a windowing policy.
pub fn window_edges(log: &CommLog, windowing: &Windowing) -> Vec<u64> {
    let makespan = log.makespan_ns();
    match windowing {
        Windowing::Fixed(n) => {
            let n = (*n).max(1) as u64;
            let mut edges: Vec<u64> = (0..=n).map(|i| makespan * i / n).collect();
            edges.dedup(); // zero-length runs collapse to [0, 0]
            if edges.len() < 2 {
                edges = vec![0, makespan];
            }
            edges
        }
        Windowing::Aligned(label) => {
            let mut edges = vec![0u64];
            // Entries of `label` on rank 0: the active section is the
            // previous record's `sec`, so a transition *into* the label is
            // an iteration boundary.
            if let Some(id) = log.names.iter().position(|n| n == label) {
                let id = id as u32;
                if let Some(rr) = log.ranks.first() {
                    let mut current = u32::MAX;
                    for rec in &rr.recs {
                        if rec.sec == id && current != id {
                            edges.push(rec.t_ns);
                        }
                        current = rec.sec;
                    }
                }
            }
            edges.push(makespan);
            edges.sort_unstable();
            edges.dedup();
            if edges.len() < 2 {
                edges = vec![0, makespan];
            }
            edges
        }
    }
}

/// The window containing time `t` (the final edge belongs to the last
/// window, so the makespan instant is never dropped).
fn window_of(edges: &[u64], t: u64) -> usize {
    let w = edges.partition_point(|&e| e <= t);
    w.saturating_sub(1).min(edges.len().saturating_sub(2))
}

/// Split `[a, b)` across the windows, invoking `f(window, overlap_ns)`
/// for every non-empty overlap.
fn split_interval(edges: &[u64], a: u64, b: u64, mut f: impl FnMut(usize, u64)) {
    if b <= a {
        return;
    }
    let mut w = window_of(edges, a);
    let last = edges.len() - 2;
    let mut lo = a;
    while lo < b {
        let hi = if w == last { b } else { b.min(edges[w + 1]) };
        if hi > lo {
            f(w, hi - lo);
        }
        if w == last {
            break;
        }
        lo = hi.max(edges[w + 1]);
        w += 1;
    }
}

/// Build the windowed timeline from a frozen communication log.
pub fn build(log: &CommLog, windowing: &Windowing) -> Timeline {
    let edges = window_edges(log, windowing);
    let nwin = edges.len() - 1;
    let mut cells: HashMap<(usize, u32, usize), RankCell> = HashMap::new();
    let mut hists: Vec<DurationHistogram> = vec![DurationHistogram::default(); nwin];

    for (rank, rr) in log.ranks.iter().enumerate() {
        for (i, rec) in rr.recs.iter().enumerate() {
            // Presence: the interval from this record to the next belongs
            // to `rec.sec` (the section active after the record).
            let next_t = rr
                .recs
                .get(i + 1)
                .map(|r| r.t_ns)
                .unwrap_or(rr.fini_ns)
                .max(rec.t_ns);
            split_interval(&edges, rec.t_ns, next_t, |w, ns| {
                cells.entry((w, rec.sec, rank)).or_default().time_ns += ns;
            });

            match rec.kind {
                RecKind::Send { seq } => {
                    let w = window_of(&edges, rec.t_ns);
                    let cell = cells.entry((w, rec.sec, rank)).or_default();
                    cell.sent_msgs += 1;
                    cell.sent_bytes += log.sends.get(&seq).map(|s| s.bytes).unwrap_or(0);
                }
                RecKind::RecvMatch {
                    seq,
                    post_ns,
                    done_ns,
                } => {
                    let send = log.sends.get(&seq).copied();
                    let (send_ns, bytes) =
                        send.map(|s| (s.send_ns, s.bytes)).unwrap_or((post_ns, 0));
                    if send_ns > post_ns {
                        // Receiver idled until the send was issued.
                        split_interval(&edges, post_ns, send_ns.min(done_ns), |w, ns| {
                            cells.entry((w, rec.sec, rank)).or_default().late_sender_ns += ns;
                        });
                        hists[window_of(&edges, post_ns)].record(send_ns - post_ns);
                    }
                    // Wire time (and receive overhead) after the send.
                    split_interval(&edges, send_ns.max(post_ns), done_ns, |w, ns| {
                        cells.entry((w, rec.sec, rank)).or_default().transfer_ns += ns;
                    });
                    let w = window_of(&edges, done_ns);
                    let cell = cells.entry((w, rec.sec, rank)).or_default();
                    cell.recv_msgs += 1;
                    cell.recv_bytes += bytes;
                }
                RecKind::CollExit {
                    comm,
                    round,
                    enter_ns,
                } => {
                    let max_enter = log
                        .colls
                        .get(&(comm, round))
                        .and_then(|cr| cr.entries.iter().map(|&(_, t)| t).max())
                        .unwrap_or(enter_ns)
                        .max(enter_ns);
                    if max_enter > enter_ns {
                        split_interval(&edges, enter_ns, max_enter.min(rec.t_ns), |w, ns| {
                            cells.entry((w, rec.sec, rank)).or_default().coll_wait_ns += ns;
                        });
                        hists[window_of(&edges, enter_ns)].record(max_enter - enter_ns);
                    }
                    // The modelled operation cost after the last arrival.
                    split_interval(&edges, max_enter, rec.t_ns, |w, ns| {
                        cells.entry((w, rec.sec, rank)).or_default().transfer_ns += ns;
                    });
                    let w = window_of(&edges, rec.t_ns);
                    cells.entry((w, rec.sec, rank)).or_default().coll_exits += 1;
                }
                _ => {}
            }
        }
    }

    // Fold per-rank cells into per-(window, section) stats. BTreeMap keyed
    // by interned id first, then resolved to names, keeps the fold
    // deterministic regardless of HashMap iteration order.
    let mut folded: BTreeMap<(usize, u32), WindowSection> = BTreeMap::new();
    for (&(w, sec, _rank), cell) in &cells {
        let ws = folded.entry((w, sec)).or_default();
        ws.time_ns += cell.time_ns;
        ws.useful_ns += cell.useful_ns();
        ws.late_sender_ns += cell.late_sender_ns;
        ws.coll_wait_ns += cell.coll_wait_ns;
        ws.transfer_ns += cell.transfer_ns;
        ws.max_time_ns = ws.max_time_ns.max(cell.time_ns);
        ws.max_useful_ns = ws.max_useful_ns.max(cell.useful_ns());
        if cell.time_ns > 0 {
            ws.ranks += 1;
        }
        ws.sent_msgs += cell.sent_msgs;
        ws.sent_bytes += cell.sent_bytes;
        ws.recv_msgs += cell.recv_msgs;
        ws.recv_bytes += cell.recv_bytes;
        ws.coll_exits += cell.coll_exits;
    }

    let mut windows: Vec<Window> = (0..nwin)
        .map(|w| Window {
            start_ns: edges[w],
            end_ns: edges[w + 1],
            sections: BTreeMap::new(),
            wait_hist: DurationHistogram::default(),
        })
        .collect();
    let nranks = log.nranks() as u64;
    for ((w, sec), mut ws) in folded {
        ws.capacity_ns = (edges[w + 1] - edges[w]) * nranks;
        windows[w].sections.insert(log.name(sec).to_string(), ws);
    }
    for (w, hist) in hists.into_iter().enumerate() {
        windows[w].wait_hist = hist;
    }

    Timeline {
        edges_ns: edges,
        nranks: log.nranks(),
        windows,
    }
}

impl Timeline {
    /// Every section label appearing in any window, sorted.
    pub fn labels(&self) -> Vec<&str> {
        let mut labels: Vec<&str> = self
            .windows
            .iter()
            .flat_map(|w| w.sections.keys().map(String::as_str))
            .collect();
        labels.sort_unstable();
        labels.dedup();
        labels
    }

    /// The per-window series of one metric for one section label; `None`
    /// where the section has no presence in the window.
    pub fn series(&self, label: &str, metric: impl Fn(&WindowSection) -> f64) -> Vec<Option<f64>> {
        self.windows
            .iter()
            .map(|w| w.sections.get(label).map(&metric))
            .collect()
    }

    /// Whole-run per-section totals, recomposed from the windows (window
    /// sums are exact: every event and every nanosecond of presence lands
    /// in exactly one window). `max_*` fields are maxima over windows.
    pub fn section_totals(&self) -> BTreeMap<String, WindowSection> {
        let mut totals: BTreeMap<String, WindowSection> = BTreeMap::new();
        for w in &self.windows {
            for (label, ws) in &w.sections {
                totals.entry(label.clone()).or_default().add_counters(ws);
            }
        }
        totals
    }

    /// Export as CSV: one row per (window, section), with the raw window
    /// stats and the derived efficiency hierarchy.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "window,start_ns,end_ns,section,ranks,capacity_ns,time_ns,useful_ns,late_sender_ns,\
             coll_wait_ns,transfer_ns,sent_msgs,sent_bytes,recv_msgs,recv_bytes,coll_exits,\
             parallel_eff,load_balance,comm_eff,serialization_eff,transfer_eff\n",
        );
        for (i, w) in self.windows.iter().enumerate() {
            for (label, ws) in &w.sections {
                let e = ws.efficiency();
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6}",
                    i,
                    w.start_ns,
                    w.end_ns,
                    label,
                    ws.ranks,
                    ws.capacity_ns,
                    ws.time_ns,
                    ws.useful_ns,
                    ws.late_sender_ns,
                    ws.coll_wait_ns,
                    ws.transfer_ns,
                    ws.sent_msgs,
                    ws.sent_bytes,
                    ws.recv_msgs,
                    ws.recv_bytes,
                    ws.coll_exits,
                    e.parallel,
                    e.load_balance,
                    e.comm,
                    e.serialization,
                    e.transfer,
                );
            }
        }
        out
    }

    /// Machine-readable JSON dump (deterministic field and key order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"nranks\":");
        let _ = write!(out, "{}", self.nranks);
        out.push_str(",\"edges_ns\":[");
        for (i, e) in self.edges_ns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{e}");
        }
        out.push_str("],\"windows\":[");
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"start_ns\":{},\"end_ns\":{}", w.start_ns, w.end_ns);
            out.push_str(",\"wait_hist\":");
            out.push_str(&hist_json(&w.wait_hist));
            out.push_str(",\"sections\":[");
            for (j, (label, ws)) in w.sections.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"label\":{},\"stats\":{}}}",
                    json_str(label),
                    ws.to_json()
                );
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Chrome trace-event counter rows (`ph:"C"`): one counter track per
    /// world section carrying the parallel / communication efficiency at
    /// each window start (Perfetto renders them as stepped counter lanes
    /// next to the span rows and flow arrows). `pid` is a synthetic
    /// process labelled by the caller's metadata row.
    pub fn counter_events(&self, pid: usize) -> Vec<String> {
        let mut events = Vec::new();
        for label in self.labels() {
            for w in &self.windows {
                if let Some(ws) = w.sections.get(label) {
                    let e = ws.efficiency();
                    events.push(format!(
                        "{{\"name\":{},\"cat\":\"efficiency\",\"ph\":\"C\",\"ts\":{:.3},\"pid\":{pid},\"args\":{{\"parallel\":{:.6},\"comm\":{:.6}}}}}",
                        json_str(&format!("eff {label}")),
                        w.start_ns as f64 / 1e3,
                        e.parallel,
                        e.comm,
                    ));
                }
            }
        }
        events
    }
}

/// JSON form of a [`DurationHistogram`] (empty histograms export
/// `min_ns: 0` rather than the `u64::MAX` sentinel).
fn hist_json(h: &DurationHistogram) -> String {
    let mut out = String::from("{\"counts\":[");
    for (i, c) in h.counts.iter().take(BUCKETS).enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{c}");
    }
    let min = if h.total == 0 { 0 } else { h.min_ns };
    let _ = write!(
        out,
        "],\"total\":{},\"sum_ns\":{},\"min_ns\":{min},\"max_ns\":{}}}",
        h.total, h.sum_ns, h.max_ns
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waitstate::CommRecorder;
    use crate::{SectionRuntime, VerifyMode};
    use mpisim::{Src, TagSel, WorldBuilder};
    use std::sync::Arc;

    fn pipeline_log() -> CommLog {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let rec = CommRecorder::new();
        let s = sections.clone();
        WorldBuilder::new(2)
            .tool(sections.clone())
            .tool(rec.clone())
            .run(move |p| {
                let world = p.world();
                for _ in 0..4 {
                    s.scoped(p, &world, "STEP", |p| {
                        let world = p.world();
                        if p.world_rank() == 0 {
                            p.advance_secs(1.0);
                            world.send(p, 1, 0, &[7u8; 16]);
                        } else {
                            let _ = world.recv::<u8>(p, Src::Rank(0), TagSel::Any);
                        }
                    });
                }
                s.scoped(p, &world, "SYNC", |p| {
                    let world = p.world();
                    world.barrier(p);
                });
            })
            .unwrap();
        rec.freeze()
    }

    #[test]
    fn fixed_edges_cover_the_run() {
        let log = pipeline_log();
        let edges = window_edges(&log, &Windowing::Fixed(4));
        assert_eq!(edges.len(), 5);
        assert_eq!(edges[0], 0);
        assert_eq!(*edges.last().unwrap(), log.makespan_ns());
        for pair in edges.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn aligned_edges_follow_section_iterations() {
        let log = pipeline_log();
        let edges = window_edges(&log, &Windowing::Aligned("STEP".into()));
        // 4 iterations: start, 3 interior entry edges (the first entry is
        // at ~0 and dedupes into the start edge only if exactly 0) and the
        // makespan.
        assert!(edges.len() >= 5, "{edges:?}");
        assert_eq!(*edges.last().unwrap(), log.makespan_ns());
        // Unknown label falls back to one window.
        let fallback = window_edges(&log, &Windowing::Aligned("NOPE".into()));
        assert_eq!(fallback, vec![0, log.makespan_ns()]);
    }

    #[test]
    fn presence_partitions_the_run() {
        let log = pipeline_log();
        let tl = build(&log, &Windowing::Fixed(5));
        // Summed presence over all sections and windows equals the summed
        // per-rank run length: presence is a partition of each rank's
        // timeline.
        let total_presence: u64 = tl
            .windows
            .iter()
            .flat_map(|w| w.sections.values())
            .map(|ws| ws.time_ns)
            .sum();
        let run_total: u64 = log.ranks.iter().map(|r| r.fini_ns).sum();
        assert_eq!(total_presence, run_total);
    }

    #[test]
    fn window_sums_recompose_run_totals() {
        let log = pipeline_log();
        let one = build(&log, &Windowing::Fixed(1));
        let many = build(&log, &Windowing::Fixed(7));
        let a = one.section_totals();
        let b = many.section_totals();
        assert_eq!(a.len(), b.len());
        for (label, ta) in &a {
            let tb = &b[label];
            // capacity_ns is full-window machine capacity, so a section
            // that only appears in some windows recomposes to a smaller
            // capacity under finer windowing — only the additive event and
            // time counters are windowing-invariant.
            assert_eq!(ta.time_ns, tb.time_ns, "{label}");
            assert_eq!(ta.late_sender_ns, tb.late_sender_ns, "{label}");
            assert_eq!(ta.coll_wait_ns, tb.coll_wait_ns, "{label}");
            assert_eq!(ta.transfer_ns, tb.transfer_ns, "{label}");
            assert_eq!(ta.sent_msgs, tb.sent_msgs, "{label}");
            assert_eq!(ta.sent_bytes, tb.sent_bytes, "{label}");
            assert_eq!(ta.recv_msgs, tb.recv_msgs, "{label}");
            assert_eq!(ta.recv_bytes, tb.recv_bytes, "{label}");
            assert_eq!(ta.coll_exits, tb.coll_exits, "{label}");
        }
        // The pipeline sends 4 x 16 bytes; all of it lands in STEP.
        let step = &a["STEP"];
        assert_eq!(step.sent_msgs, 4);
        assert_eq!(step.sent_bytes, 64);
        assert_eq!(step.recv_msgs, 4);
        assert_eq!(step.recv_bytes, 64);
        assert_eq!(a["SYNC"].coll_exits, 2);
    }

    #[test]
    fn late_sender_wait_is_windowed() {
        let log = pipeline_log();
        let tl = build(&log, &Windowing::Fixed(4));
        // Rank 1 idles ~1 s per step waiting for rank 0's send: every
        // window with STEP presence carries late-sender time, and the
        // wait histogram saw those waits.
        let totals = tl.section_totals();
        assert!(totals["STEP"].late_sender_ns > 3_500_000_000);
        let hist_total: u64 = tl.windows.iter().map(|w| w.wait_hist.total).sum();
        assert!(hist_total >= 4, "{hist_total}");
    }

    #[test]
    fn useful_time_excludes_waits() {
        let log = pipeline_log();
        let tl = build(&log, &Windowing::Fixed(1));
        let totals = tl.section_totals();
        let step = &totals["STEP"];
        // Rank 0 computes 4 s; rank 1 only waits. Useful must be close to
        // the 4 s of compute and far from the ~8 s of presence.
        let useful = step.useful_ns as f64 / 1e9;
        assert!((3.9..4.5).contains(&useful), "useful {useful}");
        assert!(step.time_ns > step.useful_ns);
    }

    #[test]
    fn csv_and_json_are_deterministic() {
        let a = build(&pipeline_log(), &Windowing::Fixed(6));
        let b = build(&pipeline_log(), &Windowing::Fixed(6));
        assert_eq!(a.to_csv(), b.to_csv());
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.to_csv().starts_with("window,start_ns"));
        let json = a.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"wait_hist\""));
    }

    #[test]
    fn counter_events_cover_every_present_window() {
        let tl = build(&pipeline_log(), &Windowing::Fixed(3));
        let events = tl.counter_events(999);
        assert!(!events.is_empty());
        for ev in &events {
            assert!(ev.contains("\"ph\":\"C\""), "{ev}");
            assert!(ev.contains("\"pid\":999"), "{ev}");
        }
    }

    #[test]
    fn empty_log_yields_empty_timeline() {
        let rec = CommRecorder::new();
        let log = rec.freeze();
        let tl = build(&log, &Windowing::Fixed(8));
        assert_eq!(tl.nranks, 0);
        assert_eq!(tl.edges_ns, vec![0, 0]);
        assert!(tl.windows[0].sections.is_empty());
        assert!(tl.to_csv().starts_with("window,"));
    }

    #[test]
    fn series_reports_presence_gaps() {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let rec = CommRecorder::new();
        let s = sections.clone();
        WorldBuilder::new(1)
            .tool(sections.clone())
            .tool(rec.clone())
            .run(move |p| {
                let world = p.world();
                s.scoped(p, &world, "EARLY", |p| p.advance_secs(1.0));
                p.advance_secs(2.0);
                s.scoped(p, &world, "LATE", |p| p.advance_secs(1.0));
            })
            .unwrap();
        let tl = build(&rec.freeze(), &Windowing::Fixed(4));
        let early = tl.series("EARLY", |ws| ws.time_ns as f64);
        assert!(early[0].is_some());
        assert!(early[3].is_none());
        let late = tl.series("LATE", |ws| ws.time_ns as f64);
        assert!(late[0].is_none());
        assert!(late[3].is_some());
        let _ = Arc::strong_count(&rec);
    }
}
