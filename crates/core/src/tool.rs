//! The section callback interface — the Rust shape of Fig. 2.
//!
//! The paper defines two C callbacks intercepted at PMPI level:
//!
//! ```c
//! int MPIX_Section_enter_cb(MPI_Comm comm, const char *label, char data[32]);
//! int MPIX_Section_leave_cb(MPI_Comm comm, const char *label, char data[32]);
//! ```
//!
//! [`SectionTool`] is the idiomatic equivalent: the same two entry points,
//! the same runtime-preserved 32-byte `data` blob, plus the structured
//! context a Rust tool would otherwise have to reconstruct (timestamps,
//! occurrence index, nesting depth, inclusive/exclusive durations).

use machine::VTime;
use mpisim::{CommId, SectionData};
use std::sync::Arc;

/// Context delivered with a section-enter notification.
#[derive(Debug, Clone)]
pub struct EnterInfo {
    /// World rank of the entering process.
    pub world_rank: usize,
    /// Communicator the section is collective over.
    pub comm: CommId,
    /// Size of that communicator.
    pub comm_size: usize,
    /// Rank local to that communicator.
    pub comm_rank: usize,
    /// The section label.
    pub label: Arc<str>,
    /// Dense id of this (comm, label) section, assigned by the runtime in
    /// first-seen order and stable within one `SectionRuntime`. Tools can
    /// index flat arrays with it instead of re-hashing `(comm, label)` on
    /// every event.
    pub section: u32,
    /// Virtual entry time on this rank (`Tin` in the paper's Fig. 3).
    pub time: VTime,
    /// How many times this (comm, label) was entered before on this rank.
    pub occurrence: u64,
    /// Nesting depth at entry (0 = outermost on this communicator).
    pub depth: usize,
}

/// Context delivered with a section-leave notification.
#[derive(Debug, Clone)]
pub struct LeaveInfo {
    pub world_rank: usize,
    pub comm: CommId,
    pub comm_size: usize,
    pub comm_rank: usize,
    pub label: Arc<str>,
    /// Dense runtime-assigned section id (see [`EnterInfo::section`]).
    pub section: u32,
    /// Entry time of the matching enter (`Tin`).
    pub enter_time: VTime,
    /// Exit time on this rank (`Tout`).
    pub time: VTime,
    /// Inclusive duration `Tout - Tin` on this rank.
    pub duration: VTime,
    /// Exclusive duration: inclusive minus time spent in nested sections
    /// *on the same communicator*. Sections interleaved across different
    /// communicators (which need not nest LIFO globally) are not
    /// subtracted — exclusive time partitions each communicator's section
    /// tree independently.
    pub exclusive: VTime,
    /// Occurrence index matching the enter.
    pub occurrence: u64,
    /// Nesting depth after the exit.
    pub depth: usize,
}

/// A tool observing section events (the paper's Fig. 2 interface).
pub trait SectionTool: Send + Sync {
    /// A section was entered. The tool may stash up to 32 bytes of context
    /// in `data`; the runtime preserves it until the matching leave.
    fn on_enter(&self, info: &EnterInfo, data: &mut SectionData);

    /// The matching section was left; `data` is whatever the tool (or any
    /// earlier tool in the chain) stored at enter.
    fn on_leave(&self, info: &LeaveInfo, data: &SectionData);

    /// Does this tool do anything in [`SectionTool::on_enter`]? Sampled
    /// once at attach time (must be constant): when every attached tool
    /// answers `false`, the runtime skips building [`EnterInfo`] and
    /// dispatching the enter chain entirely. Leave-side tools like the
    /// streaming profiler fold everything at leave, so their enters are
    /// pure overhead.
    fn wants_enter(&self) -> bool {
        true
    }
}
