//! Wait-state classification over the message-dependency event stream.
//!
//! Knowing *that* a rank waited (the pvar registry's job) is weaker than
//! knowing *why*. Following Scalasca's taxonomy, this module records a
//! compact per-rank communication log during the run and classifies every
//! wait after the fact:
//!
//! * **late sender** — a receive was posted before the matching send was
//!   issued; the receiver idled for `send_time - post_time`.
//! * **late receiver** — the message was already in flight when the receive
//!   was posted; the payload sat in the eager buffer for
//!   `post_time - send_time` (buffer occupancy, not idling, since our
//!   sends never block — but still a pipeline-imbalance signal).
//! * **wait at collective** — a rank reached a collective rendezvous early
//!   and waited `max(entry) - own_entry` for the last member.
//!
//! Every wait is attributed to the section that was open on the affected
//! rank, so the breakdown composes with the paper's per-section speedup
//! ranking (Eq. 6): a section with a poor bound *and* dominant late-sender
//! time points at imbalance in its producer, not at its own code.
//!
//! The same log feeds [`crate::critpath`], which walks the recorded
//! dependencies backward to extract the critical path.

use mpisim::diag::json_str;
use mpisim::{CommId, MpiEvent, Tool};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::Arc;

const SHARDS: usize = 64;

/// Section-label interner: recording threads store compact ids; analysis
/// resolves them back to names (and sorts by name, since id allocation
/// order is scheduling-dependent). Shared with the streaming summarizer
/// (`crate::summary`), which has the same id/name split.
#[derive(Default)]
pub(crate) struct Interner {
    ids: HashMap<Arc<str>, u32>,
    pub(crate) names: Vec<String>,
}

impl Interner {
    pub(crate) fn intern(&mut self, label: &Arc<str>) -> u32 {
        if let Some(&id) = self.ids.get(label) {
            return id;
        }
        let id = self.names.len() as u32;
        self.ids.insert(label.clone(), id);
        self.names.push(label.to_string());
        id
    }
}

/// One recorded communication event on one rank. `sec` is the section
/// active *after* the record takes effect, so the interval from this
/// record to the next belongs to `sec`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Rec {
    pub(crate) t_ns: u64,
    pub(crate) sec: u32,
    pub(crate) kind: RecKind,
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum RecKind {
    /// Section boundary (also used for the implicit frame at Init).
    Boundary,
    /// An eager send was issued (`seq` keys into [`CommLog::sends`]).
    Send { seq: u64 },
    /// A receive matched; `post_ns` is when the receive was posted and
    /// `done_ns` when the enclosing call returned (patched in at
    /// `CallExit`, the same completion edge the pvar registry uses — the
    /// `RecvMatched` event itself carries the pre-advance clock).
    RecvMatch {
        seq: u64,
        post_ns: u64,
        done_ns: u64,
    },
    /// A collective rendezvous completed; `enter_ns` is this rank's
    /// arrival, `(comm, round)` keys into [`CommLog::colls`].
    CollExit {
        comm: CommId,
        round: u64,
        enter_ns: u64,
    },
    /// Jittered local work started at `t_ns`: `elapsed_ns` was charged,
    /// `base_ns` is the jitter-free duration. Lets a replay engine null
    /// compute noise out of the local gaps without re-pricing kernels.
    Compute { base_ns: u64, elapsed_ns: u64 },
    /// Finalize.
    Fini,
}

/// When (and how large) a message was sent; the sending rank is
/// recoverable from the sender's own `Send` record, indexed by `seq`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SendInfo {
    pub(crate) send_ns: u64,
    pub(crate) bytes: u64,
    /// Destination world rank (selects the link a replay must re-price).
    pub(crate) dst_world: usize,
}

#[derive(Default)]
struct RankState {
    recs: Vec<Rec>,
    /// Open section frames in enter order (across communicators).
    stack: Vec<(CommId, u32)>,
    recv_posted_ns: Option<u64>,
    /// Index into `recs` of a `RecvMatch` awaiting its `CallExit`
    /// completion timestamp.
    pending_recv_rec: Option<usize>,
    coll_pending: Option<(u64, u64)>, // (enter_ns, round)
    coll_rounds: HashMap<CommId, u64>,
    fini_ns: u64,
}

impl RankState {
    fn current_sec(&self, main_id: u32) -> u32 {
        self.stack.last().map(|&(_, id)| id).unwrap_or(main_id)
    }
}

/// Per-rank record sequence, frozen for analysis.
pub(crate) struct RankRecs {
    pub(crate) recs: Vec<Rec>,
    pub(crate) fini_ns: u64,
}

/// One recorded collective round: who entered when, which operation it
/// was, and the total bytes the cost model was charged with.
#[derive(Debug, Clone, Default)]
pub(crate) struct CollRound {
    /// Every member's `(world rank, entry time ns)`.
    pub(crate) entries: Vec<(usize, u64)>,
    /// Rendezvous operation label (`"barrier"`, `"allreduce"`, ...).
    pub(crate) op: &'static str,
    /// Sum of the byte counts declared by all participants.
    pub(crate) bytes: u64,
}

/// `(comm, round)` -> that round's record.
pub(crate) type CollTable = HashMap<(CommId, u64), CollRound>;

/// The frozen communication log of one run: everything the wait-state
/// classifier and the critical-path walker need, with no references back
/// into the live tool.
pub struct CommLog {
    pub(crate) ranks: Vec<RankRecs>,
    pub(crate) names: Vec<String>,
    pub(crate) sends: HashMap<u64, SendInfo>,
    pub(crate) colls: CollTable,
}

impl CommLog {
    pub(crate) fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// World size of the recorded run.
    pub fn nranks(&self) -> usize {
        self.ranks.len()
    }

    /// Virtual end of the run: the last rank's Finalize, in nanoseconds.
    pub fn makespan_ns(&self) -> u64 {
        self.ranks.iter().map(|r| r.fini_ns).max().unwrap_or(0)
    }

    /// Total recorded events across all ranks (replay throughput unit).
    pub fn events(&self) -> usize {
        self.ranks.iter().map(|r| r.recs.len()).sum()
    }
}

/// The recording tool. Attach alongside the section runtime, run, then
/// [`CommRecorder::freeze`] and feed the log to [`classify`] and/or
/// [`crate::critpath::extract`].
#[derive(Default)]
pub struct CommRecorder {
    shards: Vec<Mutex<HashMap<usize, RankState>>>,
    interner: Mutex<Interner>,
    sends: Mutex<HashMap<u64, SendInfo>>,
    colls: Mutex<CollTable>,
    nranks: Mutex<usize>,
    main_id: Mutex<Option<u32>>,
}

impl CommRecorder {
    /// A fresh recorder behind an `Arc`, ready to attach.
    pub fn new() -> Arc<CommRecorder> {
        Arc::new(CommRecorder {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            interner: Mutex::new(Interner::default()),
            sends: Mutex::new(HashMap::new()),
            colls: Mutex::new(HashMap::new()),
            nranks: Mutex::new(0),
            main_id: Mutex::new(None),
        })
    }

    fn main_id(&self) -> u32 {
        let mut slot = self.main_id.lock();
        *slot.get_or_insert_with(|| {
            self.interner
                .lock()
                .intern(&Arc::from(crate::section::MPI_MAIN))
        })
    }

    fn with_rank<R>(&self, rank: usize, f: impl FnOnce(&mut RankState) -> R) -> R {
        let mut shard = self.shards[rank % SHARDS].lock();
        f(shard.entry(rank).or_default())
    }

    /// Freeze the recorded state into an immutable [`CommLog`].
    pub fn freeze(&self) -> CommLog {
        let nranks = *self.nranks.lock();
        let mut ranks: Vec<RankRecs> = (0..nranks)
            .map(|_| RankRecs {
                recs: Vec::new(),
                fini_ns: 0,
            })
            .collect();
        for shard in &self.shards {
            let shard = shard.lock();
            for (&rank, st) in shard.iter() {
                if rank < ranks.len() {
                    ranks[rank] = RankRecs {
                        recs: st.recs.clone(),
                        fini_ns: st.fini_ns,
                    };
                }
            }
        }
        CommLog {
            ranks,
            names: self.interner.lock().names.clone(),
            sends: self.sends.lock().clone(),
            colls: self.colls.lock().clone(),
        }
    }
}

impl Tool for CommRecorder {
    fn on_event(&self, world_rank: usize, event: &MpiEvent) {
        match event {
            MpiEvent::Init { size, time } => {
                {
                    let mut n = self.nranks.lock();
                    *n = (*n).max(*size);
                }
                let main = self.main_id();
                self.with_rank(world_rank, |st| {
                    st.stack.push((CommId::WORLD, main));
                    st.recs.push(Rec {
                        t_ns: time.as_nanos(),
                        sec: main,
                        kind: RecKind::Boundary,
                    });
                });
            }
            MpiEvent::Finalize { time } => {
                let main = self.main_id();
                self.with_rank(world_rank, |st| {
                    let t = time.as_nanos();
                    st.fini_ns = t;
                    let sec = st.current_sec(main);
                    st.recs.push(Rec {
                        t_ns: t,
                        sec,
                        kind: RecKind::Fini,
                    });
                });
            }
            MpiEvent::SectionEnter {
                comm, label, time, ..
            } => {
                let id = self.interner.lock().intern(label);
                self.with_rank(world_rank, |st| {
                    st.stack.push((*comm, id));
                    st.recs.push(Rec {
                        t_ns: time.as_nanos(),
                        sec: id,
                        kind: RecKind::Boundary,
                    });
                });
            }
            MpiEvent::SectionLeave {
                comm, label, time, ..
            } => {
                let id = self.interner.lock().intern(label);
                let main = self.main_id();
                self.with_rank(world_rank, |st| {
                    // Sections are LIFO per communicator but may interleave
                    // across communicators: close the most recent matching
                    // frame, wherever it sits.
                    if let Some(pos) = st.stack.iter().rposition(|&(c, l)| c == *comm && l == id) {
                        st.stack.remove(pos);
                    }
                    let sec = st.current_sec(main);
                    st.recs.push(Rec {
                        t_ns: time.as_nanos(),
                        sec,
                        kind: RecKind::Boundary,
                    });
                });
            }
            MpiEvent::SendEnqueued {
                seq,
                time,
                bytes,
                dst_world,
                ..
            } => {
                let t = time.as_nanos();
                self.sends.lock().insert(
                    *seq,
                    SendInfo {
                        send_ns: t,
                        bytes: *bytes,
                        dst_world: *dst_world,
                    },
                );
                let main = self.main_id();
                self.with_rank(world_rank, |st| {
                    let sec = st.current_sec(main);
                    st.recs.push(Rec {
                        t_ns: t,
                        sec,
                        kind: RecKind::Send { seq: *seq },
                    });
                });
            }
            MpiEvent::RecvBlocked { time, .. } => {
                self.with_rank(world_rank, |st| {
                    st.recv_posted_ns = Some(time.as_nanos());
                });
            }
            MpiEvent::RecvMatched { seq, time, .. } => {
                let main = self.main_id();
                self.with_rank(world_rank, |st| {
                    let t = time.as_nanos();
                    let post = st.recv_posted_ns.take().unwrap_or(t);
                    let sec = st.current_sec(main);
                    st.pending_recv_rec = Some(st.recs.len());
                    st.recs.push(Rec {
                        t_ns: t,
                        sec,
                        kind: RecKind::RecvMatch {
                            seq: *seq,
                            post_ns: post,
                            // Placeholder until the enclosing CallExit.
                            done_ns: t,
                        },
                    });
                });
            }
            MpiEvent::CallExit { time, .. } => {
                // A blocking receive's clock advance (waiting out the
                // sender, the wire and the receive overhead) lands at the
                // exit of its enclosing call (Recv, Wait or Sendrecv) —
                // patch the completion edge onto the pending record.
                self.with_rank(world_rank, |st| {
                    if let Some(i) = st.pending_recv_rec.take() {
                        if let RecKind::RecvMatch { done_ns, .. } = &mut st.recs[i].kind {
                            *done_ns = time.as_nanos();
                        }
                    }
                });
            }
            MpiEvent::CollectiveEnter { comm, op, time, .. } => {
                let t = time.as_nanos();
                let round = self.with_rank(world_rank, |st| {
                    let round = st.coll_rounds.entry(*comm).or_insert(0);
                    let r = *round;
                    *round += 1;
                    st.coll_pending = Some((t, r));
                    r
                });
                let mut colls = self.colls.lock();
                let entry = colls.entry((*comm, round)).or_default();
                entry.op = op;
                entry.entries.push((world_rank, t));
            }
            MpiEvent::CollectiveExit {
                comm, time, bytes, ..
            } => {
                let main = self.main_id();
                let pending = self.with_rank(world_rank, |st| {
                    let pending = st.coll_pending.take();
                    if let Some((enter_ns, round)) = pending {
                        let sec = st.current_sec(main);
                        st.recs.push(Rec {
                            t_ns: time.as_nanos(),
                            sec,
                            kind: RecKind::CollExit {
                                comm: *comm,
                                round,
                                enter_ns,
                            },
                        });
                    }
                    pending
                });
                if let Some((_, round)) = pending {
                    if let Some(entry) = self.colls.lock().get_mut(&(*comm, round)) {
                        entry.bytes = *bytes;
                    }
                }
            }
            MpiEvent::Compute {
                base,
                elapsed,
                time,
            } => {
                let main = self.main_id();
                self.with_rank(world_rank, |st| {
                    let sec = st.current_sec(main);
                    st.recs.push(Rec {
                        t_ns: time.as_nanos(),
                        sec,
                        kind: RecKind::Compute {
                            base_ns: base.as_nanos(),
                            elapsed_ns: elapsed.as_nanos(),
                        },
                    });
                });
            }
            _ => {}
        }
    }
}

/// Wait time of one class, in virtual nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaitBreakdown {
    /// Receiver idled for a send issued after the receive was posted.
    pub late_sender_ns: u64,
    /// Message sat in the eager buffer before the receive was posted.
    pub late_receiver_ns: u64,
    /// Early arrival at a collective rendezvous.
    pub coll_wait_ns: u64,
}

impl WaitBreakdown {
    fn add(&mut self, other: &WaitBreakdown) {
        self.late_sender_ns += other.late_sender_ns;
        self.late_receiver_ns += other.late_receiver_ns;
        self.coll_wait_ns += other.coll_wait_ns;
    }

    /// Late-sender seconds.
    pub fn late_sender_secs(&self) -> f64 {
        self.late_sender_ns as f64 / 1e9
    }

    /// Late-receiver seconds.
    pub fn late_receiver_secs(&self) -> f64 {
        self.late_receiver_ns as f64 / 1e9
    }

    /// Wait-at-collective seconds.
    pub fn coll_wait_secs(&self) -> f64 {
        self.coll_wait_ns as f64 / 1e9
    }

    fn to_json(self) -> String {
        format!(
            "{{\"late_sender_ns\":{},\"late_receiver_ns\":{},\"coll_wait_ns\":{}}}",
            self.late_sender_ns, self.late_receiver_ns, self.coll_wait_ns
        )
    }
}

/// The classified wait states of one run.
#[derive(Debug, Clone)]
pub struct WaitStateReport {
    /// Per-section breakdown, summed over ranks (keyed by label).
    pub per_section: BTreeMap<String, WaitBreakdown>,
    /// Per-world-rank breakdown.
    pub per_rank: Vec<WaitBreakdown>,
}

impl WaitStateReport {
    /// All classes summed over all ranks.
    pub fn totals(&self) -> WaitBreakdown {
        let mut t = WaitBreakdown::default();
        for b in &self.per_rank {
            t.add(b);
        }
        t
    }

    /// Render the per-section wait-state table.
    pub fn render(&self) -> String {
        let mut out = String::from("wait states per section (Scalasca-style classification):\n");
        let _ = writeln!(
            out,
            "{:<32} {:>14} {:>14} {:>14}",
            "section", "late-sender s", "late-recv s", "coll-wait s"
        );
        out.push_str(&"-".repeat(78));
        out.push('\n');
        for (label, b) in &self.per_section {
            let _ = writeln!(
                out,
                "{:<32} {:>14.4} {:>14.4} {:>14.4}",
                crate::report::truncate_label(label, 32),
                b.late_sender_secs(),
                b.late_receiver_secs(),
                b.coll_wait_secs(),
            );
        }
        let t = self.totals();
        let _ = writeln!(
            out,
            "\ntotal waiting: {:.4} s late-sender, {:.4} s late-receiver, {:.4} s at collectives",
            t.late_sender_secs(),
            t.late_receiver_secs(),
            t.coll_wait_secs(),
        );
        out
    }

    /// Machine-readable JSON dump (deterministic key order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"sections\":[");
        for (i, (label, b)) in self.per_section.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"label\":{},\"waits\":{}}}",
                json_str(label),
                b.to_json()
            );
        }
        out.push_str("],\"per_rank\":[");
        for (i, b) in self.per_rank.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&b.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// Classify every wait in the log.
pub fn classify(log: &CommLog) -> WaitStateReport {
    let mut per_section: BTreeMap<String, WaitBreakdown> = BTreeMap::new();
    let mut per_rank = vec![WaitBreakdown::default(); log.ranks.len()];
    for (rank, rr) in log.ranks.iter().enumerate() {
        for rec in &rr.recs {
            let mut delta = WaitBreakdown::default();
            match rec.kind {
                RecKind::RecvMatch { seq, post_ns, .. } => {
                    if let Some(send) = log.sends.get(&seq) {
                        if send.send_ns > post_ns {
                            delta.late_sender_ns = send.send_ns - post_ns;
                        } else {
                            delta.late_receiver_ns = post_ns - send.send_ns;
                        }
                    }
                }
                RecKind::CollExit {
                    comm,
                    round,
                    enter_ns,
                } => {
                    if let Some(cr) = log.colls.get(&(comm, round)) {
                        let max_enter =
                            cr.entries.iter().map(|&(_, t)| t).max().unwrap_or(enter_ns);
                        delta.coll_wait_ns = max_enter.saturating_sub(enter_ns);
                    }
                }
                _ => continue,
            }
            per_rank[rank].add(&delta);
            per_section
                .entry(log.name(rec.sec).to_string())
                .or_default()
                .add(&delta);
        }
    }
    WaitStateReport {
        per_section,
        per_rank,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SectionRuntime, VerifyMode};
    use mpisim::{Src, TagSel, WorldBuilder};

    #[test]
    fn late_sender_is_classified() {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let rec = CommRecorder::new();
        let s = sections.clone();
        WorldBuilder::new(2)
            .tool(sections.clone())
            .tool(rec.clone())
            .run(move |p| {
                let world = p.world();
                s.scoped(p, &world, "PIPE", |p| {
                    let world = p.world();
                    if p.world_rank() == 0 {
                        let _ = world.recv::<u8>(p, Src::Rank(1), TagSel::Any);
                    } else {
                        p.advance_secs(3.0);
                        world.send(p, 0, 0, &[1u8]);
                    }
                });
            })
            .unwrap();
        let report = classify(&rec.freeze());
        let pipe = report.per_section.get("PIPE").unwrap();
        let ls = pipe.late_sender_secs();
        assert!((2.9..3.5).contains(&ls), "late-sender {ls}");
        assert_eq!(pipe.late_receiver_ns, 0);
        // The wait happened on rank 0.
        assert!(report.per_rank[0].late_sender_secs() >= 2.9);
        assert_eq!(report.per_rank[1].late_sender_ns, 0);
    }

    #[test]
    fn late_receiver_is_classified() {
        let rec = CommRecorder::new();
        WorldBuilder::new(2)
            .tool(rec.clone())
            .run(|p| {
                let world = p.world();
                if p.world_rank() == 1 {
                    world.send(p, 0, 0, &[1u8]);
                } else {
                    // Post the receive long after the eager send landed.
                    p.advance_secs(2.0);
                    let _ = world.recv::<u8>(p, Src::Rank(1), TagSel::Any);
                }
            })
            .unwrap();
        let report = classify(&rec.freeze());
        let t = report.totals();
        assert_eq!(t.late_sender_ns, 0);
        let lr = t.late_receiver_secs();
        assert!((1.9..2.5).contains(&lr), "late-receiver {lr}");
    }

    #[test]
    fn collective_wait_blames_straggler_free_ranks() {
        let rec = CommRecorder::new();
        WorldBuilder::new(4)
            .tool(rec.clone())
            .run(|p| {
                let world = p.world();
                if p.world_rank() == 3 {
                    p.advance_secs(1.0);
                }
                world.barrier(p);
            })
            .unwrap();
        let report = classify(&rec.freeze());
        // Ranks 0..2 each waited ~1 s; the straggler waited ~0.
        for r in 0..3 {
            let w = report.per_rank[r].coll_wait_secs();
            assert!((0.9..1.2).contains(&w), "rank {r} waited {w}");
        }
        assert!(report.per_rank[3].coll_wait_secs() < 0.1);
        // Attributed to MPI_MAIN (no explicit section in this run).
        assert!(report.per_section.contains_key(crate::section::MPI_MAIN));
    }

    #[test]
    fn report_renders_and_serializes() {
        let rec = CommRecorder::new();
        WorldBuilder::new(2)
            .tool(rec.clone())
            .run(|p| {
                let world = p.world();
                world.barrier(p);
            })
            .unwrap();
        let report = classify(&rec.freeze());
        let text = report.render();
        assert!(text.contains("wait states per section"), "{text}");
        let json = report.to_json();
        assert!(json.contains("\"per_rank\":["), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
