//! POP-style efficiency hierarchy over windowed run data.
//!
//! The POP Centre of Excellence's multiplicative metric tree factors
//! *Parallel Efficiency* into orthogonal causes:
//!
//! ```text
//! parallel = load_balance × comm
//! comm     = serialization × transfer
//! ```
//!
//! computed here per (window, section) cell from [`crate::timeline`]
//! sums (`Σ` ranges over ranks; `capacity` = nranks × window width, the
//! window's total rank-time):
//!
//! * `load_balance`  = mean(useful) / max(useful) — how evenly the
//!   section's useful work spreads over ranks; 1.0 means perfectly level.
//! * `serialization` = 1 − Σwait / capacity — the share of the machine's
//!   capacity in the window *not* lost to this section's dependency
//!   waiting (late senders, collective rendezvous); this is where jitter
//!   accumulation shows up.
//! * `transfer`      = comm / serialization — the residual factor
//!   charging the section's transfer time (wire + rendezvous operation).
//! * `comm` = serialization × transfer = 1 − (Σwait + Σtransfer) /
//!   capacity.
//!
//! Losses are normalized by the window's *capacity*, in the spirit of
//! POP's "relative to total runtime" convention, rather than by the
//! section's own presence. The distinction matters for pure-communication
//! sections like the paper's HALO: their presence is almost entirely wait
//! time, so presence-relative ratios are pinned near zero from the first
//! window and cannot trend, while capacity-relative ones start near 1 and
//! slide exactly as fast as idle waves accumulate — the Fig. 5b signal.
//! A side benefit: the per-section inefficiencies `1 − comm` are additive
//! across sections of the same window, so losses can be apportioned.
//!
//! [`render`] prints the hierarchy per section as aligned text with
//! Unicode sparklines — one glyph per window, so an eye-sized report
//! shows whether a section's communication efficiency is flat or sliding
//! (the trend detector in `speedup::trend` makes that call numerically).

use crate::timeline::{Timeline, Window, WindowSection};
use std::fmt::Write as _;

/// The multiplicative POP hierarchy of one (window, section) cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Efficiencies {
    /// `load_balance × comm`.
    pub parallel: f64,
    /// mean over ranks of the section's useful time / max over ranks.
    pub load_balance: f64,
    /// `serialization × transfer` = 1 − (waits + transfer) / capacity.
    pub comm: f64,
    /// Capacity share surviving the section's dependency waits.
    pub serialization: f64,
    /// Residual capacity share surviving its transfer time.
    pub transfer: f64,
}

impl Efficiencies {
    /// Derive the hierarchy from one windowed cell. Degenerate cells
    /// (zero capacity, zero useful work anywhere) report the affected
    /// factor as 1.0 — "nothing happened" is not an inefficiency.
    pub fn of(ws: &WindowSection) -> Efficiencies {
        let cap = ws.capacity_ns as f64;
        let useful = ws.useful_ns as f64;
        let wait = (ws.late_sender_ns + ws.coll_wait_ns) as f64;

        let load_balance = if ws.max_useful_ns == 0 || ws.ranks == 0 {
            1.0
        } else {
            (useful / ws.ranks as f64) / ws.max_useful_ns as f64
        };
        let serialization = if cap > 0.0 { 1.0 - wait / cap } else { 1.0 };
        let comm = if cap > 0.0 {
            1.0 - (wait + ws.transfer_ns as f64) / cap
        } else {
            1.0
        };
        let transfer = if serialization > 0.0 {
            comm / serialization
        } else {
            1.0
        };

        Efficiencies {
            parallel: clamp01(load_balance * comm),
            load_balance: clamp01(load_balance),
            comm: clamp01(comm),
            serialization: clamp01(serialization),
            transfer: clamp01(transfer),
        }
    }

    /// Deterministic JSON object (fixed field order, 6 decimals).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"parallel\":{:.6},\"load_balance\":{:.6},\"comm\":{:.6},\
             \"serialization\":{:.6},\"transfer\":{:.6}}}",
            self.parallel, self.load_balance, self.comm, self.serialization, self.transfer
        )
    }
}

fn clamp01(x: f64) -> f64 {
    if x.is_finite() {
        x.clamp(0.0, 1.0)
    } else {
        1.0
    }
}

const SPARK_GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Render a `[0, 1]`-valued series as a sparkline on an absolute scale
/// (1.0 is always `█`), with `·` marking windows where the series has no
/// value. Efficiency series share one scale, so glyphs compare across
/// rows and across sections.
pub fn sparkline(series: &[Option<f64>]) -> String {
    series
        .iter()
        .map(|v| match v {
            Some(x) => {
                let idx = (x.clamp(0.0, 1.0) * 8.0).floor() as usize;
                SPARK_GLYPHS[idx.min(7)]
            }
            None => '·',
        })
        .collect()
}

/// Mean of the present values of a series, or `None` if empty.
fn mean(series: &[Option<f64>]) -> Option<f64> {
    let vals: Vec<f64> = series.iter().filter_map(|v| *v).collect();
    if vals.is_empty() {
        None
    } else {
        Some(vals.iter().sum::<f64>() / vals.len() as f64)
    }
}

/// First and last present values of a series.
fn endpoints(series: &[Option<f64>]) -> Option<(f64, f64)> {
    let first = series.iter().find_map(|v| *v)?;
    let last = series.iter().rev().find_map(|v| *v)?;
    Some((first, last))
}

/// One row of the rendered report: a metric name and its extractor.
type Metric = (&'static str, fn(&WindowSection) -> f64);

const METRICS: [Metric; 5] = [
    ("parallel", |ws| ws.efficiency().parallel),
    ("load balance", |ws| ws.efficiency().load_balance),
    ("comm", |ws| ws.efficiency().comm),
    ("serialization", |ws| ws.efficiency().serialization),
    ("transfer", |ws| ws.efficiency().transfer),
];

/// Render the windowed efficiency report: per section, one sparkline row
/// per POP factor, with mean and first→last endpoints.
pub fn render(tl: &Timeline) -> String {
    let nwin = tl.windows.len();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "windowed efficiency (POP hierarchy, {} windows x {:.4} s, {} ranks):",
        nwin,
        tl.windows.first().map(Window::width_secs).unwrap_or(0.0),
        tl.nranks,
    );
    let _ = writeln!(
        out,
        "{:<24} {:<16} {:<width$} {:>6} {:>6} {:>7}",
        "section",
        "metric",
        "trajectory",
        "mean",
        "first",
        "last",
        width = nwin.max("trajectory".len()),
    );
    out.push_str(&"-".repeat(24 + 1 + 16 + 1 + nwin.max(10) + 22));
    out.push('\n');
    for label in tl.labels() {
        for (i, (metric, f)) in METRICS.iter().enumerate() {
            let series = tl.series(label, f);
            let (Some(m), Some((first, last))) = (mean(&series), endpoints(&series)) else {
                continue;
            };
            let _ = writeln!(
                out,
                "{:<24} {:<16} {:<width$} {:>6.3} {:>6.3} {:>7.3}",
                if i == 0 {
                    crate::report::truncate_label(label, 24)
                } else {
                    String::new()
                },
                metric,
                sparkline(&series),
                m,
                first,
                last,
                width = nwin.max("trajectory".len()),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::WindowSection;

    #[allow(clippy::too_many_arguments)]
    fn cell(
        cap: u64,
        time: u64,
        useful: u64,
        ls: u64,
        cw: u64,
        tr: u64,
        max_useful: u64,
        ranks: usize,
    ) -> WindowSection {
        WindowSection {
            capacity_ns: cap,
            time_ns: time,
            useful_ns: useful,
            late_sender_ns: ls,
            coll_wait_ns: cw,
            transfer_ns: tr,
            max_time_ns: time,
            max_useful_ns: max_useful,
            ranks,
            ..WindowSection::default()
        }
    }

    #[test]
    fn perfect_cell_scores_ones() {
        // 4 ranks, all useful, perfectly level.
        let e = Efficiencies::of(&cell(4_000, 4_000, 4_000, 0, 0, 0, 1_000, 4));
        assert!((e.parallel - 1.0).abs() < 1e-12);
        assert!((e.load_balance - 1.0).abs() < 1e-12);
        assert!((e.comm - 1.0).abs() < 1e-12);
        assert!((e.serialization - 1.0).abs() < 1e-12);
        assert!((e.transfer - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hierarchy_is_multiplicative() {
        let e = Efficiencies::of(&cell(16_000, 10_000, 6_000, 1_500, 500, 2_000, 2_000, 4));
        assert!((e.comm - e.serialization * e.transfer).abs() < 1e-12);
        assert!((e.parallel - e.load_balance * e.comm).abs() < 1e-12);
        // waits = 2000 of 16000 capacity -> serialization 0.875.
        assert!((e.serialization - 0.875).abs() < 1e-12);
        // waits + transfer = 4000 of 16000 -> comm 0.75.
        assert!((e.comm - 0.75).abs() < 1e-12);
        // mean useful 1500 vs max 2000 -> lb 0.75.
        assert!((e.load_balance - 0.75).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cells_are_neutral() {
        let empty = Efficiencies::of(&WindowSection::default());
        assert_eq!(empty.parallel, 1.0);
        assert_eq!(empty.comm, 1.0);
        // Pure wait (a communication phase absorbing desync): comm tracks
        // the capacity share lost to the wait, lb stays neutral.
        let wait = Efficiencies::of(&cell(2_000, 1_000, 0, 1_000, 0, 0, 0, 2));
        assert_eq!(wait.comm, 0.5);
        assert_eq!(wait.load_balance, 1.0);
        assert_eq!(wait.parallel, 0.5);
        assert_eq!(wait.serialization, 0.5);
        assert_eq!(wait.transfer, 1.0);
    }

    #[test]
    fn sparkline_scale_is_absolute() {
        let s = sparkline(&[Some(0.0), Some(0.5), Some(1.0), None]);
        assert_eq!(s, "▁▅█·");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn json_is_balanced_and_fixed_width() {
        let e = Efficiencies::of(&cell(16_000, 10_000, 6_000, 1_500, 500, 2_000, 2_000, 4));
        let j = e.to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"serialization\":0.875000"), "{j}");
    }
}
