//! The section profiler: the "preliminary tool built on top of this
//! interface" the paper uses for both benchmarks (§5).
//!
//! [`SectionProfiler`] implements [`SectionTool`], aggregating every
//! completed section traversal into per-(communicator, label) streaming
//! statistics. After the run, [`SectionProfiler::snapshot`] yields an
//! immutable [`Profile`] that the analysis layer (the `speedup` crate) and
//! the figure harness consume.

use crate::metrics::InstanceStats;
use crate::tool::{EnterInfo, LeaveInfo, SectionTool};
use machine::VTime;
use mpisim::{CommId, SectionData};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Identifies a profiled section.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SectionKey {
    /// Communicator the section was collective over.
    pub comm: CommId,
    /// The label.
    pub label: String,
}

#[derive(Default)]
struct SectionAgg {
    /// The section's identity — `None` until the first leave lands here.
    meta: Option<(CommId, Arc<str>)>,
    /// Instances indexed by occurrence.
    instances: Vec<InstanceStats>,
    /// Largest participant count observed.
    participants: usize,
    /// Accumulated inclusive seconds per communicator rank (the §8
    /// load-balance interface needs the per-rank distribution).
    per_rank_own: Vec<f64>,
    /// Accumulated exclusive seconds per communicator rank.
    per_rank_excl: Vec<f64>,
}

/// The profiler tool. Attach to a [`crate::SectionRuntime`], run, then
/// [`snapshot`](SectionProfiler::snapshot).
///
/// Aggregation is indexed by the runtime's dense section id
/// ([`LeaveInfo::section`]): folding a leave costs one bounds-checked
/// array index and no hashing at all. The sorted [`SectionKey`] view is
/// built once, at [`snapshot`](SectionProfiler::snapshot) time. Because
/// ids are per-runtime, one profiler instance must not be shared between
/// two `SectionRuntime`s.
#[derive(Default)]
pub struct SectionProfiler {
    sections: Mutex<Vec<SectionAgg>>,
}

impl SectionProfiler {
    /// A fresh profiler behind an `Arc`, ready to attach.
    pub fn new() -> Arc<SectionProfiler> {
        Arc::new(SectionProfiler::default())
    }

    /// Discard every aggregate collected so far. Section ids are
    /// per-runtime, so a profiler reused across worlds (the schedule
    /// explorer's repeated runs) must be reset together with its runtime —
    /// stale aggregates would otherwise be folded into later snapshots.
    pub fn reset(&self) {
        self.sections.lock().clear();
    }

    /// Freeze the collected data into an immutable profile.
    pub fn snapshot(&self) -> Profile {
        let sections = self.sections.lock();
        Profile {
            sections: sections
                .iter()
                .filter_map(|agg| {
                    let (comm, label) = agg.meta.as_ref()?;
                    let key = SectionKey {
                        comm: *comm,
                        label: label.to_string(),
                    };
                    Some((
                        key.clone(),
                        SectionStats::from_instances(
                            key,
                            agg.participants,
                            agg.instances.clone(),
                            agg.per_rank_own.clone(),
                            agg.per_rank_excl.clone(),
                        ),
                    ))
                })
                .collect(),
        }
    }
}

impl SectionTool for SectionProfiler {
    fn on_enter(&self, _info: &EnterInfo, _data: &mut SectionData) {
        // All statistics fold in at leave time, when the matching enter
        // timestamp travels in `LeaveInfo`.
    }

    fn wants_enter(&self) -> bool {
        false
    }

    fn on_leave(&self, info: &LeaveInfo, _data: &SectionData) {
        let mut sections = self.sections.lock();
        let slot = info.section as usize;
        if sections.len() <= slot {
            sections.resize_with(slot + 1, SectionAgg::default);
        }
        let agg = &mut sections[slot];
        if agg.meta.is_none() {
            agg.meta = Some((info.comm, info.label.clone()));
        }
        let idx = info.occurrence as usize;
        if agg.instances.len() <= idx {
            agg.instances.resize_with(idx + 1, InstanceStats::default);
        }
        agg.instances[idx].record(info.enter_time, info.time, info.exclusive);
        agg.participants = agg.participants.max(info.comm_size.max(1));
        if agg.per_rank_own.len() <= info.comm_rank {
            agg.per_rank_own.resize(info.comm_rank + 1, 0.0);
            agg.per_rank_excl.resize(info.comm_rank + 1, 0.0);
        }
        agg.per_rank_own[info.comm_rank] += info.duration.as_secs_f64();
        agg.per_rank_excl[info.comm_rank] += info.exclusive.as_secs_f64();
    }
}

/// Immutable per-run profile: one [`SectionStats`] per (comm, label).
#[derive(Debug, Clone, Default)]
pub struct Profile {
    sections: BTreeMap<SectionKey, SectionStats>,
}

impl Profile {
    /// All profiled sections, in (comm, label) order.
    pub fn sections(&self) -> impl Iterator<Item = &SectionStats> {
        self.sections.values()
    }

    /// Look up a section by communicator and label.
    pub fn get(&self, comm: CommId, label: &str) -> Option<&SectionStats> {
        self.sections.get(&SectionKey {
            comm,
            label: label.to_string(),
        })
    }

    /// Look up a world-communicator section by label.
    pub fn get_world(&self, label: &str) -> Option<&SectionStats> {
        self.get(CommId::WORLD, label)
    }

    /// Labels profiled on the world communicator, excluding `MPI_MAIN`.
    pub fn world_labels(&self) -> Vec<&str> {
        self.sections
            .keys()
            .filter(|k| k.comm == CommId::WORLD && k.label != crate::section::MPI_MAIN)
            .map(|k| k.label.as_str())
            .collect()
    }

    /// Sum of `total_own_secs` over the given labels (world communicator) —
    /// the denominator for percentage breakdowns like Fig. 5(a).
    pub fn total_over(&self, labels: &[&str]) -> f64 {
        labels
            .iter()
            .filter_map(|l| self.get_world(l))
            .map(|s| s.total_own_secs)
            .sum()
    }

    /// Export the per-section summary as CSV (one row per section), for
    /// external analysis pipelines.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "comm,label,participants,instances,total_incl_s,total_excl_s,\
             total_span_s,mean_imbalance_s,mean_entry_imbalance_s\n",
        );
        for s in self.sections() {
            out.push_str(&format!(
                "{},{},{},{},{:.9},{:.9},{:.9},{:.9},{:.9}\n",
                s.key.comm.0,
                s.key.label,
                s.participants,
                s.instances,
                s.total_own_secs,
                s.total_excl_secs,
                s.total_span_secs,
                s.mean_imbalance_secs,
                s.mean_entry_imbalance_secs,
            ));
        }
        out
    }
}

/// Aggregated statistics of one section across the whole run.
#[derive(Debug, Clone)]
pub struct SectionStats {
    /// The section's identity.
    pub key: SectionKey,
    /// Number of participating ranks (max observed communicator size).
    pub participants: usize,
    /// Number of instances (occurrences).
    pub instances: u64,
    /// Σ over instances and ranks of the inclusive duration `Tout - Tin`,
    /// in seconds ("total time" in Fig. 5b).
    pub total_own_secs: f64,
    /// Σ of exclusive durations (inclusive minus nested sections).
    pub total_excl_secs: f64,
    /// Σ over instances of the span `Tmax - Tmin` (distributed wall
    /// presence of the section).
    pub total_span_secs: f64,
    /// Mean over instances of the paper's imbalance
    /// `(Tmax - Tmin) - mean(Tsection)`, in seconds.
    pub mean_imbalance_secs: f64,
    /// Mean over instances of the mean entry imbalance, in seconds.
    pub mean_entry_imbalance_secs: f64,
    /// Per-instance statistics, indexed by occurrence.
    pub per_instance: Vec<InstanceStats>,
    /// Accumulated inclusive seconds per communicator rank (the §8
    /// load-balance distribution).
    pub per_rank_own: Vec<f64>,
    /// Accumulated exclusive seconds per communicator rank.
    pub per_rank_excl: Vec<f64>,
}

impl SectionStats {
    fn from_instances(
        key: SectionKey,
        participants: usize,
        instances: Vec<InstanceStats>,
        per_rank_own: Vec<f64>,
        per_rank_excl: Vec<f64>,
    ) -> SectionStats {
        let n = instances.len().max(1) as f64;
        // The declared communicator size can be unavailable on some paths
        // (e.g. the MPI_MAIN exit at Finalize); the number of ranks that
        // actually completed an instance is always authoritative.
        let participants = participants.max(
            instances
                .iter()
                .map(|i| i.count as usize)
                .max()
                .unwrap_or(0),
        );
        let total_own_secs = instances.iter().map(|i| i.total_own_secs()).sum();
        let total_excl_secs = instances.iter().map(|i| i.total_excl_secs()).sum();
        let total_span_secs = instances.iter().map(|i| i.span().as_secs_f64()).sum();
        let mean_imbalance_secs = instances.iter().map(|i| i.imbalance_secs()).sum::<f64>() / n;
        let mean_entry_imbalance_secs = instances
            .iter()
            .map(|i| i.mean_entry_imbalance_secs())
            .sum::<f64>()
            / n;
        SectionStats {
            key,
            participants,
            instances: instances.len() as u64,
            total_own_secs,
            total_excl_secs,
            total_span_secs,
            mean_imbalance_secs,
            mean_entry_imbalance_secs,
            per_instance: instances,
            per_rank_own,
            per_rank_excl,
        }
    }

    /// Average time per process: `total_own / participants` — the y-axis of
    /// Fig. 5(c).
    pub fn avg_per_rank_secs(&self) -> f64 {
        self.total_own_secs / self.participants.max(1) as f64
    }

    /// First enter of the first instance (section birth).
    pub fn first_enter(&self) -> VTime {
        self.per_instance
            .first()
            .map(|i| i.t_min())
            .unwrap_or(VTime::ZERO)
    }

    /// Last exit of the last instance.
    pub fn last_exit(&self) -> VTime {
        self.per_instance
            .last()
            .map(|i| i.t_max())
            .unwrap_or(VTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::section::{SectionRuntime, VerifyMode, MPI_MAIN};
    use machine::Work;
    use mpisim::WorldBuilder;

    fn profile_of<F>(nranks: usize, f: F) -> Profile
    where
        F: Fn(&mut mpisim::Proc, &Arc<SectionRuntime>) + Send + Sync,
    {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let profiler = SectionProfiler::new();
        sections.attach(profiler.clone());
        let s = sections.clone();
        WorldBuilder::new(nranks)
            .tool(sections.clone())
            .run(move |p| f(p, &s))
            .unwrap();
        profiler.snapshot()
    }

    #[test]
    fn mpi_main_is_profiled_implicitly() {
        let profile = profile_of(3, |p, _| {
            p.advance_secs(2.0);
        });
        let main = profile.get_world(MPI_MAIN).expect("MPI_MAIN profiled");
        assert_eq!(main.instances, 1);
        assert_eq!(main.per_instance[0].count, 3);
        assert!((main.total_own_secs - 6.0).abs() < 1e-9);
        assert!((main.avg_per_rank_secs() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn per_section_totals_accumulate_over_instances() {
        let profile = profile_of(2, |p, s| {
            let world = p.world();
            for _ in 0..10 {
                s.scoped(p, &world, "step", |p| p.advance_secs(0.5));
            }
        });
        let step = profile.get_world("step").unwrap();
        assert_eq!(step.instances, 10);
        // 2 ranks x 10 instances x 0.5 s.
        assert!((step.total_own_secs - 10.0).abs() < 1e-9);
        assert!((step.avg_per_rank_secs() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn exclusive_excludes_children() {
        let profile = profile_of(1, |p, s| {
            let world = p.world();
            s.enter(p, &world, "outer");
            p.advance_secs(1.0);
            s.scoped(p, &world, "inner", |p| p.advance_secs(3.0));
            p.advance_secs(1.0);
            s.exit(p, &world, "outer");
        });
        let outer = profile.get_world("outer").unwrap();
        let inner = profile.get_world("inner").unwrap();
        assert!((outer.total_own_secs - 5.0).abs() < 1e-9);
        assert!((outer.total_excl_secs - 2.0).abs() < 1e-9);
        assert!((inner.total_own_secs - 3.0).abs() < 1e-9);
        assert!((inner.total_excl_secs - 3.0).abs() < 1e-9);
        // MPI_MAIN exclusive excludes everything.
        let main = profile.get_world(MPI_MAIN).unwrap();
        assert!(main.total_excl_secs.abs() < 1e-9);
    }

    #[test]
    fn imbalance_reflects_rank_skew() {
        let profile = profile_of(4, |p, s| {
            let world = p.world();
            // Ranks enter the section at different times.
            p.advance_secs(p.world_rank() as f64);
            s.scoped(p, &world, "skewed", |p| p.advance_secs(1.0));
        });
        let skewed = profile.get_world("skewed").unwrap();
        // Enters at 0,1,2,3; exits at 1,2,3,4. Tmin=0, Tmax=4, span=4.
        // Tsection = exits - Tmin = 1,2,3,4 -> mean 2.5. imb = 1.5.
        let inst = &skewed.per_instance[0];
        assert!((inst.span().as_secs_f64() - 4.0).abs() < 1e-9);
        assert!((inst.imbalance_secs() - 1.5).abs() < 1e-9);
        assert!((inst.mean_entry_imbalance_secs() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn world_labels_exclude_main() {
        let profile = profile_of(1, |p, s| {
            let world = p.world();
            s.scoped(p, &world, "a", |_| {});
            s.scoped(p, &world, "b", |_| {});
        });
        let labels = profile.world_labels();
        assert_eq!(labels, vec!["a", "b"]);
        assert!(profile.get_world(MPI_MAIN).is_some());
    }

    #[test]
    fn total_over_sums_selected_sections() {
        let profile = profile_of(1, |p, s| {
            let world = p.world();
            s.scoped(p, &world, "a", |p| p.advance_secs(1.0));
            s.scoped(p, &world, "b", |p| p.advance_secs(3.0));
        });
        assert!((profile.total_over(&["a", "b"]) - 4.0).abs() < 1e-9);
        assert!((profile.total_over(&["a"]) - 1.0).abs() < 1e-9);
        assert_eq!(profile.total_over(&["missing"]), 0.0);
    }

    #[test]
    fn csv_export_has_one_row_per_section() {
        let profile = profile_of(2, |p, s| {
            let world = p.world();
            s.scoped(p, &world, "a", |p| p.advance_secs(1.0));
            s.scoped(p, &world, "b", |_| {});
        });
        let csv = profile.to_csv();
        // Header + MPI_MAIN + a + b.
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.starts_with("comm,label"));
        assert!(csv.contains(",a,2,1,"));
        assert!(csv.contains(",b,2,1,"));
    }

    #[test]
    fn sections_on_subcommunicators_are_distinct() {
        let profile = profile_of(4, |p, s| {
            let world = p.world();
            let sub = world
                .split(p, Some((p.world_rank() % 2) as i32), 0)
                .unwrap();
            s.scoped(p, &sub, "local", |p| p.advance_secs(1.0));
        });
        // Two sub-communicators -> two distinct "local" sections.
        let locals: Vec<&SectionStats> = profile
            .sections()
            .filter(|sec| sec.key.label == "local")
            .collect();
        assert_eq!(locals.len(), 2);
        for sec in locals {
            assert_eq!(sec.participants, 2);
            assert!((sec.total_own_secs - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn profile_survives_compute_noise() {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let profiler = SectionProfiler::new();
        sections.attach(profiler.clone());
        let s = sections.clone();
        WorldBuilder::new(4)
            .machine(machine::presets::nehalem_cluster())
            .seed(7)
            .tool(sections.clone())
            .run(move |p| {
                let world = p.world();
                for _ in 0..5 {
                    s.scoped(p, &world, "work", |p| p.compute(Work::flops(1e8)));
                    world.barrier(p);
                }
            })
            .unwrap();
        let profile = profiler.snapshot();
        let work = profile.get_world("work").unwrap();
        assert_eq!(work.instances, 5);
        assert!(work.total_own_secs > 0.0);
        // With noise, ranks can't be perfectly aligned.
        assert!(work.mean_imbalance_secs > 0.0);
    }
}
