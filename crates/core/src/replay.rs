//! Counterfactual replay: re-time a recorded [`CommLog`] under an
//! altered machine model.
//!
//! The recorder froze *what happened*: every send, every matched receive,
//! every collective round, every jittered compute interval, with integer
//! nanosecond timestamps. This module answers *what would have happened*
//! under a different pricing — a free or different network, zero jitter,
//! one wait-state class nulled out, a section's work scaled — without
//! re-running the program: the recorded matching and causal structure are
//! kept verbatim and only the time components are recomputed.
//!
//! The replay walks every rank's record sequence in program order and
//! rebuilds its clock:
//!
//! * **local gaps** (the time between a record's effect and the next
//!   record) are carried over as recorded — they are the application's
//!   own compute, which no network change can alter;
//! * **compute intervals** ([`RecKind::Compute`]) separately carry their
//!   jitter-free base duration, so `jitter=0` replays the work at base
//!   cost without re-pricing any kernel;
//! * **sends** re-charge the (possibly altered) per-message CPU overhead;
//! * **receives** complete at `max(post', send') + residual`, where the
//!   residual is the recorded post-dependency remainder (wire + overhead)
//!   under the identity network, or a re-priced `transfer + jitter +
//!   overhead` under an altered one;
//! * **collectives** rendezvous exactly as recorded (same member set,
//!   same rounds) and exit at `max(entries') + cost'`, with the cost
//!   either the recorded delta or re-priced through the same cost
//!   formulas the engine used ([`collective_base_secs`]).
//!
//! Determinism carries over: network jitter is *regenerated*, not stored
//! — the engine draws one exponential per matched receive from the
//! per-rank `(seed, rank, NETWORK)` stream and one per collective round
//! from the `(seed ^ ns, comm, round)` stream, so the replay re-derives
//! the exact recorded values (and re-prices them under a different jitter
//! mean without losing stream alignment). An identity replay is therefore
//! *bitwise* identical to the recording — the pinned invariant that keeps
//! every counterfactual trustworthy.
//!
//! The result is a fresh [`CommLog`], so every downstream analysis —
//! wait-state classification, critical-path extraction, the windowed
//! timeline and the trend detector — runs unchanged on the counterfactual
//! trace.

use crate::waitstate::{CollRound, CollTable, CommLog, RankRecs, Rec, RecKind, SendInfo};
use crate::whatif::{WaitClass, WhatIfSpec};
use machine::noise::NoiseModel;
use machine::{CollectiveCost, DetRng, MachineModel, NetworkModel, Topology, VTime};
use mpisim::CommId;
use std::collections::HashMap;

/// mpisim's per-rank network random stream (`proc::streams::NETWORK`).
const NETWORK_STREAM: u64 = 1;
/// mpisim's collective jitter stream namespace (see `Comm::sync`).
const COLLECTIVE_NAMESPACE: u64 = 0x636f_6c6c_6563_7469;

/// Replay `log` under the scenario described by `spec`.
///
/// `recorded` must be the machine model the log was recorded under and
/// `seed` the recording seed — both are needed to separate (and, for
/// altered networks, to regenerate) the priced components of the trace.
pub fn replay(
    log: &CommLog,
    recorded: &MachineModel,
    seed: u64,
    spec: &WhatIfSpec,
) -> Result<CommLog, String> {
    // Resolve section-scale labels against the recorded label table.
    let mut scale: HashMap<u32, f64> = HashMap::new();
    for (label, k) in &spec.scale {
        match log.names.iter().position(|n| n == label) {
            Some(id) => {
                scale.insert(id as u32, *k);
            }
            None => {
                return Err(format!(
                    "what-if scale: section '{label}' not in the recorded run \
                     (sections: {})",
                    log.names.join(", ")
                ))
            }
        }
    }

    // Resolve the network pricing. `None` keeps every recorded network
    // delta (bitwise identity); `Some` re-prices messages and collectives.
    let net = resolve_net(recorded, spec)?;

    // Regenerate each rank's receive-jitter stream up front: the engine
    // drew exactly one exponential per matched receive, in program order.
    let recv_jitter: Vec<Vec<f64>> = match &net {
        Some(n) => log
            .ranks
            .iter()
            .enumerate()
            .map(|(r, rr)| {
                let mut rng = DetRng::for_stream(seed, r as u64, NETWORK_STREAM);
                rr.recs
                    .iter()
                    .filter(|rec| matches!(rec.kind, RecKind::RecvMatch { .. }))
                    .map(|_| n.noise.latency_jitter(&mut rng))
                    .collect()
            })
            .collect(),
        None => Vec::new(),
    };

    let nranks = log.ranks.len();
    let mut states: Vec<RankState> = log
        .ranks
        .iter()
        .map(|rr| RankState {
            idx: 0,
            recv_seen: 0,
            now: 0,
            prev_effect: 0,
            prev_sec: rr.recs.first().map(|r| r.sec).unwrap_or(0),
            coll_enter: None,
            recs: Vec::with_capacity(rr.recs.len()),
            fini_ns: 0,
        })
        .collect();
    let mut sh = Shared {
        send_end: HashMap::new(),
        pending: HashMap::new(),
        exits: HashMap::new(),
        sends: HashMap::new(),
        colls: HashMap::new(),
    };
    let ctx = Ctx {
        log,
        recorded,
        seed,
        net,
        null: spec.null,
        zero_jitter: spec.zero_jitter,
        scale,
        recv_jitter,
        nranks,
    };

    // Deterministic worklist: sweep the ranks in order, each advancing as
    // far as its dependencies allow, until everyone finalized. A full
    // sweep without progress means the log's dependencies are cyclic
    // (a corrupted or truncated recording), not a scenario effect.
    loop {
        let mut progressed = false;
        let mut all_done = true;
        for (rank, state) in states.iter_mut().enumerate() {
            while state.idx < log.ranks[rank].recs.len() {
                if step(rank, state, &mut sh, &ctx) {
                    progressed = true;
                } else {
                    break;
                }
            }
            all_done &= state.idx >= log.ranks[rank].recs.len();
        }
        if all_done {
            break;
        }
        if !progressed {
            return Err(
                "what-if replay stalled: recorded dependencies do not close \
                        (truncated or inconsistent log)"
                    .to_string(),
            );
        }
    }

    Ok(CommLog {
        ranks: states
            .into_iter()
            .map(|s| RankRecs {
                recs: s.recs,
                fini_ns: s.fini_ns,
            })
            .collect(),
        names: log.names.clone(),
        sends: sh.sends,
        colls: sh.colls,
    })
}

/// The collective base-cost map of the engine (`Comm::sync` call sites),
/// reproduced so a replay can re-price a recorded round under another
/// link. `total` is the byte total declared by all participants.
pub fn collective_base_secs(cc: &CollectiveCost<'_>, op: &str, total: u64, psize: usize) -> f64 {
    let total = total as usize;
    match op {
        "barrier" | "split.exchange" | "split.create" => cc.barrier(),
        "bcast" => cc.bcast(total),
        "scatterv" => cc.scatter(total),
        "gatherv" => cc.gather(total),
        "allgather" => cc.allgather(total / psize.max(1)),
        "reduce" => cc.reduce(total / psize.max(1)),
        "allreduce" => cc.allreduce(total / psize.max(1)),
        "alltoall" => cc.alltoall(total / (psize * psize).max(1)),
        "exscan" | "scan" => cc.scan(total / psize.max(1)),
        "reduce_scatter" => cc.allreduce(total / (psize * psize).max(1)),
        _ => 0.0,
    }
}

/// An altered network pricing: links, rank placement, and the jitter
/// model to regenerate message/collective noise under.
struct NetPricing {
    network: NetworkModel,
    topology: Topology,
    noise: NoiseModel,
}

fn resolve_net(recorded: &MachineModel, spec: &WhatIfSpec) -> Result<Option<NetPricing>, String> {
    if spec.net.is_none() && !spec.zero_jitter {
        return Ok(None);
    }
    let (network, topology, mean) = match spec.net.as_deref() {
        None => (
            recorded.network,
            recorded.topology,
            recorded.noise.net_latency_jitter_mean,
        ),
        Some("ideal") => (NetworkModel::FREE, recorded.topology, 0.0),
        Some("nehalem") => net_of(machine::presets::nehalem_cluster()),
        Some("knl") => net_of(machine::presets::knl()),
        Some("broadwell") => net_of(machine::presets::dual_broadwell()),
        Some(other) => return Err(format!("unknown what-if machine '{other}'")),
    };
    let mean = if spec.zero_jitter { 0.0 } else { mean };
    Ok(Some(NetPricing {
        network,
        topology,
        noise: NoiseModel {
            compute_sigma: 0.0,
            net_latency_jitter_mean: mean,
        },
    }))
}

fn net_of(m: MachineModel) -> (NetworkModel, Topology, f64) {
    (m.network, m.topology, m.noise.net_latency_jitter_mean)
}

/// Per-rank replay cursor.
struct RankState {
    idx: usize,
    recv_seen: usize,
    now: u64,
    /// Recorded effect time of the previous record (the point its local
    /// follow-up gap is measured from).
    prev_effect: u64,
    /// Section owning the gap before the next record.
    prev_sec: u32,
    /// Re-timed collective entry, registered on first arrival at the
    /// current record (cleared when the round exits).
    coll_enter: Option<u64>,
    recs: Vec<Rec>,
    fini_ns: u64,
}

/// Cross-rank replay state.
struct Shared {
    /// Re-timed send-end per message seq.
    send_end: HashMap<u64, u64>,
    /// Members arrived so far per pending collective round.
    pending: HashMap<(CommId, u64), Vec<(usize, u64)>>,
    /// Re-timed exit per completed collective round.
    exits: HashMap<(CommId, u64), u64>,
    sends: HashMap<u64, SendInfo>,
    colls: CollTable,
}

struct Ctx<'a> {
    log: &'a CommLog,
    recorded: &'a MachineModel,
    seed: u64,
    net: Option<NetPricing>,
    null: Option<WaitClass>,
    zero_jitter: bool,
    scale: HashMap<u32, f64>,
    recv_jitter: Vec<Vec<f64>>,
    nranks: usize,
}

impl Ctx<'_> {
    /// Scale a local gap by the owning section's factor (exact at k = 1).
    fn scaled(&self, gap: u64, sec: u32) -> u64 {
        match self.scale.get(&sec) {
            None => gap,
            Some(&k) => (gap as f64 * k).round() as u64,
        }
    }

    /// Per-message CPU overhead in integer ns under `net` (`None` = the
    /// recorded machine), for a message between two world ranks.
    fn overhead_ns(&self, net: Option<&NetPricing>, a: usize, b: usize) -> u64 {
        let (network, topology) = match net {
            Some(n) => (&n.network, &n.topology),
            None => (&self.recorded.network, &self.recorded.topology),
        };
        let link = network.link(topology.node_of(a), topology.node_of(b));
        VTime::from_secs_f64(link.overhead).as_nanos()
    }
}

/// Advance one rank by one record. Returns false when blocked on a
/// dependency another rank has not yet produced.
fn step(rank: usize, st: &mut RankState, sh: &mut Shared, ctx: &Ctx<'_>) -> bool {
    let rec = ctx.log.ranks[rank].recs[st.idx];
    match rec.kind {
        RecKind::Boundary | RecKind::Fini => {
            st.now += ctx.scaled(rec.t_ns.saturating_sub(st.prev_effect), st.prev_sec);
            st.recs.push(Rec {
                t_ns: st.now,
                sec: rec.sec,
                kind: rec.kind,
            });
            if matches!(rec.kind, RecKind::Fini) {
                st.fini_ns = st.now;
            }
            st.prev_effect = rec.t_ns;
        }
        RecKind::Compute {
            base_ns,
            elapsed_ns,
        } => {
            st.now += ctx.scaled(rec.t_ns.saturating_sub(st.prev_effect), st.prev_sec);
            let applied = if ctx.zero_jitter { base_ns } else { elapsed_ns };
            let applied = ctx.scaled(applied, rec.sec);
            st.recs.push(Rec {
                t_ns: st.now,
                sec: rec.sec,
                kind: RecKind::Compute {
                    base_ns,
                    elapsed_ns: applied,
                },
            });
            st.now += applied;
            st.prev_effect = rec.t_ns + elapsed_ns;
        }
        RecKind::Send { seq } => {
            let (bytes, dst) = ctx
                .log
                .sends
                .get(&seq)
                .map(|s| (s.bytes, s.dst_world))
                .unwrap_or((0, rank));
            // The recorded timestamp is the *enqueue end* — the call time
            // plus the sender-side overhead; split the overhead out so an
            // altered link can re-charge it.
            let ovh_rec = ctx.overhead_ns(None, rank, dst);
            let pre_rec = rec.t_ns.saturating_sub(ovh_rec);
            st.now += ctx.scaled(pre_rec.saturating_sub(st.prev_effect), st.prev_sec);
            st.now += ctx.overhead_ns(ctx.net.as_ref(), rank, dst);
            sh.send_end.insert(seq, st.now);
            sh.sends.insert(
                seq,
                SendInfo {
                    send_ns: st.now,
                    bytes,
                    dst_world: dst,
                },
            );
            st.recs.push(Rec {
                t_ns: st.now,
                sec: rec.sec,
                kind: RecKind::Send { seq },
            });
            st.prev_effect = rec.t_ns;
        }
        RecKind::RecvMatch {
            seq,
            post_ns,
            done_ns,
        } => {
            let send_new = match sh.send_end.get(&seq).copied() {
                Some(s) => Some(s),
                // The matching send has a record in the log but has not
                // replayed yet: wait for it. A send absent from the log
                // altogether (never recorded) imposes no dependency.
                None if ctx.log.sends.contains_key(&seq) => return false,
                None => None,
            };
            let post_new = st.now + ctx.scaled(post_ns.saturating_sub(st.prev_effect), st.prev_sec);
            // Null semantics act on the *availability* the receiver sees;
            // the stored send time is clamped the same way so the class
            // reads zero when the re-timed trace is re-classified.
            let (send_eff, stored) = match (ctx.null, send_new) {
                (Some(WaitClass::LateSender), Some(s)) => (s.min(post_new), s.min(post_new)),
                (Some(WaitClass::LateReceiver), Some(s)) => (s, s.max(post_new)),
                (_, Some(s)) => (s, s),
                (_, None) => (post_new, post_new),
            };
            if let Some(info) = sh.sends.get_mut(&seq) {
                info.send_ns = stored;
            }
            let done_new = match &ctx.net {
                Some(n) => {
                    let src = (seq >> 40) as usize;
                    let bytes = ctx.log.sends.get(&seq).map(|s| s.bytes).unwrap_or(0);
                    let link = n
                        .network
                        .link(n.topology.node_of(src), n.topology.node_of(rank));
                    let jitter = ctx.recv_jitter[rank][st.recv_seen];
                    let transfer = link.transfer_secs(bytes as usize) + jitter;
                    let arrival = send_eff + VTime::from_secs_f64(transfer).as_nanos();
                    post_new.max(arrival) + VTime::from_secs_f64(link.overhead).as_nanos()
                }
                None => {
                    let send_rec = ctx
                        .log
                        .sends
                        .get(&seq)
                        .map(|s| s.send_ns)
                        .unwrap_or(post_ns);
                    let residual = done_ns.saturating_sub(post_ns.max(send_rec));
                    post_new.max(send_eff) + residual
                }
            };
            st.recv_seen += 1;
            st.recs.push(Rec {
                t_ns: post_new,
                sec: rec.sec,
                kind: RecKind::RecvMatch {
                    seq,
                    post_ns: post_new,
                    done_ns: done_new,
                },
            });
            st.now = done_new;
            st.prev_effect = done_ns;
        }
        RecKind::CollExit {
            comm,
            round,
            enter_ns,
        } => {
            let enter_new = match st.coll_enter {
                Some(e) => e,
                None => {
                    let e =
                        st.now + ctx.scaled(enter_ns.saturating_sub(st.prev_effect), st.prev_sec);
                    st.coll_enter = Some(e);
                    e
                }
            };
            let cr = ctx.log.colls.get(&(comm, round));
            let exit_new = if ctx.null == Some(WaitClass::WaitAtCollective) {
                // Counterfactual desynchronization: every member pays the
                // operation cost from its own arrival, nobody waits. Each
                // exit gets a singleton round so re-classification sees
                // zero rendezvous wait.
                enter_new + coll_cost_ns(ctx, comm, round, rec.t_ns)
            } else {
                match sh.exits.get(&(comm, round)).copied() {
                    Some(exit) => exit,
                    None => {
                        let arrived = sh.pending.entry((comm, round)).or_default();
                        if !arrived.iter().any(|&(r, _)| r == rank) {
                            arrived.push((rank, enter_new));
                        }
                        let expected = cr.map(|c| c.entries.len()).unwrap_or(1).max(1);
                        if arrived.len() < expected {
                            return false;
                        }
                        let entries = sh.pending.remove(&(comm, round)).unwrap_or_default();
                        let max_enter = entries.iter().map(|&(_, t)| t).max().unwrap_or(enter_new);
                        let exit = max_enter + coll_cost_ns(ctx, comm, round, rec.t_ns);
                        sh.exits.insert((comm, round), exit);
                        sh.colls.insert(
                            (comm, round),
                            CollRound {
                                entries,
                                op: cr.map(|c| c.op).unwrap_or(""),
                                bytes: cr.map(|c| c.bytes).unwrap_or(0),
                            },
                        );
                        exit
                    }
                }
            };
            let round_new = if ctx.null == Some(WaitClass::WaitAtCollective) {
                let r = round * ctx.nranks as u64 + rank as u64;
                sh.colls.insert(
                    (comm, r),
                    CollRound {
                        entries: vec![(rank, enter_new)],
                        op: cr.map(|c| c.op).unwrap_or(""),
                        bytes: cr.map(|c| c.bytes).unwrap_or(0),
                    },
                );
                r
            } else {
                round
            };
            st.coll_enter = None;
            st.recs.push(Rec {
                t_ns: exit_new,
                sec: rec.sec,
                kind: RecKind::CollExit {
                    comm,
                    round: round_new,
                    enter_ns: enter_new,
                },
            });
            st.now = exit_new;
            st.prev_effect = rec.t_ns;
        }
    }
    st.prev_sec = rec.sec;
    st.idx += 1;
    true
}

/// The re-timed cost of one collective round in integer ns: the recorded
/// post-rendezvous delta under the identity network, or the re-priced
/// formula cost plus regenerated jitter under an altered one.
fn coll_cost_ns(ctx: &Ctx<'_>, comm: CommId, round: u64, exit_rec_ns: u64) -> u64 {
    let cr = ctx.log.colls.get(&(comm, round));
    match &ctx.net {
        Some(n) => {
            let (op, total, members): (&str, u64, Vec<usize>) = match cr {
                Some(c) => (c.op, c.bytes, c.entries.iter().map(|&(r, _)| r).collect()),
                None => ("", 0, Vec::new()),
            };
            let psize = members.len().max(1);
            let spans = n.topology.spans_nodes(&members);
            let cc = CollectiveCost {
                link: n.network.span_link(spans),
                p: psize,
            };
            let base = collective_base_secs(&cc, op, total, psize);
            // Same stream the engine drew the round's jitter from.
            let mut rng = DetRng::for_stream(ctx.seed ^ COLLECTIVE_NAMESPACE, comm.0, round);
            let jitter = n.noise.latency_jitter(&mut rng);
            VTime::from_secs_f64(base + jitter).as_nanos()
        }
        None => {
            let max_enter = cr
                .and_then(|c| c.entries.iter().map(|&(_, t)| t).max())
                .unwrap_or(exit_rec_ns);
            exit_rec_ns.saturating_sub(max_enter)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waitstate::{classify, CommRecorder};
    use crate::{SectionRuntime, VerifyMode};
    use mpisim::{Src, TagSel, WorldBuilder};
    use std::sync::Arc;

    fn pipeline_log(machine: MachineModel, seed: u64) -> CommLog {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let rec = CommRecorder::new();
        let s = sections.clone();
        WorldBuilder::new(4)
            .machine(machine)
            .seed(seed)
            .tool(sections.clone())
            .tool(rec.clone())
            .run(move |p| {
                let world = p.world();
                for _ in 0..5 {
                    s.scoped(p, &world, "STEP", |p| {
                        let world = p.world();
                        p.compute(machine::Work::new(1e7, 1e6));
                        let next = (p.world_rank() + 1) % p.world_size();
                        let prev = (p.world_rank() + p.world_size() - 1) % p.world_size();
                        world.send(p, next, 3, &[7u8; 256]);
                        let _ = world.recv::<u8>(p, Src::Rank(prev), TagSel::Is(3));
                    });
                    s.scoped(p, &world, "SYNC", |p| {
                        let world = p.world();
                        let _ = world.allreduce(p, vec![p.world_rank() as u64], |a, b| a + b);
                    });
                }
            })
            .unwrap();
        rec.freeze()
    }

    #[test]
    fn identity_replay_is_bitwise_exact() {
        let log = pipeline_log(machine::presets::nehalem_cluster(), 11);
        let re = replay(
            &log,
            &machine::presets::nehalem_cluster(),
            11,
            &WhatIfSpec::identity(),
        )
        .unwrap();
        assert_eq!(re.makespan_ns(), log.makespan_ns());
        assert_eq!(classify(&re).to_json(), classify(&log).to_json());
        assert_eq!(
            crate::critpath::extract(&re).to_json(),
            crate::critpath::extract(&log).to_json()
        );
    }

    #[test]
    fn repriced_identity_network_matches_recording() {
        // Repricing with the recorded machine's own parameters and the
        // regenerated jitter streams must also be exact: this pins the
        // jitter regeneration (streams, draw order) to the engine.
        let m = machine::presets::nehalem_cluster();
        let log = pipeline_log(m.clone(), 7);
        let spec = crate::whatif::parse("net=nehalem").unwrap();
        let re = replay(&log, &m, 7, &spec).unwrap();
        assert_eq!(re.makespan_ns(), log.makespan_ns());
        assert_eq!(classify(&re).to_json(), classify(&log).to_json());
    }

    #[test]
    fn ideal_network_never_slows_the_run() {
        let m = machine::presets::nehalem_cluster();
        let log = pipeline_log(m.clone(), 3);
        let spec = crate::whatif::parse("net=ideal").unwrap();
        let re = replay(&log, &m, 3, &spec).unwrap();
        assert!(re.makespan_ns() <= log.makespan_ns());
    }

    #[test]
    fn null_late_sender_clears_the_class() {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let rec = CommRecorder::new();
        let s = sections.clone();
        WorldBuilder::new(2)
            .tool(sections.clone())
            .tool(rec.clone())
            .run(move |p| {
                let world = p.world();
                s.scoped(p, &world, "PIPE", |p| {
                    let world = p.world();
                    if p.world_rank() == 0 {
                        let _ = world.recv::<u8>(p, Src::Rank(1), TagSel::Any);
                    } else {
                        p.advance_secs(2.0);
                        world.send(p, 0, 0, &[1u8]);
                    }
                });
            })
            .unwrap();
        let log = rec.freeze();
        assert!(classify(&log).totals().late_sender_ns > 1_000_000_000);
        let spec = crate::whatif::parse("null=late-sender").unwrap();
        let re = replay(&log, &machine::presets::ideal(), 1, &spec).unwrap();
        assert_eq!(classify(&re).totals().late_sender_ns, 0);
        // The receiver no longer idles, so its own timeline collapses; the
        // sender still computes 2 s, which keeps the makespan pinned.
        assert!(re.ranks[0].fini_ns < log.ranks[0].fini_ns);
        assert!(re.makespan_ns() >= 2_000_000_000);
    }

    #[test]
    fn null_wait_at_collective_clears_the_class() {
        let rec = CommRecorder::new();
        WorldBuilder::new(4)
            .tool(rec.clone())
            .run(|p| {
                let world = p.world();
                if p.world_rank() == 3 {
                    p.advance_secs(1.0);
                }
                world.barrier(p);
            })
            .unwrap();
        let log = rec.freeze();
        assert!(classify(&log).totals().coll_wait_ns > 2_500_000_000);
        let spec = crate::whatif::parse("null=wait-at-collective").unwrap();
        let re = replay(&log, &machine::presets::ideal(), 1, &spec).unwrap();
        assert_eq!(classify(&re).totals().coll_wait_ns, 0);
        // The straggler's compute still dominates the makespan.
        assert!(re.makespan_ns() >= 1_000_000_000);
    }

    #[test]
    fn scale_shrinks_the_named_section_only() {
        let m = machine::presets::ideal();
        let log = pipeline_log(m.clone(), 1);
        let spec = crate::whatif::parse("scale:STEP=0.5").unwrap();
        let re = replay(&log, &m, 1, &spec).unwrap();
        assert!(
            re.makespan_ns() < log.makespan_ns(),
            "halving STEP work must shrink the run: {} vs {}",
            re.makespan_ns(),
            log.makespan_ns()
        );
        let unknown = crate::whatif::parse("scale:NOPE=0.5").unwrap();
        let err = replay(&log, &m, 1, &unknown).err().unwrap();
        assert!(err.contains("NOPE"), "{err}");
    }

    #[test]
    fn replay_is_deterministic() {
        let m = machine::presets::nehalem_cluster();
        let log = pipeline_log(m.clone(), 5);
        let spec = crate::whatif::parse("jitter=0").unwrap();
        let a = replay(&log, &m, 5, &spec).unwrap();
        let b = replay(&log, &m, 5, &spec).unwrap();
        assert_eq!(a.makespan_ns(), b.makespan_ns());
        assert_eq!(classify(&a).to_json(), classify(&b).to_json());
        let _ = Arc::strong_count(&Arc::new(()));
    }
}
