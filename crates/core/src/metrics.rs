//! Derived section metrics — the quantities of the paper's Fig. 3.
//!
//! For one *instance* of a section (the k-th time a label is entered on a
//! communicator), across all participating ranks:
//!
//! * `Tmin`  — earliest enter time (first process into the region);
//! * `Tin`   — per-rank enter timestamps;
//! * `Tout`  — per-rank exit timestamps;
//! * `Tsection = Tout - Tmin` — the paper's per-rank section time;
//! * `Tmax`  — latest exit time;
//! * entry imbalance per rank: `imb_in = Tin - Tmin`;
//! * section imbalance: `imb = (Tmax - Tmin) - mean(Tsection)`.
//!
//! [`InstanceStats`] accumulates these in streaming form (no per-rank
//! storage), so profiling a 456-rank, 1000-step run stays cheap.

use machine::VTime;

/// Streaming statistics of one section instance across its participants.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceStats {
    /// Number of ranks that completed the instance so far.
    pub count: u64,
    /// Earliest enter (`Tmin`).
    pub min_enter: VTime,
    /// Latest enter.
    pub max_enter: VTime,
    /// Earliest exit.
    pub min_exit: VTime,
    /// Latest exit (`Tmax`).
    pub max_exit: VTime,
    /// Sum of enter timestamps (nanoseconds).
    pub sum_enter_ns: u128,
    /// Sum of squared enter timestamps (seconds², for entry variance).
    pub sumsq_enter_s2: f64,
    /// Sum of exit timestamps (nanoseconds).
    pub sum_exit_ns: u128,
    /// Sum of per-rank inclusive durations `Tout - Tin` (nanoseconds).
    pub sum_own_ns: u128,
    /// Sum of squared inclusive durations (seconds²).
    pub sumsq_own_s2: f64,
    /// Smallest per-rank inclusive duration.
    pub min_own: VTime,
    /// Largest per-rank inclusive duration.
    pub max_own: VTime,
    /// Sum of per-rank exclusive durations (nanoseconds).
    pub sum_excl_ns: u128,
}

impl Default for InstanceStats {
    fn default() -> Self {
        InstanceStats {
            count: 0,
            min_enter: VTime::MAX,
            max_enter: VTime::ZERO,
            min_exit: VTime::MAX,
            max_exit: VTime::ZERO,
            sum_enter_ns: 0,
            sumsq_enter_s2: 0.0,
            sum_exit_ns: 0,
            sum_own_ns: 0,
            sumsq_own_s2: 0.0,
            min_own: VTime::MAX,
            max_own: VTime::ZERO,
            sum_excl_ns: 0,
        }
    }
}

impl InstanceStats {
    /// Fold in one rank's completed traversal.
    pub fn record(&mut self, enter: VTime, exit: VTime, exclusive: VTime) {
        let own = exit - enter;
        self.count += 1;
        self.min_enter = self.min_enter.min(enter);
        self.max_enter = self.max_enter.max(enter);
        self.min_exit = self.min_exit.min(exit);
        self.max_exit = self.max_exit.max(exit);
        self.sum_enter_ns += enter.as_nanos() as u128;
        let es = enter.as_secs_f64();
        self.sumsq_enter_s2 += es * es;
        self.sum_exit_ns += exit.as_nanos() as u128;
        self.sum_own_ns += own.as_nanos() as u128;
        let os = own.as_secs_f64();
        self.sumsq_own_s2 += os * os;
        self.min_own = self.min_own.min(own);
        self.max_own = self.max_own.max(own);
        self.sum_excl_ns += exclusive.as_nanos() as u128;
    }

    /// `Tmin` — when the first process entered the region.
    pub fn t_min(&self) -> VTime {
        if self.count == 0 {
            VTime::ZERO
        } else {
            self.min_enter
        }
    }

    /// `Tmax` — when the last process left the region.
    pub fn t_max(&self) -> VTime {
        self.max_exit
    }

    /// `Tmax - Tmin`: the instance's distributed wall presence.
    pub fn span(&self) -> VTime {
        if self.count == 0 {
            VTime::ZERO
        } else {
            self.max_exit - self.min_enter
        }
    }

    /// Mean of the paper's per-rank `Tsection = Tout - Tmin`, in seconds.
    pub fn mean_t_section_secs(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mean_exit = self.sum_exit_ns as f64 / self.count as f64 * 1e-9;
        mean_exit - self.min_enter.as_secs_f64()
    }

    /// Mean per-rank inclusive duration `Tout - Tin`, in seconds.
    pub fn mean_own_secs(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum_own_ns as f64 / self.count as f64 * 1e-9
    }

    /// Sum of per-rank inclusive durations, in seconds.
    pub fn total_own_secs(&self) -> f64 {
        self.sum_own_ns as f64 * 1e-9
    }

    /// Sum of per-rank exclusive durations, in seconds.
    pub fn total_excl_secs(&self) -> f64 {
        self.sum_excl_ns as f64 * 1e-9
    }

    /// The paper's section imbalance `imb = (Tmax - Tmin) - mean(Tsection)`,
    /// in seconds. Mathematically non-negative (`mean(Tout) <= Tmax`);
    /// clamped against floating-point rounding.
    pub fn imbalance_secs(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        (self.span().as_secs_f64() - self.mean_t_section_secs()).max(0.0)
    }

    /// Mean entry imbalance `mean(Tin - Tmin)`, in seconds.
    pub fn mean_entry_imbalance_secs(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mean_enter = self.sum_enter_ns as f64 / self.count as f64 * 1e-9;
        mean_enter - self.min_enter.as_secs_f64()
    }

    /// Population variance of the entry timestamps, in seconds².
    pub fn entry_variance_s2(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        let mean = self.sum_enter_ns as f64 / n * 1e-9;
        (self.sumsq_enter_s2 / n - mean * mean).max(0.0)
    }

    /// Population variance of per-rank inclusive durations, in seconds².
    pub fn own_variance_s2(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        let mean = self.sum_own_ns as f64 / n * 1e-9;
        (self.sumsq_own_s2 / n - mean * mean).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> VTime {
        VTime::from_secs_f64(s)
    }

    /// The Fig. 3 scenario: three ranks enter a region at different times
    /// and leave at different times.
    fn fig3_instance() -> InstanceStats {
        let mut inst = InstanceStats::default();
        // rank 0: 1.0 -> 4.0, rank 1: 2.0 -> 5.0, rank 2: 3.0 -> 6.0
        inst.record(t(1.0), t(4.0), t(3.0));
        inst.record(t(2.0), t(5.0), t(3.0));
        inst.record(t(3.0), t(6.0), t(3.0));
        inst
    }

    #[test]
    fn tmin_tmax_span() {
        let inst = fig3_instance();
        assert_eq!(inst.t_min(), t(1.0));
        assert_eq!(inst.t_max(), t(6.0));
        assert_eq!(inst.span(), t(5.0));
        assert_eq!(inst.count, 3);
    }

    #[test]
    fn t_section_is_exit_minus_tmin() {
        let inst = fig3_instance();
        // Tsection per rank: 3, 4, 5 -> mean 4.
        assert!((inst.mean_t_section_secs() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn imbalance_matches_paper_formula() {
        let inst = fig3_instance();
        // imb = (Tmax - Tmin) - mean(Tsection) = 5 - 4 = 1.
        assert!((inst.imbalance_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn entry_imbalance() {
        let inst = fig3_instance();
        // Tin - Tmin: 0, 1, 2 -> mean 1.
        assert!((inst.mean_entry_imbalance_secs() - 1.0).abs() < 1e-9);
        // Variance of enters {1,2,3}: 2/3.
        assert!((inst.entry_variance_s2() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn own_durations() {
        let inst = fig3_instance();
        assert!((inst.mean_own_secs() - 3.0).abs() < 1e-9);
        assert!((inst.total_own_secs() - 9.0).abs() < 1e-9);
        assert_eq!(inst.min_own, t(3.0));
        assert_eq!(inst.max_own, t(3.0));
        assert!(inst.own_variance_s2() < 1e-12);
    }

    #[test]
    fn perfectly_synchronized_region_has_zero_imbalance() {
        let mut inst = InstanceStats::default();
        for _ in 0..4 {
            inst.record(t(10.0), t(12.0), t(2.0));
        }
        assert!(inst.imbalance_secs().abs() < 1e-9);
        assert!(inst.mean_entry_imbalance_secs().abs() < 1e-9);
    }

    #[test]
    fn empty_instance_is_all_zeros() {
        let inst = InstanceStats::default();
        assert_eq!(inst.t_min(), VTime::ZERO);
        assert_eq!(inst.span(), VTime::ZERO);
        assert_eq!(inst.mean_t_section_secs(), 0.0);
        assert_eq!(inst.imbalance_secs(), 0.0);
        assert_eq!(inst.entry_variance_s2(), 0.0);
    }

    #[test]
    fn exclusive_tracking() {
        let mut inst = InstanceStats::default();
        inst.record(t(0.0), t(10.0), t(4.0));
        assert!((inst.total_excl_secs() - 4.0).abs() < 1e-9);
        assert!((inst.total_own_secs() - 10.0).abs() < 1e-9);
    }
}
