//! Bounded-memory streaming run summarization — observability that
//! survives 16k ranks.
//!
//! [`CommRecorder`](crate::CommRecorder) keeps every event of every rank:
//! perfect for what-if replay and schedule verification, but its memory
//! grows with `steps × p` and the exporters built on it grow faster. At
//! the scales where the paper's expressiveness argument matters most
//! (p ≥ 1024 on the DES engine) that is exactly backwards. Following the
//! summarized-trace direction of Haldar (arXiv:2512.01764) and Scalasca's
//! runtime summarization, [`SummaryTool`] maintains **online state whose
//! size is independent of the event count and nearly independent of p**:
//!
//! * per-section wait-time and compute-time [`QuantileSketch`]es
//!   (p50/p90/p99 within a documented relative error, exact totals),
//! * exact per-section [`WaitBreakdown`] totals — the same numbers
//!   [`classify`](crate::classify) derives offline, computed online,
//! * **rank equivalence clustering**: each rank's quantized per-section
//!   wait-class profile is FNV-fingerprinted; ranks with equal
//!   fingerprints collapse into one cluster with an exemplar world rank
//!   and a member count (≤ [`CLUSTER_BUDGET`] clusters reported),
//! * a [`SpaceSaving`] top-k sketch over `(src, dst)` comm edges with an
//!   explicit `dropped_edges` eviction count — never silent truncation,
//! * periodic virtual-time **checkpoint rows** (adaptive cadence, at most
//!   [`CHECKPOINT_ROW_BUDGET`]`× 2` rows) that reconstruct a
//!   [`Timeline`] for the PR 5 trend detector without an event log,
//! * a streaming lower bound on the critical-path length: each rank's
//!   program order is a dependency chain, so
//!   `CPL >= max_r(fini_r - idle_r)` — giving a valid (weaker)
//!   `S <= T_seq/CPL` upper bound with O(1) state per rank.
//!
//! Everything folded globally is either additive or a running maximum, so
//! the frozen summary is byte-deterministic across equal seeds *and*
//! across the DES/threads engines, exactly like the full recorder's
//! artifacts (`crates/bench/tests/engine_equivalence.rs` pins this).

use crate::fasthash::{fnv1a, FastMap};
use crate::sketch::{HeavyHitter, QuantileSketch, SpaceSaving, QUANTILE_REL_ERR};
use crate::timeline::{Timeline, Window, WindowSection};
use crate::waitstate::{Interner, WaitBreakdown};
use mpisim::diag::json_str;
use mpisim::{CommId, MpiEvent, Tool};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

const SHARDS: usize = 64;

/// World size at and above which `profile` switches to summary-only
/// recording (full event log off unless a flag needs it).
pub const SUMMARY_AUTO_RANKS: usize = 1024;

/// Maximum rank-equivalence clusters reported (K).
pub const CLUSTER_BUDGET: usize = 16;

/// Global top-k comm edges retained (k).
pub const EDGE_BUDGET: usize = 64;

/// Per-rank heavy-hitter slots over destination ranks.
const EDGES_PER_RANK: usize = 8;

/// Target checkpoint row count; the cadence doubles (merging row pairs)
/// whenever the run would need more than twice this many rows.
pub const CHECKPOINT_ROW_BUDGET: usize = 64;

/// Initial checkpoint cadence: 1 ms of virtual time per row.
const CHECKPOINT_BASE_CADENCE_NS: u64 = 1_000_000;

/// Wait classes, in fingerprint/profile key order.
const CLASS_NAMES: [&str; 3] = ["late-sender", "late-receiver", "coll-wait"];
const CLASS_LS: u32 = 0;
const CLASS_LR: u32 = 1;
const CLASS_CW: u32 = 2;

/// One checkpoint cell: the additive slice of a
/// [`WindowSection`] the summarizer can maintain online.
#[derive(Debug, Default, Clone, Copy)]
struct CheckCell {
    time_ns: u64,
    late_sender_ns: u64,
    coll_wait_ns: u64,
    transfer_ns: u64,
    sent_msgs: u64,
    sent_bytes: u64,
    recv_msgs: u64,
    recv_bytes: u64,
    coll_exits: u64,
}

impl CheckCell {
    fn add(&mut self, o: &CheckCell) {
        self.time_ns += o.time_ns;
        self.late_sender_ns += o.late_sender_ns;
        self.coll_wait_ns += o.coll_wait_ns;
        self.transfer_ns += o.transfer_ns;
        self.sent_msgs += o.sent_msgs;
        self.sent_bytes += o.sent_bytes;
        self.recv_msgs += o.recv_msgs;
        self.recv_bytes += o.recv_bytes;
        self.coll_exits += o.coll_exits;
    }
}

/// Fixed-budget virtual-time rows. The cadence starts at 1 ms and doubles
/// (merging adjacent row pairs) whenever an event lands beyond row
/// `2 × CHECKPOINT_ROW_BUDGET`; since every cell field is additive, the
/// final rows depend only on the final cadence — itself a function of the
/// largest timestamp seen — never on event interleaving.
#[derive(Debug, Clone)]
struct Checkpoints {
    cadence_ns: u64,
    rows: Vec<FastMap<u32, CheckCell>>,
}

impl Default for Checkpoints {
    fn default() -> Self {
        Checkpoints {
            cadence_ns: CHECKPOINT_BASE_CADENCE_NS,
            rows: Vec::new(),
        }
    }
}

impl Checkpoints {
    /// Grow the cadence until time `t` maps below the hard row cap.
    fn fit(&mut self, t: u64) {
        while t / self.cadence_ns >= (2 * CHECKPOINT_ROW_BUDGET) as u64 {
            self.cadence_ns *= 2;
            let mut merged: Vec<FastMap<u32, CheckCell>> =
                Vec::with_capacity(self.rows.len().div_ceil(2));
            for pair in self.rows.chunks(2) {
                let mut row = pair[0].clone();
                if let Some(b) = pair.get(1) {
                    for (&sec, cell) in b.iter() {
                        row.entry(sec).or_default().add(cell);
                    }
                }
                merged.push(row);
            }
            self.rows = merged;
        }
    }

    fn cell(&mut self, t: u64, sec: u32) -> &mut CheckCell {
        self.fit(t);
        let idx = (t / self.cadence_ns) as usize;
        if self.rows.len() <= idx {
            self.rows.resize_with(idx + 1, FastMap::default);
        }
        self.rows[idx].entry(sec).or_default()
    }

    /// Split `[a, b)` across rows, like the timeline's interval splitter.
    fn span(&mut self, a: u64, b: u64, sec: u32, mut f: impl FnMut(&mut CheckCell, u64)) {
        if b <= a {
            return;
        }
        self.fit(b - 1);
        let c = self.cadence_ns;
        let mut w = a / c;
        let last = (b - 1) / c;
        loop {
            let lo = a.max(w * c);
            let hi = b.min((w + 1) * c);
            if hi > lo {
                f(self.cell(lo, sec), hi - lo);
            }
            if w == last {
                break;
            }
            w += 1;
        }
    }
}

/// Per-section streaming aggregates.
#[derive(Debug, Default, Clone)]
struct SectionAgg {
    /// Individual idle-wait durations (late-sender + collective waits).
    wait_sketch: QuantileSketch,
    /// Individual `Compute` event durations.
    compute_sketch: QuantileSketch,
    /// Exact wait-class totals — bit-identical to the offline classifier.
    waits: WaitBreakdown,
}

/// A receive that matched but whose enclosing call has not returned yet.
#[derive(Debug, Clone, Copy)]
struct PendingRecv {
    sec: u32,
    post_ns: u64,
    send_ns: u64,
    match_ns: u64,
    bytes: u64,
}

/// Per-rank residue: everything that must stay rank-local, all O(1) or
/// O(sections) per rank.
struct RankResidue {
    stack: Vec<(CommId, u32)>,
    last_t: u64,
    recv_posted_ns: Option<u64>,
    pending_recv: Option<PendingRecv>,
    coll_pending: Option<(u64, u64)>, // (enter_ns, round)
    coll_rounds: FastMap<CommId, u64>,
    /// Nonzero wait totals keyed by `sec * 4 + class` — the clustering
    /// fingerprint input.
    profile: Vec<(u32, u64)>,
    /// Heavy-hitter destinations of this rank's sends.
    edges: SpaceSaving,
    /// Total idle time (late-sender + collective waits) on this rank.
    wait_total_ns: u64,
    fini_ns: u64,
}

impl Default for RankResidue {
    fn default() -> Self {
        RankResidue {
            stack: Vec::new(),
            last_t: 0,
            recv_posted_ns: None,
            pending_recv: None,
            coll_pending: None,
            coll_rounds: FastMap::default(),
            profile: Vec::new(),
            edges: SpaceSaving::new(EDGES_PER_RANK),
            wait_total_ns: 0,
            fini_ns: 0,
        }
    }
}

impl RankResidue {
    fn current_sec(&self, main_id: u32) -> u32 {
        self.stack.last().map(|&(_, id)| id).unwrap_or(main_id)
    }

    /// Close the presence interval `[last_t, t)` against the section that
    /// was current, returning `(sec, from, to)` for the checkpoint fold.
    fn tick(&mut self, t: u64, main_id: u32) -> (u32, u64, u64) {
        let sec = self.current_sec(main_id);
        let from = self.last_t;
        self.last_t = t;
        (sec, from, t)
    }

    fn bump_profile(&mut self, key: u32, ns: u64) {
        if ns == 0 {
            return;
        }
        if let Some(e) = self.profile.iter_mut().find(|e| e.0 == key) {
            e.1 += ns;
        } else {
            self.profile.push((key, ns));
        }
    }
}

/// One collective round awaiting all member exits.
#[derive(Debug, Default, Clone)]
struct CollAgg {
    max_enter_ns: u64,
    size: usize,
    pend: Vec<PendColl>,
}

#[derive(Debug, Clone, Copy)]
struct PendColl {
    rank: usize,
    sec: u32,
    enter_ns: u64,
    exit_ns: u64,
}

/// The streaming summarization tool. Attach like any PMPI tool, run, then
/// [`SummaryTool::freeze`] into a [`RunSummary`].
#[derive(Default)]
pub struct SummaryTool {
    shards: Vec<Mutex<FastMap<usize, RankResidue>>>,
    interner: Mutex<Interner>,
    sections: Mutex<Vec<SectionAgg>>,
    sends: Mutex<FastMap<u64, u64>>, // seq -> send_ns (removed on match)
    colls: Mutex<FastMap<(CommId, u64), CollAgg>>,
    checkpoints: Mutex<Checkpoints>,
    nranks: Mutex<usize>,
    main_id: Mutex<Option<u32>>,
}

impl SummaryTool {
    /// A fresh summarizer behind an `Arc`, ready to attach.
    pub fn new() -> Arc<SummaryTool> {
        Arc::new(SummaryTool {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(FastMap::default()))
                .collect(),
            ..SummaryTool::default()
        })
    }

    fn main_id(&self) -> u32 {
        let mut slot = self.main_id.lock();
        *slot.get_or_insert_with(|| {
            self.interner
                .lock()
                .intern(&Arc::from(crate::section::MPI_MAIN))
        })
    }

    fn with_rank<R>(&self, rank: usize, f: impl FnOnce(&mut RankResidue) -> R) -> R {
        let mut shard = self.shards[rank % SHARDS].lock();
        f(shard.entry(rank).or_default())
    }

    fn with_section<R>(&self, sec: u32, f: impl FnOnce(&mut SectionAgg) -> R) -> R {
        let mut sections = self.sections.lock();
        let i = sec as usize;
        if sections.len() <= i {
            sections.resize_with(i + 1, SectionAgg::default);
        }
        f(&mut sections[i])
    }

    /// Fold a closed presence interval into the checkpoint rows.
    fn presence(&self, sec: u32, from: u64, to: u64) {
        if to > from {
            self.checkpoints
                .lock()
                .span(from, to, sec, |cell, ns| cell.time_ns += ns);
        }
    }

    /// Settle one member of a completed collective round. Touches the
    /// rank shard, the section table and the checkpoints strictly one at
    /// a time (never nested), so it is safe from any event thread.
    fn settle_coll(&self, max_enter: u64, p: &PendColl) {
        let wait = max_enter.saturating_sub(p.enter_ns);
        if wait > 0 {
            self.with_rank(p.rank, |st| {
                st.bump_profile(p.sec * 4 + CLASS_CW, wait);
                st.wait_total_ns += wait;
            });
            self.with_section(p.sec, |agg| {
                agg.waits.coll_wait_ns += wait;
                agg.wait_sketch.record(wait);
            });
        }
        let mut ck = self.checkpoints.lock();
        ck.span(p.enter_ns, max_enter.min(p.exit_ns), p.sec, |cell, ns| {
            cell.coll_wait_ns += ns;
        });
        ck.span(max_enter.max(p.enter_ns), p.exit_ns, p.sec, |cell, ns| {
            cell.transfer_ns += ns;
        });
    }

    /// Freeze the streaming state into an immutable [`RunSummary`].
    ///
    /// Collective rounds still awaiting exits (only possible on aborted
    /// runs) are settled with the arrivals seen so far, mirroring what
    /// the offline classifier reports for such logs.
    pub fn freeze(&self) -> RunSummary {
        let leftovers: Vec<CollAgg> = {
            let mut colls = self.colls.lock();
            colls.drain().map(|(_, agg)| agg).collect()
        };
        for agg in &leftovers {
            for p in &agg.pend {
                self.settle_coll(agg.max_enter_ns, p);
            }
        }

        let nranks = *self.nranks.lock();
        let names: Vec<String> = self.interner.lock().names.clone();
        let sections_raw: Vec<SectionAgg> = self.sections.lock().clone();
        let checkpoints: Checkpoints = self.checkpoints.lock().clone();

        // Gather the per-rank residues in world-rank order.
        struct RankOut {
            profile: Vec<(u32, u64)>,
            edges: SpaceSaving,
            wait_total_ns: u64,
            fini_ns: u64,
            residue_bytes: usize,
        }
        let mut ranks: Vec<Option<RankOut>> = (0..nranks).map(|_| None).collect();
        for shard in &self.shards {
            let shard = shard.lock();
            for (&rank, st) in shard.iter() {
                if rank < nranks {
                    let residue_bytes = std::mem::size_of::<RankResidue>()
                        + st.profile.len() * std::mem::size_of::<(u32, u64)>()
                        + st.edges.state_bytes()
                        + st.coll_rounds.len() * std::mem::size_of::<(CommId, u64)>();
                    let mut profile = st.profile.clone();
                    profile.sort_unstable();
                    ranks[rank] = Some(RankOut {
                        profile,
                        edges: st.edges.clone(),
                        wait_total_ns: st.wait_total_ns,
                        fini_ns: st.fini_ns,
                        residue_bytes,
                    });
                }
            }
        }

        let makespan_ns = ranks.iter().flatten().map(|r| r.fini_ns).max().unwrap_or(0);
        let cpl_lower_bound_ns = ranks
            .iter()
            .flatten()
            .map(|r| r.fini_ns.saturating_sub(r.wait_total_ns))
            .max()
            .unwrap_or(0);

        // Sections, sorted by label (interner ids are scheduling-order
        // dependent; names are not).
        let mut order: Vec<usize> = (0..names.len()).collect();
        order.sort_by(|&a, &b| names[a].cmp(&names[b]));
        let sections: Vec<SectionSummary> = order
            .iter()
            .map(|&i| {
                let agg = sections_raw.get(i).cloned().unwrap_or_default();
                SectionSummary {
                    label: names[i].clone(),
                    waits: agg.waits,
                    wait_sketch: agg.wait_sketch,
                    compute_sketch: agg.compute_sketch,
                }
            })
            .collect();

        // Rank equivalence clusters: fingerprint each rank's quantized
        // per-section wait-class profile over label *names*.
        let mut acc: BTreeMap<u64, RankCluster> = BTreeMap::new();
        for (rank, out) in ranks.iter().enumerate() {
            let profile: Vec<(u32, u64)> =
                out.as_ref().map(|o| o.profile.clone()).unwrap_or_default();
            let mut cells: Vec<ProfileCell> = profile
                .iter()
                .map(|&(key, ns)| ProfileCell {
                    label: names
                        .get((key / 4) as usize)
                        .cloned()
                        .unwrap_or_else(|| format!("#{}", key / 4)),
                    class: CLASS_NAMES[(key % 4) as usize],
                    bucket: quantize_ns(ns),
                    exemplar_ns: ns,
                })
                .collect();
            cells.sort_by(|a, b| (&a.label, a.class).cmp(&(&b.label, b.class)));
            let mut canon = String::new();
            for c in &cells {
                let _ = writeln!(canon, "{}\u{1}{}\u{1}{}", c.label, c.class, c.bucket);
            }
            let fp = fnv1a(canon.as_bytes());
            let entry = acc.entry(fp).or_insert_with(|| RankCluster {
                fingerprint: fp,
                members: 0,
                exemplar: rank,
                profile: cells,
            });
            entry.members += 1;
        }
        let mut clusters: Vec<RankCluster> = acc.into_values().collect();
        clusters.sort_by_key(|c| (std::cmp::Reverse(c.members), c.exemplar));
        let dropped_clusters = clusters.len().saturating_sub(CLUSTER_BUDGET);
        let other_members: usize = clusters
            .iter()
            .skip(CLUSTER_BUDGET)
            .map(|c| c.members)
            .sum();
        clusters.truncate(CLUSTER_BUDGET);

        // Fold per-rank edge tables (rank order) into the global top-k.
        let mut global_edges = SpaceSaving::new(EDGE_BUDGET);
        for out in ranks.iter().flatten() {
            global_edges.absorb(&out.edges);
        }
        let dropped_edges = global_edges.evictions;
        let edges: Vec<EdgeSummary> = global_edges
            .top()
            .into_iter()
            .map(|e: HeavyHitter| EdgeSummary {
                src: (e.key >> 32) as usize,
                dst: (e.key & 0xffff_ffff) as usize,
                msgs: e.count,
                bytes: e.weight,
                err_bytes: e.err,
            })
            .collect();

        // Budget-based state accounting: constant in the step count by
        // construction, and dominated by fixed sketch/checkpoint budgets
        // rather than p (the per-rank residue is tens of bytes).
        let nsec = names.len().max(1);
        let state_bytes = std::mem::size_of::<SummaryTool>()
            + nsec * std::mem::size_of::<SectionAgg>()
            + 2 * CHECKPOINT_ROW_BUDGET
                * nsec
                * (std::mem::size_of::<CheckCell>() + std::mem::size_of::<u32>())
            + clusters
                .iter()
                .map(|c| 64 + c.profile.len() * std::mem::size_of::<(u32, u64, u64)>())
                .sum::<usize>()
            + EDGE_BUDGET * std::mem::size_of::<HeavyHitter>()
            + ranks
                .iter()
                .flatten()
                .map(|r| r.residue_bytes)
                .sum::<usize>();

        let checkpoint_cadence_ns = checkpoints.cadence_ns;
        let timeline = build_timeline(&checkpoints, &names, nranks, makespan_ns);

        RunSummary {
            nranks,
            makespan_ns,
            cpl_lower_bound_ns,
            state_bytes,
            sections,
            clusters,
            dropped_clusters,
            other_members,
            edges,
            dropped_edges,
            checkpoint_cadence_ns,
            timeline,
        }
    }
}

/// Coarse log-quantization for the cluster fingerprint: 4 buckets per
/// decade, so ranks whose waits differ by less than ~78% land together.
fn quantize_ns(ns: u64) -> u32 {
    if ns == 0 {
        0
    } else {
        1 + (4.0 * (ns as f64).log10()).floor().max(0.0) as u32
    }
}

/// Reconstruct a [`Timeline`] from the checkpoint rows. Additive fields
/// (presence, waits, transfer, counters) recompose the exact run totals;
/// per-rank maxima are not tracked by the bounded summary, so
/// `max_time_ns`/`max_useful_ns` are 0 and the load-balance factor reads
/// neutral — the comm/serialization/transfer efficiencies the trend
/// detector consumes are all present.
fn build_timeline(ck: &Checkpoints, names: &[String], nranks: usize, makespan_ns: u64) -> Timeline {
    let c = ck.cadence_ns;
    let nwin = ck.rows.len().max(1);
    let mut edges_ns: Vec<u64> = (0..nwin as u64).map(|i| i * c).collect();
    edges_ns.push(makespan_ns.max((nwin as u64 - 1) * c + 1));
    let mut windows: Vec<Window> = Vec::with_capacity(nwin);
    for w in 0..nwin {
        let start_ns = edges_ns[w];
        let end_ns = edges_ns[w + 1];
        let mut sections: BTreeMap<String, WindowSection> = BTreeMap::new();
        if let Some(row) = ck.rows.get(w) {
            let mut ids: Vec<u32> = row.keys().copied().collect();
            ids.sort_unstable();
            for sec in ids {
                let cell = &row[&sec];
                let label = names
                    .get(sec as usize)
                    .cloned()
                    .unwrap_or_else(|| format!("#{sec}"));
                let ws = WindowSection {
                    capacity_ns: (end_ns - start_ns) * nranks as u64,
                    time_ns: cell.time_ns,
                    useful_ns: cell
                        .time_ns
                        .saturating_sub(cell.late_sender_ns + cell.coll_wait_ns + cell.transfer_ns),
                    late_sender_ns: cell.late_sender_ns,
                    coll_wait_ns: cell.coll_wait_ns,
                    transfer_ns: cell.transfer_ns,
                    max_time_ns: 0,
                    max_useful_ns: 0,
                    ranks: nranks,
                    sent_msgs: cell.sent_msgs,
                    sent_bytes: cell.sent_bytes,
                    recv_msgs: cell.recv_msgs,
                    recv_bytes: cell.recv_bytes,
                    coll_exits: cell.coll_exits,
                };
                sections.insert(label, ws);
            }
        }
        windows.push(Window {
            start_ns,
            end_ns,
            sections,
            wait_hist: Default::default(),
        });
    }
    Timeline {
        edges_ns,
        nranks,
        windows,
    }
}

impl Tool for SummaryTool {
    fn interests(&self) -> mpisim::EventMask {
        use mpisim::EventKind as K;
        mpisim::EventMask::of(&[
            K::Init,
            K::Finalize,
            K::SectionEnter,
            K::SectionLeave,
            K::SendEnqueued,
            K::RecvBlocked,
            K::RecvMatched,
            K::CallExit,
            K::CollectiveEnter,
            K::CollectiveExit,
            K::Compute,
        ])
    }

    fn on_event(&self, world_rank: usize, event: &MpiEvent) {
        match event {
            MpiEvent::Init { size, time } => {
                {
                    let mut n = self.nranks.lock();
                    *n = (*n).max(*size);
                }
                let main = self.main_id();
                self.with_rank(world_rank, |st| {
                    st.stack.push((CommId::WORLD, main));
                    st.last_t = time.as_nanos();
                });
            }
            MpiEvent::Finalize { time } => {
                let main = self.main_id();
                let (sec, a, b) = self.with_rank(world_rank, |st| {
                    let t = time.as_nanos();
                    st.fini_ns = t;
                    st.tick(t, main)
                });
                self.presence(sec, a, b);
            }
            MpiEvent::SectionEnter {
                comm, label, time, ..
            } => {
                let id = self.interner.lock().intern(label);
                let main = self.main_id();
                let (sec, a, b) = self.with_rank(world_rank, |st| {
                    let span = st.tick(time.as_nanos(), main);
                    st.stack.push((*comm, id));
                    span
                });
                self.presence(sec, a, b);
            }
            MpiEvent::SectionLeave {
                comm, label, time, ..
            } => {
                let id = self.interner.lock().intern(label);
                let main = self.main_id();
                let (sec, a, b) = self.with_rank(world_rank, |st| {
                    let span = st.tick(time.as_nanos(), main);
                    if let Some(pos) = st.stack.iter().rposition(|&(c, l)| c == *comm && l == id) {
                        st.stack.remove(pos);
                    }
                    span
                });
                self.presence(sec, a, b);
            }
            MpiEvent::SendEnqueued {
                seq,
                time,
                bytes,
                dst_world,
                ..
            } => {
                let t = time.as_nanos();
                self.sends.lock().insert(*seq, t);
                let main = self.main_id();
                let dst = *dst_world;
                let nbytes = *bytes;
                let (sec, a, b) = self.with_rank(world_rank, |st| {
                    let span = st.tick(t, main);
                    let key = ((world_rank as u64) << 32) | dst as u64;
                    st.edges.record(key, nbytes, 1);
                    span
                });
                self.presence(sec, a, b);
                let mut ck = self.checkpoints.lock();
                let cell = ck.cell(t, sec);
                cell.sent_msgs += 1;
                cell.sent_bytes += nbytes;
            }
            MpiEvent::RecvBlocked { time, .. } => {
                self.with_rank(world_rank, |st| {
                    st.recv_posted_ns = Some(time.as_nanos());
                });
            }
            MpiEvent::RecvMatched {
                seq, time, bytes, ..
            } => {
                // The send event is always delivered before the match can
                // be observed (the deposit only becomes visible after the
                // sender raised it), so this lookup succeeds; the map is
                // pruned on match, bounding it by in-flight messages.
                let send_ns = self.sends.lock().remove(seq);
                let main = self.main_id();
                let nbytes = *bytes;
                let (span, sec, post, send, wait) = self.with_rank(world_rank, |st| {
                    let t = time.as_nanos();
                    let post = st.recv_posted_ns.take().unwrap_or(t);
                    let span = st.tick(t, main);
                    let sec = span.0;
                    let send = send_ns.unwrap_or(post);
                    let wait = if send > post {
                        let w = send - post;
                        st.bump_profile(sec * 4 + CLASS_LS, w);
                        st.wait_total_ns += w;
                        w
                    } else {
                        st.bump_profile(sec * 4 + CLASS_LR, post - send);
                        0
                    };
                    st.pending_recv = Some(PendingRecv {
                        sec,
                        post_ns: post,
                        send_ns: send,
                        match_ns: t,
                        bytes: nbytes,
                    });
                    (span, sec, post, send, wait)
                });
                self.presence(span.0, span.1, span.2);
                self.with_section(sec, |agg| {
                    if wait > 0 {
                        agg.waits.late_sender_ns += wait;
                        agg.wait_sketch.record(wait);
                    } else {
                        agg.waits.late_receiver_ns += post - send;
                    }
                });
                if wait > 0 {
                    self.checkpoints.lock().span(post, send, sec, |cell, ns| {
                        cell.late_sender_ns += ns;
                    });
                }
            }
            MpiEvent::CallExit { time, .. } => {
                // The blocking receive's completion edge: wire time after
                // the send, plus the delivered-message counters.
                let pending = self.with_rank(world_rank, |st| st.pending_recv.take());
                if let Some(p) = pending {
                    let done = time.as_nanos().max(p.match_ns);
                    let mut ck = self.checkpoints.lock();
                    ck.span(p.send_ns.max(p.post_ns), done, p.sec, |cell, ns| {
                        cell.transfer_ns += ns;
                    });
                    let cell = ck.cell(done, p.sec);
                    cell.recv_msgs += 1;
                    cell.recv_bytes += p.bytes;
                }
            }
            MpiEvent::CollectiveEnter {
                comm,
                members,
                time,
                ..
            } => {
                let t = time.as_nanos();
                let round = self.with_rank(world_rank, |st| {
                    let round = st.coll_rounds.entry(*comm).or_insert(0);
                    let r = *round;
                    *round += 1;
                    st.coll_pending = Some((t, r));
                    r
                });
                let mut colls = self.colls.lock();
                let agg = colls.entry((*comm, round)).or_default();
                agg.max_enter_ns = agg.max_enter_ns.max(t);
                agg.size = members.len();
            }
            MpiEvent::CollectiveExit { comm, time, .. } => {
                let main = self.main_id();
                let t = time.as_nanos();
                let (span, pending) = self.with_rank(world_rank, |st| {
                    let span = st.tick(t, main);
                    (span, st.coll_pending.take())
                });
                self.presence(span.0, span.1, span.2);
                let sec = span.0;
                self.checkpoints.lock().cell(t, sec).coll_exits += 1;
                if let Some((enter_ns, round)) = pending {
                    // A rank's enter event precedes its own exit event, so
                    // once every member has exited, every arrival time is
                    // in — the round settles exactly once, with the final
                    // max_enter, regardless of delivery interleaving.
                    let done = {
                        let mut colls = self.colls.lock();
                        let agg = colls.entry((*comm, round)).or_default();
                        agg.pend.push(PendColl {
                            rank: world_rank,
                            sec,
                            enter_ns,
                            exit_ns: t,
                        });
                        if agg.size > 0 && agg.pend.len() == agg.size {
                            colls.remove(&(*comm, round))
                        } else {
                            None
                        }
                    };
                    if let Some(agg) = done {
                        for p in &agg.pend {
                            self.settle_coll(agg.max_enter_ns, p);
                        }
                    }
                }
            }
            MpiEvent::Compute { elapsed, time, .. } => {
                let main = self.main_id();
                let (sec, a, b) = self.with_rank(world_rank, |st| st.tick(time.as_nanos(), main));
                self.presence(sec, a, b);
                self.with_section(sec, |agg| {
                    agg.compute_sketch.record(elapsed.as_nanos());
                });
            }
            _ => {}
        }
    }
}

/// One section's frozen streaming aggregates.
#[derive(Debug, Clone)]
pub struct SectionSummary {
    /// Section label.
    pub label: String,
    /// Exact wait-class totals (matches the offline classifier).
    pub waits: WaitBreakdown,
    /// Sketch over individual idle waits (late-sender + collective).
    pub wait_sketch: QuantileSketch,
    /// Sketch over individual `Compute` durations.
    pub compute_sketch: QuantileSketch,
}

/// One quantized cell of a cluster's wait profile.
#[derive(Debug, Clone)]
pub struct ProfileCell {
    /// Section label.
    pub label: String,
    /// Wait-class name.
    pub class: &'static str,
    /// Coarse log bucket (4 per decade) the fingerprint hashed.
    pub bucket: u32,
    /// The exemplar rank's exact wait in this cell, ns.
    pub exemplar_ns: u64,
}

/// A set of ranks with byte-equal quantized wait profiles.
#[derive(Debug, Clone)]
pub struct RankCluster {
    /// FNV-1a fingerprint of the canonical quantized profile.
    pub fingerprint: u64,
    /// Ranks sharing the fingerprint.
    pub members: usize,
    /// Smallest member world rank.
    pub exemplar: usize,
    /// The exemplar's profile cells, sorted by (label, class).
    pub profile: Vec<ProfileCell>,
}

/// One surviving heavy-hitter comm edge.
#[derive(Debug, Clone, Copy)]
pub struct EdgeSummary {
    /// Source world rank.
    pub src: usize,
    /// Destination world rank.
    pub dst: usize,
    /// Messages (approximate if this edge was ever evicted).
    pub msgs: u64,
    /// Bytes (overestimated by at most `err_bytes`).
    pub bytes: u64,
    /// Weight inherited from evicted edges.
    pub err_bytes: u64,
}

/// The frozen bounded-memory summary of one run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// World size.
    pub nranks: usize,
    /// Virtual end of the run, ns.
    pub makespan_ns: u64,
    /// Streaming lower bound on the critical-path length, ns.
    pub cpl_lower_bound_ns: u64,
    /// Summarizer state, bytes: fixed sketch/checkpoint/edge budgets plus
    /// the O(1)-per-rank residues — independent of the event count.
    pub state_bytes: usize,
    /// Per-section aggregates, sorted by label.
    pub sections: Vec<SectionSummary>,
    /// Rank equivalence clusters, largest first, at most
    /// [`CLUSTER_BUDGET`].
    pub clusters: Vec<RankCluster>,
    /// Clusters folded away beyond the budget.
    pub dropped_clusters: usize,
    /// Members of the folded clusters.
    pub other_members: usize,
    /// Top-k comm edges, heaviest first.
    pub edges: Vec<EdgeSummary>,
    /// Edge-eviction count across all sketches — 0 means `edges` is the
    /// exact comm matrix.
    pub dropped_edges: u64,
    /// Final checkpoint cadence, ns per row.
    pub checkpoint_cadence_ns: u64,
    /// Timeline reconstructed from the checkpoint rows (additive fields
    /// recompose exact run totals; per-rank maxima are absent).
    pub timeline: Timeline,
}

impl RunSummary {
    /// The checkpoint-derived timeline (feeds `speedup::trend::detect`).
    pub fn to_timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Exact idle total (late-sender + collective waits) across ranks.
    pub fn total_wait_ns(&self) -> u64 {
        self.sections
            .iter()
            .map(|s| s.waits.late_sender_ns + s.waits.coll_wait_ns)
            .sum()
    }

    /// Text report: quantile table, cluster heatmap, top edges, bounds.
    /// `seq_total_secs` is the Eq. 6 sequential-proxy total (the summed
    /// per-section exclusive time over ranks divided by p is the
    /// per-section denominator, exactly as in `render_bounds`).
    pub fn render(&self, seq_total_secs: f64) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bounded-memory run summary: p={}, makespan {:.3} s, summarizer state {:.1} KiB",
            self.nranks,
            self.makespan_ns as f64 / 1e9,
            self.state_bytes as f64 / 1024.0
        );
        let _ = writeln!(
            out,
            "\nper-section streaming quantiles (rel err <= {:.1}%):",
            QUANTILE_REL_ERR * 100.0
        );
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>10} {:>10} {:>10} {:>10} {:>8} {:>10}",
            "section",
            "waits",
            "wait p50",
            "wait p90",
            "wait p99",
            "wait sum s",
            "computes",
            "comp p50"
        );
        out.push_str(&"-".repeat(96));
        out.push('\n');
        for s in &self.sections {
            let w = &s.wait_sketch;
            let c = &s.compute_sketch;
            let _ = writeln!(
                out,
                "{:<24} {:>8} {:>10} {:>10} {:>10} {:>10.4} {:>8} {:>10}",
                crate::report::truncate_label(&s.label, 24),
                w.total,
                fmt_ns(w.quantile(0.5)),
                fmt_ns(w.quantile(0.9)),
                fmt_ns(w.quantile(0.99)),
                w.sum_ns as f64 / 1e9,
                c.total,
                fmt_ns(c.quantile(0.5)),
            );
        }

        let _ = writeln!(
            out,
            "\nrank equivalence clusters ({} of <= {}; {} ranks in {} dropped clusters):",
            self.clusters.len(),
            CLUSTER_BUDGET,
            self.other_members,
            self.dropped_clusters
        );
        let cols: Vec<&str> = self.sections.iter().map(|s| s.label.as_str()).collect();
        let max_cell = self
            .clusters
            .iter()
            .flat_map(|c| c.profile.iter().map(|p| p.exemplar_ns))
            .max()
            .unwrap_or(0);
        let mut header = format!("{:<10} {:>7} {:>9}  ", "cluster", "members", "exemplar");
        for col in &cols {
            let _ = write!(header, "{:>9}", crate::report::truncate_label(col, 9));
        }
        out.push_str(&header);
        out.push('\n');
        for (i, cl) in self.clusters.iter().enumerate() {
            let _ = write!(out, "{:<10} {:>7} {:>9}  ", i, cl.members, cl.exemplar);
            for col in &cols {
                let wait: u64 = cl
                    .profile
                    .iter()
                    .filter(|p| p.label == *col)
                    .map(|p| p.exemplar_ns)
                    .sum();
                let class = cl
                    .profile
                    .iter()
                    .filter(|p| p.label == *col && p.exemplar_ns > 0)
                    .max_by_key(|p| p.exemplar_ns)
                    .map(|p| &p.class[..1])
                    .unwrap_or("-");
                let _ = write!(out, "{:>8}{}", heat_glyph(wait, max_cell), class);
            }
            out.push('\n');
        }
        out.push_str("  (heat: per-section exemplar wait, log scale; letter: dominant class — l=late-sender/receiver, c=coll-wait)\n");

        let _ = writeln!(
            out,
            "\ntop comm edges by bytes (showing {} of {} kept; {} evictions — {}):",
            self.edges.len().min(10),
            self.edges.len(),
            self.dropped_edges,
            if self.dropped_edges == 0 {
                "exact matrix"
            } else {
                "lighter tail dropped"
            }
        );
        for e in self.edges.iter().take(10) {
            let _ = writeln!(
                out,
                "  {:>6} -> {:<6} {:>12} B in {:>8} msgs{}",
                e.src,
                e.dst,
                e.bytes,
                e.msgs,
                if e.err_bytes > 0 {
                    format!("  (+<= {} B inherited)", e.err_bytes)
                } else {
                    String::new()
                }
            );
        }

        // Eq. 6 speedup bounds from checkpoint presence (rank-summed
        // exclusive section time), plus the streaming CPL bound.
        if seq_total_secs > 0.0 && self.nranks > 0 {
            let totals = self.timeline.section_totals();
            let mut rows: Vec<(String, f64)> = totals
                .iter()
                .filter(|(l, _)| l.as_str() != crate::section::MPI_MAIN)
                .filter(|(_, ws)| ws.time_ns as f64 / self.nranks as f64 >= 1.0)
                .map(|(l, ws)| {
                    let own = ws.time_ns as f64 / 1e9 / self.nranks as f64;
                    (l.clone(), seq_total_secs / own)
                })
                .collect();
            rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            let _ = writeln!(out, "\nEq. 6 speedup bounds from summarized presence:");
            for (label, bound) in rows.iter().take(6) {
                let _ = writeln!(
                    out,
                    "  S <= {:>10.2}  limited by {}",
                    bound,
                    crate::report::truncate_label(label, 32)
                );
            }
            for (label, ws) in totals.iter() {
                if label.as_str() != crate::section::MPI_MAIN
                    && (ws.time_ns as f64 / self.nranks as f64) < 1.0
                {
                    let _ = writeln!(
                        out,
                        "  S <= (negligible presence: unbounded)  {}",
                        crate::report::truncate_label(label, 32)
                    );
                }
            }
            let cpl = (self.cpl_lower_bound_ns as f64 / 1e9).max(1e-12);
            let _ = writeln!(
                out,
                "critical path (streaming lower bound): CPL >= {:.4} s, so S <= T_seq/CPL <= {:.2}",
                self.cpl_lower_bound_ns as f64 / 1e9,
                seq_total_secs / cpl
            );
        }
        out
    }

    /// Deterministic JSON `summary` block (validates under
    /// `mpisim::jsoncheck`; byte-identical across engines and seeds).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"mpisim-summary-v1\"");
        let _ = write!(
            out,
            ",\"nranks\":{},\"makespan_ns\":{},\"cpl_lower_bound_ns\":{},\"state_bytes\":{}",
            self.nranks, self.makespan_ns, self.cpl_lower_bound_ns, self.state_bytes
        );
        let _ = write!(out, ",\"quantile_rel_err\":{QUANTILE_REL_ERR}");
        out.push_str(",\"sections\":[");
        for (i, s) in self.sections.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"label\":{},\"waits\":{{\"late_sender_ns\":{},\"late_receiver_ns\":{},\"coll_wait_ns\":{}}},\"wait\":{},\"compute\":{}}}",
                json_str(&s.label),
                s.waits.late_sender_ns,
                s.waits.late_receiver_ns,
                s.waits.coll_wait_ns,
                sketch_json(&s.wait_sketch),
                sketch_json(&s.compute_sketch)
            );
        }
        let _ = write!(
            out,
            "],\"clusters\":{{\"budget\":{},\"dropped_clusters\":{},\"other_members\":{},\"groups\":[",
            CLUSTER_BUDGET, self.dropped_clusters, self.other_members
        );
        for (i, c) in self.clusters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"fingerprint\":\"{:016x}\",\"members\":{},\"exemplar_rank\":{},\"profile\":[",
                c.fingerprint, c.members, c.exemplar
            );
            for (j, p) in c.profile.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"label\":{},\"class\":\"{}\",\"bucket\":{},\"exemplar_ns\":{}}}",
                    json_str(&p.label),
                    p.class,
                    p.bucket,
                    p.exemplar_ns
                );
            }
            out.push_str("]}");
        }
        let _ = write!(
            out,
            "]}},\"edges\":{{\"budget\":{},\"dropped_edges\":{},\"top\":[",
            EDGE_BUDGET, self.dropped_edges
        );
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"src\":{},\"dst\":{},\"msgs\":{},\"bytes\":{},\"err_bytes\":{}}}",
                e.src, e.dst, e.msgs, e.bytes, e.err_bytes
            );
        }
        let _ = write!(
            out,
            "]}},\"checkpoints\":{{\"cadence_ns\":{},\"rows\":[",
            self.checkpoint_cadence_ns
        );
        for (i, w) in self.timeline.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"start_ns\":{},\"end_ns\":{},\"sections\":[",
                w.start_ns, w.end_ns
            );
            for (j, (label, ws)) in w.sections.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"label\":{},\"time_ns\":{},\"late_sender_ns\":{},\"coll_wait_ns\":{},\"transfer_ns\":{},\"sent_msgs\":{},\"sent_bytes\":{},\"recv_msgs\":{},\"recv_bytes\":{},\"coll_exits\":{}}}",
                    json_str(label),
                    ws.time_ns,
                    ws.late_sender_ns,
                    ws.coll_wait_ns,
                    ws.transfer_ns,
                    ws.sent_msgs,
                    ws.sent_bytes,
                    ws.recv_msgs,
                    ws.recv_bytes,
                    ws.coll_exits
                );
            }
            out.push_str("]}");
        }
        out.push_str("]}}");
        out
    }
}

fn sketch_json(s: &QuantileSketch) -> String {
    let min = if s.total == 0 { 0 } else { s.min_ns };
    format!(
        "{{\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"max_ns\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{}}}",
        s.total,
        s.sum_ns,
        min,
        s.max_ns,
        s.quantile(0.5),
        s.quantile(0.9),
        s.quantile(0.99)
    )
}

/// Intensity glyph on a log scale relative to the largest cell.
fn heat_glyph(ns: u64, max_ns: u64) -> char {
    const GLYPHS: [char; 9] = [
        ' ', '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    if ns == 0 || max_ns == 0 {
        return GLYPHS[0];
    }
    let frac = ((ns as f64).ln() / (max_ns as f64).ln()).clamp(0.0, 1.0);
    GLYPHS[1 + (frac * 7.0).round() as usize]
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SectionRuntime, VerifyMode};
    use mpisim::{Src, TagSel, WorldBuilder};

    fn straggler_summary() -> RunSummary {
        // Two behavior groups: ranks 0-3 advance 1 s then barrier (they
        // wait ~2 s); ranks 4-7 advance 3 s (no wait).
        let summary = SummaryTool::new();
        WorldBuilder::new(8)
            .tool(summary.clone())
            .run(|p| {
                let world = p.world();
                if p.world_rank() < 4 {
                    p.advance_secs(1.0);
                } else {
                    p.advance_secs(3.0);
                }
                world.barrier(p);
            })
            .unwrap();
        summary.freeze()
    }

    #[test]
    fn clusters_separate_behavior_groups() {
        let s = straggler_summary();
        assert_eq!(s.clusters.len(), 2, "{:?}", s.clusters);
        assert_eq!(s.dropped_clusters, 0);
        assert_eq!(s.clusters[0].members + s.clusters[1].members, 8);
        // Largest-first ordering with exemplar = smallest member.
        assert_eq!(s.clusters[0].members, 4);
        let exemplars: Vec<usize> = s.clusters.iter().map(|c| c.exemplar).collect();
        assert!(
            exemplars.contains(&0) && exemplars.contains(&4),
            "{exemplars:?}"
        );
    }

    #[test]
    fn coll_wait_totals_and_cpl_bound() {
        let s = straggler_summary();
        let main = s
            .sections
            .iter()
            .find(|x| x.label == crate::section::MPI_MAIN)
            .unwrap();
        // 4 early ranks waited ~2 s each.
        let cw = main.waits.coll_wait_ns as f64 / 1e9;
        assert!((7.8..8.6).contains(&cw), "coll wait {cw}");
        assert_eq!(main.waits.late_sender_ns, 0);
        // The straggler never waited: CPL >= its full ~3 s runtime.
        let cpl = s.cpl_lower_bound_ns as f64 / 1e9;
        assert!(cpl >= 2.9, "cpl lower bound {cpl}");
        assert!(s.cpl_lower_bound_ns <= s.makespan_ns);
    }

    #[test]
    fn late_sender_matches_classifier() {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let summary = SummaryTool::new();
        let rec = crate::CommRecorder::new();
        let s = sections.clone();
        WorldBuilder::new(2)
            .tool(sections.clone())
            .tool(summary.clone())
            .tool(rec.clone())
            .run(move |p| {
                let world = p.world();
                s.scoped(p, &world, "PIPE", |p| {
                    let world = p.world();
                    if p.world_rank() == 0 {
                        let _ = world.recv::<u8>(p, Src::Rank(1), TagSel::Any);
                    } else {
                        p.advance_secs(3.0);
                        world.send(p, 0, 0, &[1u8]);
                    }
                });
            })
            .unwrap();
        let sum = summary.freeze();
        let exact = crate::classify(&rec.freeze());
        let pipe = sum.sections.iter().find(|x| x.label == "PIPE").unwrap();
        assert_eq!(pipe.waits, *exact.per_section.get("PIPE").unwrap());
        // The one wait shows up in the sketch with exact sum.
        assert_eq!(pipe.wait_sketch.total, 1);
        assert_eq!(pipe.wait_sketch.sum_ns as u64, pipe.waits.late_sender_ns);
    }

    #[test]
    fn edges_exact_when_under_budget() {
        let summary = SummaryTool::new();
        WorldBuilder::new(3)
            .tool(summary.clone())
            .run(|p| {
                let world = p.world();
                let me = p.world_rank();
                if me == 0 {
                    world.send(p, 1, 0, &[0u8; 64]);
                    world.send(p, 2, 0, &[0u8; 16]);
                    world.send(p, 1, 0, &[0u8; 64]);
                } else {
                    let _ = world.recv::<u8>(p, Src::Rank(0), TagSel::Any);
                    if me == 1 {
                        let _ = world.recv::<u8>(p, Src::Rank(0), TagSel::Any);
                    }
                }
                world.barrier(p);
            })
            .unwrap();
        let s = summary.freeze();
        assert_eq!(s.dropped_edges, 0);
        assert_eq!(s.edges.len(), 2);
        assert_eq!((s.edges[0].src, s.edges[0].dst), (0, 1));
        assert_eq!(s.edges[0].bytes, 128);
        assert_eq!(s.edges[0].msgs, 2);
        assert_eq!((s.edges[1].src, s.edges[1].dst), (0, 2));
    }

    #[test]
    fn render_and_json_are_wellformed() {
        let s = straggler_summary();
        let text = s.render(4.0);
        assert!(text.contains("bounded-memory run summary"), "{text}");
        assert!(text.contains("rank equivalence clusters"), "{text}");
        assert!(text.contains("CPL >="), "{text}");
        let json = s.to_json();
        assert!(json.contains("\"schema\":\"mpisim-summary-v1\""));
        assert!(json.contains("\"dropped_edges\":0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        mpisim::jsoncheck::assert_json(&json, "summary json");
    }

    #[test]
    fn checkpoint_cadence_doubles_not_rows() {
        let mut ck = Checkpoints::default();
        // Spans far beyond the base window force cadence doubling.
        ck.span(0, 40_000_000_000, 0, |cell, ns| cell.time_ns += ns);
        assert!(ck.rows.len() <= 2 * CHECKPOINT_ROW_BUDGET);
        assert!(ck.cadence_ns > CHECKPOINT_BASE_CADENCE_NS);
        let total: u64 = ck
            .rows
            .iter()
            .flat_map(|r| r.values())
            .map(|c| c.time_ns)
            .sum();
        assert_eq!(total, 40_000_000_000);
    }
}
