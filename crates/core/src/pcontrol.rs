//! An IPM-style `MPI_Pcontrol` phase adapter — the related-work comparison
//! of §6.
//!
//! IPM outlines phases by overloading `MPI_Pcontrol(level)`: a positive
//! level opens "phase `level`", the matching negative level closes it. The
//! paper's criticism: "as the Pcontrol semantic is not defined by the MPI
//! standard, actions (enter and leave) have to be manually encoded and
//! therefore dependent from the target tool."
//!
//! [`PcontrolAdapter`] makes that comparison concrete: it is an `mpisim`
//! tool that decodes exactly this convention and forwards it into a
//! [`SectionRuntime`], so Pcontrol-instrumented code gets section profiles
//! too — while exhibiting the limitations the paper lists: integer levels
//! instead of semantic labels, no communicator scoping (everything lands
//! on the world communicator), and no tool-portable meaning.

use crate::section::SectionRuntime;
use mpisim::{Comm, MpiEvent, Proc, Tool};
use parking_lot::Mutex;
use std::sync::Arc;

/// Decodes IPM-convention `MPI_Pcontrol` calls into world-communicator
/// sections named `PCONTROL_<level>`.
pub struct PcontrolAdapter {
    runtime: Arc<SectionRuntime>,
    /// World size, learnt at Init (Pcontrol itself carries no comm info —
    /// one of the deficiencies the paper points out).
    world_size: Mutex<usize>,
}

impl PcontrolAdapter {
    /// Wrap a section runtime.
    pub fn new(runtime: Arc<SectionRuntime>) -> Arc<PcontrolAdapter> {
        Arc::new(PcontrolAdapter {
            runtime,
            world_size: Mutex::new(0),
        })
    }

    /// The label synthesized for a level.
    pub fn label_for(level: i32) -> String {
        format!("PCONTROL_{}", level.abs())
    }
}

impl Tool for PcontrolAdapter {
    fn on_event(&self, world_rank: usize, event: &MpiEvent) {
        match event {
            MpiEvent::Init { size, .. } => {
                *self.world_size.lock() = *size;
            }
            MpiEvent::Pcontrol { level, time } => {
                let size = *self.world_size.lock();
                match level.cmp(&0) {
                    std::cmp::Ordering::Greater => self.runtime.enter_world_section(
                        world_rank,
                        size,
                        &Self::label_for(*level),
                        *time,
                    ),
                    std::cmp::Ordering::Less => self.runtime.exit_world_section(
                        world_rank,
                        size,
                        &Self::label_for(*level),
                        *time,
                    ),
                    // Level 0: IPM's "disable" — ignored here.
                    std::cmp::Ordering::Equal => {}
                }
            }
            _ => {}
        }
    }
}

/// Convenience for instrumenting code the IPM way.
pub fn mpi_pcontrol(p: &Proc, _comm: &Comm, level: i32) {
    // The comm argument is deliberately unused: MPI_Pcontrol has no
    // communicator parameter — the point of the comparison.
    p.pcontrol(level);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SectionProfiler, VerifyMode};
    use mpisim::WorldBuilder;

    #[test]
    fn pcontrol_phases_show_up_as_sections() {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let profiler = SectionProfiler::new();
        sections.attach(profiler.clone());
        let adapter = PcontrolAdapter::new(sections.clone());
        WorldBuilder::new(3)
            .tool(sections.clone())
            .tool(adapter)
            .run(|p| {
                p.pcontrol(1); // open phase 1
                p.advance_secs(2.0);
                p.pcontrol(-1); // close phase 1
                p.pcontrol(0); // IPM "off" — no effect
                p.pcontrol(7);
                p.advance_secs(1.0);
                p.pcontrol(-7);
            })
            .unwrap();
        let profile = profiler.snapshot();
        let ph1 = profile.get_world("PCONTROL_1").expect("phase 1 profiled");
        assert_eq!(ph1.instances, 1);
        assert!((ph1.total_own_secs - 6.0).abs() < 1e-9); // 3 ranks x 2 s
        let ph7 = profile.get_world("PCONTROL_7").expect("phase 7 profiled");
        assert!((ph7.total_own_secs - 3.0).abs() < 1e-9);
    }

    #[test]
    fn mismatched_pcontrol_nesting_is_caught() {
        // The section runtime's nesting check still protects Pcontrol
        // users: closing the wrong level aborts.
        let sections = SectionRuntime::new(VerifyMode::Off);
        let adapter = PcontrolAdapter::new(sections.clone());
        let result = WorldBuilder::new(1)
            .tool(sections.clone())
            .tool(adapter)
            .run(|p| {
                p.pcontrol(1);
                p.pcontrol(2);
                p.pcontrol(-1); // wrong: 2 is innermost
            });
        assert!(result.is_err());
    }

    #[test]
    fn labels() {
        assert_eq!(PcontrolAdapter::label_for(3), "PCONTROL_3");
        assert_eq!(PcontrolAdapter::label_for(-3), "PCONTROL_3");
    }
}
