//! Fixed-budget streaming sketches for the bounded-memory summarizer.
//!
//! Two classical data structures back [`crate::summary::SummaryTool`]:
//!
//! * [`QuantileSketch`] — a log-bucketed histogram at 16 sub-buckets per
//!   decade (the fine-grained sibling of [`crate::DurationHistogram`]'s
//!   half-decade buckets). Reporting the geometric midpoint of the bucket
//!   containing a quantile bounds the *relative* error by the half-width
//!   of one bucket: `10^(1/32) - 1 ≈ 7.5%` ([`QUANTILE_REL_ERR`]), the
//!   same guarantee family as DDSketch. Count, sum, min and max survive
//!   exactly, so whole-run totals remain comparable bit-for-bit with the
//!   exact classifier. Memory is a constant ~1.7 KB per sketch no matter
//!   how many events flow through.
//!
//! * [`SpaceSaving`] — the Metwally et al. heavy-hitter summary: at most
//!   `cap` keyed counters; an unseen key evicts the lightest entry and
//!   inherits its weight as a recorded overestimate (`err`). Every
//!   eviction is counted, so downstream reports can state exactly how
//!   many distinct keys were forgotten instead of truncating silently.
//!   Eviction victims are chosen by `(weight, key)` order, which keeps
//!   the sketch deterministic for a deterministic input stream.

/// Sub-buckets per decade of the quantile sketch.
const SUB_BUCKETS: usize = 16;

/// Decades covered: 1 ns up to 10^13 ns (~2.8 virtual hours); larger
/// durations clamp into the last bucket.
const DECADES: usize = 13;

/// Total bucket count of one [`QuantileSketch`].
pub const QUANTILE_BUCKETS: usize = SUB_BUCKETS * DECADES;

/// Documented worst-case relative error of [`QuantileSketch::quantile`]
/// for durations inside the covered range: `10^(1/32) - 1`.
pub const QUANTILE_REL_ERR: f64 = 0.0747;

/// Bucket index of a duration: `floor(16 * log10(ns))`, clamped.
fn bucket_of(ns: u64) -> usize {
    if ns <= 1 {
        return 0;
    }
    let idx = (SUB_BUCKETS as f64 * (ns as f64).log10()).floor() as isize;
    idx.clamp(0, QUANTILE_BUCKETS as isize - 1) as usize
}

/// Geometric midpoint (ns) of bucket `i`: `10^((i + 0.5) / 16)`.
fn bucket_mid_ns(i: usize) -> u64 {
    10f64.powf((i as f64 + 0.5) / SUB_BUCKETS as f64).round() as u64
}

/// A fixed-budget log-bucketed quantile sketch over durations (ns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileSketch {
    counts: [u64; QUANTILE_BUCKETS],
    /// Exact event count.
    pub total: u64,
    /// Exact sum of all recorded durations, ns.
    pub sum_ns: u128,
    /// Exact minimum (`u64::MAX` while empty).
    pub min_ns: u64,
    /// Exact maximum.
    pub max_ns: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch {
            counts: [0; QUANTILE_BUCKETS],
            total: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

impl QuantileSketch {
    /// Fold one duration in.
    pub fn record(&mut self, ns: u64) {
        self.counts[bucket_of(ns)] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Estimated `q`-quantile in ns, within [`QUANTILE_REL_ERR`] of the
    /// exact order statistic for in-range durations. The estimate is
    /// clamped to the exact `[min, max]`, so degenerate distributions
    /// (single value, empty) come back exact.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_mid_ns(i).clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }

    /// Exact mean in ns (0 while empty).
    pub fn mean_ns(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.total as f64
        }
    }

    /// Fold another sketch in (bucket-wise sum; exact fields combine).
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// One heavy-hitter entry: a keyed weight with a secondary count and the
/// overestimate inherited from evictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeavyHitter {
    /// Caller-packed key (the summarizer packs `(src << 32) | dst`).
    pub key: u64,
    /// Ranking weight (bytes for comm edges). Overestimated by at most
    /// `err` after evictions.
    pub weight: u64,
    /// Secondary counter (messages), carried alongside but reset when an
    /// entry is taken over — approximate after any eviction of this key.
    pub count: u64,
    /// Upper bound on how much of `weight` belongs to evicted keys.
    pub err: u64,
}

/// Metwally-style space-saving top-k sketch over `u64` keys.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    cap: usize,
    entries: Vec<HeavyHitter>,
    /// Number of evictions performed — the explicit count of forgotten
    /// keys a report must surface (0 means the table is exact).
    pub evictions: u64,
}

impl SpaceSaving {
    /// An empty sketch holding at most `cap` keys.
    pub fn new(cap: usize) -> SpaceSaving {
        SpaceSaving {
            cap: cap.max(1),
            entries: Vec::new(),
            evictions: 0,
        }
    }

    /// Keys currently tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no key has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fold `weight`/`count` into `key`, evicting the lightest entry if
    /// the table is full and `key` is unseen.
    pub fn record(&mut self, key: u64, weight: u64, count: u64) {
        self.fold(HeavyHitter {
            key,
            weight,
            count,
            err: 0,
        });
    }

    fn fold(&mut self, item: HeavyHitter) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.key == item.key) {
            e.weight += item.weight;
            e.count += item.count;
            e.err += item.err;
            return;
        }
        if self.entries.len() < self.cap {
            self.entries.push(item);
            return;
        }
        let victim = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| (e.weight, e.key))
            .map(|(i, _)| i)
            .expect("cap >= 1");
        self.evictions += 1;
        let base = self.entries[victim].weight;
        self.entries[victim] = HeavyHitter {
            key: item.key,
            weight: base + item.weight,
            count: item.count,
            err: base + item.err,
        };
    }

    /// Fold another sketch in, heaviest entries first (so the merge keeps
    /// the globally heavy keys), accumulating its eviction count.
    pub fn absorb(&mut self, other: &SpaceSaving) {
        let mut items = other.entries.clone();
        items.sort_unstable_by_key(|e| (std::cmp::Reverse(e.weight), e.key));
        for item in items {
            self.fold(item);
        }
        self.evictions += other.evictions;
    }

    /// Entries sorted heaviest-first (ties broken by key).
    pub fn top(&self) -> Vec<HeavyHitter> {
        let mut items = self.entries.clone();
        items.sort_unstable_by_key(|e| (std::cmp::Reverse(e.weight), e.key));
        items
    }

    /// Bytes budgeted for this sketch (capacity, not occupancy).
    pub fn budget_bytes(&self) -> usize {
        std::mem::size_of::<SpaceSaving>() + self.cap * std::mem::size_of::<HeavyHitter>()
    }

    /// Bytes actually held by live entries.
    pub fn state_bytes(&self) -> usize {
        std::mem::size_of::<SpaceSaving>() + self.entries.len() * std::mem::size_of::<HeavyHitter>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_clamped() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert!(bucket_of(100) > bucket_of(50));
        assert_eq!(bucket_of(u64::MAX), QUANTILE_BUCKETS - 1);
        // Non-decreasing everywhere (integer rounding flattens the
        // sub-10ns buckets), strictly increasing once a bucket spans
        // more than 1 ns.
        for i in 1..QUANTILE_BUCKETS {
            assert!(bucket_mid_ns(i) >= bucket_mid_ns(i - 1), "bucket {i}");
        }
        for i in SUB_BUCKETS + 1..QUANTILE_BUCKETS {
            assert!(bucket_mid_ns(i) > bucket_mid_ns(i - 1), "bucket {i}");
        }
    }

    #[test]
    fn quantiles_meet_documented_error() {
        // Log-uniform durations spanning six decades: the adversarial
        // shape for a log-bucketed sketch.
        let mut sk = QuantileSketch::default();
        let mut vals: Vec<u64> = Vec::new();
        let mut x = 37u64;
        for i in 0..5000u64 {
            // Deterministic pseudo-random walk over [10^2, 10^8).
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
            let exp = 2.0 + (x % 60_000) as f64 / 10_000.0;
            let v = 10f64.powf(exp) as u64;
            vals.push(v);
            sk.record(v);
        }
        vals.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let exact = vals[((q * vals.len() as f64).ceil() as usize - 1).min(vals.len() - 1)];
            let est = sk.quantile(q);
            let rel = (est as f64 - exact as f64).abs() / exact as f64;
            assert!(
                rel <= QUANTILE_REL_ERR + 0.005,
                "q={q}: est {est} vs exact {exact} (rel {rel:.4})"
            );
        }
    }

    #[test]
    fn exact_aggregates_and_degenerate_quantiles() {
        let mut sk = QuantileSketch::default();
        assert_eq!(sk.quantile(0.5), 0);
        for _ in 0..10 {
            sk.record(12_345);
        }
        // A single distinct value is reported exactly via the min/max clamp.
        assert_eq!(sk.quantile(0.5), 12_345);
        assert_eq!(sk.quantile(0.99), 12_345);
        assert_eq!(sk.total, 10);
        assert_eq!(sk.sum_ns, 123_450);
        assert_eq!(sk.min_ns, 12_345);
        assert_eq!(sk.max_ns, 12_345);
    }

    #[test]
    fn merge_is_sum() {
        let mut a = QuantileSketch::default();
        let mut b = QuantileSketch::default();
        a.record(10);
        b.record(1_000_000);
        b.record(20);
        let mut c = QuantileSketch::default();
        for v in [10, 20, 1_000_000] {
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a, c);
    }

    #[test]
    fn space_saving_is_exact_under_capacity() {
        let mut ss = SpaceSaving::new(8);
        for (k, w) in [(1u64, 100u64), (2, 50), (3, 10), (1, 5)] {
            ss.record(k, w, 1);
        }
        assert_eq!(ss.evictions, 0);
        let top = ss.top();
        assert_eq!(top.len(), 3);
        assert_eq!((top[0].key, top[0].weight, top[0].count), (1, 105, 2));
        assert_eq!(top[1].key, 2);
        assert!(top.iter().all(|e| e.err == 0));
    }

    #[test]
    fn space_saving_counts_evictions_and_keeps_heavy_keys() {
        let mut ss = SpaceSaving::new(2);
        ss.record(1, 1000, 1);
        ss.record(2, 900, 1);
        ss.record(3, 1, 1); // evicts key 2? no — evicts the lightest (2=900 vs 1=1000): victim is 2
        assert_eq!(ss.evictions, 1);
        // The takeover inherits the victim's weight as err.
        let e3 = ss.top().into_iter().find(|e| e.key == 3).unwrap();
        assert_eq!(e3.weight, 901);
        assert_eq!(e3.err, 900);
        // A genuinely heavy late arrival still surfaces.
        ss.record(4, 5000, 1);
        assert!(ss.top()[0].weight >= 5000);
        assert_eq!(ss.evictions, 2);
    }

    #[test]
    fn absorb_merges_in_weight_order() {
        let mut a = SpaceSaving::new(4);
        a.record(1, 10, 1);
        let mut b = SpaceSaving::new(4);
        b.record(1, 5, 1);
        b.record(2, 99, 1);
        a.absorb(&b);
        assert_eq!(a.evictions, 0);
        let top = a.top();
        assert_eq!((top[0].key, top[0].weight), (2, 99));
        assert_eq!((top[1].key, top[1].weight, top[1].count), (1, 15, 2));
    }
}
