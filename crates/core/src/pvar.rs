//! An MPI_T-style performance-variable (pvar) registry.
//!
//! Real MPI tools read runtime-internal counters through the MPI_T pvar
//! interface (`MPI_T_pvar_get_num`, `..._read`); the paper's whole argument
//! (§2, Eq. 6) is that per-section wall time alone cannot say *why* a
//! section caps speedup — communication volume and waiting time can.
//! [`PvarRegistry`] is the in-process equivalent: an [`mpisim::Tool`] that
//! maintains, per rank,
//!
//! * point-to-point message and byte counters (send and receive side),
//! * collective call counters and time spent inside collective rendezvous,
//! * time spent blocked in receives,
//! * a per-(source, destination) world-rank **communication matrix**,
//!
//! and snapshots every counter at section enter/exit (driven by the
//! PMPI-level `SectionEnter`/`SectionLeave` events the section runtime
//! raises), so every metric is attributable to the section it occurred in.
//!
//! The registry only observes — it never advances virtual time — so runs
//! are bit-identical with and without it attached.

use crate::profiler::SectionKey;
use mpisim::diag::json_str;
use mpisim::{CommId, MpiEvent, Tool};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::Arc;

const SHARDS: usize = 64;

/// The raw per-rank counters (a pvar "session" in MPI_T terms). All time
/// values are virtual nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Point-to-point messages sent (including the send half of sendrecv).
    pub sent_msgs: u64,
    /// Logical payload bytes sent point-to-point.
    pub sent_bytes: u64,
    /// Point-to-point messages received.
    pub recv_msgs: u64,
    /// Logical payload bytes received point-to-point.
    pub recv_bytes: u64,
    /// MPI-level collective calls entered (barrier, bcast, reduce, ...).
    pub coll_calls: u64,
    /// Virtual time spent in blocking receives (post to completion).
    pub recv_wait_ns: u64,
    /// Virtual time spent inside collective rendezvous (entry to common
    /// exit: synchronization wait plus the operation's modelled cost).
    pub coll_wait_ns: u64,
}

impl Counters {
    /// Component-wise difference `self - earlier` (all counters are
    /// monotonic, so this is the activity between two snapshots).
    fn since(&self, earlier: &Counters) -> Counters {
        Counters {
            sent_msgs: self.sent_msgs - earlier.sent_msgs,
            sent_bytes: self.sent_bytes - earlier.sent_bytes,
            recv_msgs: self.recv_msgs - earlier.recv_msgs,
            recv_bytes: self.recv_bytes - earlier.recv_bytes,
            coll_calls: self.coll_calls - earlier.coll_calls,
            recv_wait_ns: self.recv_wait_ns - earlier.recv_wait_ns,
            coll_wait_ns: self.coll_wait_ns - earlier.coll_wait_ns,
        }
    }

    fn add(&mut self, other: &Counters) {
        self.sent_msgs += other.sent_msgs;
        self.sent_bytes += other.sent_bytes;
        self.recv_msgs += other.recv_msgs;
        self.recv_bytes += other.recv_bytes;
        self.coll_calls += other.coll_calls;
        self.recv_wait_ns += other.recv_wait_ns;
        self.coll_wait_ns += other.coll_wait_ns;
    }

    /// Blocked-receive seconds.
    pub fn recv_wait_secs(&self) -> f64 {
        self.recv_wait_ns as f64 / 1e9
    }

    /// Collective-rendezvous seconds.
    pub fn coll_wait_secs(&self) -> f64 {
        self.coll_wait_ns as f64 / 1e9
    }

    fn to_json(self) -> String {
        format!(
            "{{\"sent_msgs\":{},\"sent_bytes\":{},\"recv_msgs\":{},\"recv_bytes\":{},\
             \"coll_calls\":{},\"recv_wait_ns\":{},\"coll_wait_ns\":{}}}",
            self.sent_msgs,
            self.sent_bytes,
            self.recv_msgs,
            self.recv_bytes,
            self.coll_calls,
            self.recv_wait_ns,
            self.coll_wait_ns
        )
    }
}

/// Most communication-matrix cells emitted by [`PvarSnapshot::to_json`]:
/// enough for every dense matrix up to p = 64 to serialize whole, while a
/// 16k-rank halo exchange (~65k cells) keeps only its heaviest traffic
/// with an explicit dropped-cell count.
pub const MATRIX_JSON_CAP: usize = 4096;

/// One cell of the communication matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatrixCell {
    /// Messages sent from the row rank to the column rank.
    pub msgs: u64,
    /// Logical bytes sent from the row rank to the column rank.
    pub bytes: u64,
}

/// Per-rank live state.
#[derive(Default)]
struct RankPvars {
    counters: Counters,
    /// Destination world rank -> traffic from this rank.
    matrix: HashMap<usize, MatrixCell>,
    /// Open sections per communicator, each carrying the counter snapshot
    /// taken at enter (attribution baseline).
    stacks: HashMap<CommId, Vec<(Arc<str>, Counters)>>,
    /// Virtual time at which the current blocking receive was posted.
    recv_posted_ns: Option<u64>,
    /// Virtual time at which the current collective rendezvous was entered.
    coll_entered_ns: Option<u64>,
}

/// The pvar registry tool. Attach with
/// [`WorldBuilder::tool`](mpisim::WorldBuilder::tool) (alongside the
/// section runtime, so section enter/leave events reach it), run, then
/// [`PvarRegistry::snapshot`].
#[derive(Default)]
pub struct PvarRegistry {
    shards: Vec<Mutex<HashMap<usize, RankPvars>>>,
    /// Per-(comm, label) communication totals, folded in at section leave.
    sections: Mutex<BTreeMap<SectionKey, Counters>>,
    nranks: Mutex<usize>,
}

impl PvarRegistry {
    /// A fresh registry behind an `Arc`, ready to attach.
    pub fn new() -> Arc<PvarRegistry> {
        Arc::new(PvarRegistry {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            sections: Mutex::new(BTreeMap::new()),
            nranks: Mutex::new(0),
        })
    }

    fn with_rank<R>(&self, rank: usize, f: impl FnOnce(&mut RankPvars) -> R) -> R {
        let mut shard = self.shards[rank % SHARDS].lock();
        f(shard.entry(rank).or_default())
    }

    /// Fold the delta since `snap` into the per-section totals.
    fn attribute(&self, comm: CommId, label: &str, now: &Counters, snap: &Counters) {
        let delta = now.since(snap);
        let mut sections = self.sections.lock();
        sections
            .entry(SectionKey {
                comm,
                label: label.to_string(),
            })
            .or_default()
            .add(&delta);
    }

    /// Discard everything collected so far, returning the registry to its
    /// freshly-built state. A process that runs several worlds against one
    /// registry (the schedule explorer re-executing a program) must reset
    /// between runs, or each snapshot folds in every earlier run's
    /// counters.
    pub fn reset(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
        self.sections.lock().clear();
        *self.nranks.lock() = 0;
    }

    /// Freeze the collected counters into an immutable snapshot.
    pub fn snapshot(&self) -> PvarSnapshot {
        let nranks = *self.nranks.lock();
        let mut per_rank = vec![Counters::default(); nranks];
        let mut matrix: BTreeMap<(usize, usize), MatrixCell> = BTreeMap::new();
        for shard in &self.shards {
            let shard = shard.lock();
            for (&rank, rp) in shard.iter() {
                if rank < per_rank.len() {
                    per_rank[rank] = rp.counters;
                }
                for (&dst, cell) in &rp.matrix {
                    let entry = matrix.entry((rank, dst)).or_default();
                    entry.msgs += cell.msgs;
                    entry.bytes += cell.bytes;
                }
            }
        }
        PvarSnapshot {
            nranks,
            per_rank,
            matrix,
            per_section: self.sections.lock().clone(),
        }
    }
}

impl Tool for PvarRegistry {
    fn on_event(&self, world_rank: usize, event: &MpiEvent) {
        match event {
            MpiEvent::Init { size, .. } => {
                let mut n = self.nranks.lock();
                *n = (*n).max(*size);
                // The implicit MPI_MAIN section opens here; the section
                // runtime does not re-raise it at PMPI level, so open the
                // attribution frame from Init directly.
                self.with_rank(world_rank, |rp| {
                    let snap = rp.counters;
                    rp.stacks
                        .entry(CommId::WORLD)
                        .or_default()
                        .push((Arc::from(crate::section::MPI_MAIN), snap));
                });
            }
            MpiEvent::Finalize { .. } => {
                let frames = self.with_rank(world_rank, |rp| {
                    let now = rp.counters;
                    // Close everything still open (normally just MPI_MAIN).
                    let mut closed = Vec::new();
                    for (comm, stack) in rp.stacks.drain() {
                        for (label, snap) in stack {
                            closed.push((comm, label, now, snap));
                        }
                    }
                    closed
                });
                for (comm, label, now, snap) in frames {
                    self.attribute(comm, &label, &now, &snap);
                }
            }
            MpiEvent::SectionEnter { comm, label, .. } => {
                self.with_rank(world_rank, |rp| {
                    let snap = rp.counters;
                    rp.stacks
                        .entry(*comm)
                        .or_default()
                        .push((label.clone(), snap));
                });
            }
            MpiEvent::SectionLeave { comm, label, .. } => {
                let frame = self.with_rank(world_rank, |rp| {
                    let now = rp.counters;
                    rp.stacks
                        .get_mut(comm)
                        .and_then(|s| s.pop())
                        .map(|(_, snap)| (now, snap))
                });
                if let Some((now, snap)) = frame {
                    self.attribute(*comm, label, &now, &snap);
                }
            }
            MpiEvent::SendEnqueued {
                dst_world, bytes, ..
            } => {
                self.with_rank(world_rank, |rp| {
                    rp.counters.sent_msgs += 1;
                    rp.counters.sent_bytes += bytes;
                    let cell = rp.matrix.entry(*dst_world).or_default();
                    cell.msgs += 1;
                    cell.bytes += bytes;
                });
            }
            MpiEvent::RecvBlocked { time, .. } => {
                self.with_rank(world_rank, |rp| {
                    rp.recv_posted_ns = Some(time.as_nanos());
                });
            }
            MpiEvent::RecvMatched { bytes, .. } => {
                self.with_rank(world_rank, |rp| {
                    rp.counters.recv_msgs += 1;
                    rp.counters.recv_bytes += bytes;
                });
            }
            MpiEvent::CallEnter { call, .. } if call.is_collective() => {
                self.with_rank(world_rank, |rp| rp.counters.coll_calls += 1);
            }
            MpiEvent::CallExit { time, .. } => {
                // A blocking receive completes (clock advanced past the
                // message arrival) at the exit of its enclosing call
                // (Recv, Wait or Sendrecv).
                self.with_rank(world_rank, |rp| {
                    if let Some(posted) = rp.recv_posted_ns.take() {
                        rp.counters.recv_wait_ns += time.as_nanos().saturating_sub(posted);
                    }
                });
            }
            MpiEvent::CollectiveEnter { time, .. } => {
                self.with_rank(world_rank, |rp| {
                    rp.coll_entered_ns = Some(time.as_nanos());
                });
            }
            MpiEvent::CollectiveExit { time, .. } => {
                self.with_rank(world_rank, |rp| {
                    if let Some(entered) = rp.coll_entered_ns.take() {
                        rp.counters.coll_wait_ns += time.as_nanos().saturating_sub(entered);
                    }
                });
            }
            _ => {}
        }
    }
}

/// Immutable post-run view of every pvar.
#[derive(Debug, Clone)]
pub struct PvarSnapshot {
    /// World size.
    pub nranks: usize,
    /// Counter totals per world rank.
    pub per_rank: Vec<Counters>,
    /// Communication matrix: `(src, dst)` world ranks -> traffic. Only
    /// pairs that exchanged at least one message are present.
    pub matrix: BTreeMap<(usize, usize), MatrixCell>,
    /// Per-(comm, label) counter deltas, attributed at section leave.
    pub per_section: BTreeMap<SectionKey, Counters>,
}

impl PvarSnapshot {
    /// Counter totals over all ranks.
    pub fn totals(&self) -> Counters {
        let mut total = Counters::default();
        for c in &self.per_rank {
            total.add(c);
        }
        total
    }

    /// Render the per-section communication table plus per-run totals.
    pub fn render_metrics(&self) -> String {
        let mut out = String::from("communication metrics per section (pvar registry):\n");
        let _ = writeln!(
            out,
            "{:<32} {:>10} {:>12} {:>10} {:>12} {:>8} {:>12} {:>12}",
            "section", "sent", "sent B", "recvd", "recvd B", "colls", "recv-wait s", "coll s"
        );
        out.push_str(&"-".repeat(116));
        out.push('\n');
        for (key, c) in &self.per_section {
            let label = if key.comm == CommId::WORLD {
                key.label.clone()
            } else {
                format!("{} (comm {})", key.label, key.comm.0)
            };
            let _ = writeln!(
                out,
                "{:<32} {:>10} {:>12} {:>10} {:>12} {:>8} {:>12.4} {:>12.4}",
                crate::report::truncate_label(&label, 32),
                c.sent_msgs,
                c.sent_bytes,
                c.recv_msgs,
                c.recv_bytes,
                c.coll_calls,
                c.recv_wait_secs(),
                c.coll_wait_secs(),
            );
        }
        let t = self.totals();
        let _ = writeln!(
            out,
            "\ntotals over {} ranks: {} p2p msgs / {} B sent, {} collective calls, \
             {:.4} s blocked in receives, {:.4} s in collectives",
            self.nranks,
            t.sent_msgs,
            t.sent_bytes,
            t.coll_calls,
            t.recv_wait_secs(),
            t.coll_wait_secs(),
        );
        out
    }

    /// Render the communication matrix (bytes sent, `src` rows by `dst`
    /// columns). Worlds beyond `max_ranks` are summarized as the heaviest
    /// pairs instead of an unreadable wall of columns.
    pub fn render_matrix(&self, max_ranks: usize) -> String {
        let mut out = String::from("communication matrix (bytes, row = sender, col = receiver):\n");
        if self.nranks <= max_ranks {
            let _ = write!(out, "{:>8}", "");
            for dst in 0..self.nranks {
                let _ = write!(out, " {dst:>10}");
            }
            out.push('\n');
            for src in 0..self.nranks {
                let _ = write!(out, "{src:>8}");
                for dst in 0..self.nranks {
                    let bytes = self.matrix.get(&(src, dst)).map(|c| c.bytes).unwrap_or(0);
                    if bytes == 0 {
                        let _ = write!(out, " {:>10}", ".");
                    } else {
                        let _ = write!(out, " {bytes:>10}");
                    }
                }
                out.push('\n');
            }
        } else {
            let mut pairs: Vec<(&(usize, usize), &MatrixCell)> = self.matrix.iter().collect();
            pairs.sort_by(|a, b| b.1.bytes.cmp(&a.1.bytes).then(a.0.cmp(b.0)));
            let shown = pairs.len().min(20);
            let _ = writeln!(
                out,
                "  ({} ranks > {max_ranks}: showing the {shown} heaviest of {} active pairs)",
                self.nranks,
                pairs.len()
            );
            for ((src, dst), cell) in pairs.into_iter().take(shown) {
                let _ = writeln!(
                    out,
                    "  {src:>4} -> {dst:<4} {:>12} B in {:>8} msgs",
                    cell.bytes, cell.msgs
                );
            }
        }
        out
    }

    /// Machine-readable JSON dump (deterministic field and key order).
    /// The communication matrix is capped at [`MATRIX_JSON_CAP`] cells —
    /// beyond that only the heaviest-by-bytes cells are emitted, with
    /// `"matrix_truncated":true` and an exact `"dropped_cells"` count
    /// (dense matrices at large p would otherwise dominate the document
    /// quadratically).
    pub fn to_json(&self) -> String {
        self.to_json_capped(MATRIX_JSON_CAP)
    }

    /// [`PvarSnapshot::to_json`] with an explicit matrix cell cap.
    pub fn to_json_capped(&self, matrix_cap: usize) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"nranks\":{}", self.nranks);
        out.push_str(",\"per_rank\":[");
        for (i, c) in self.per_rank.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&c.to_json());
        }
        let cells: Vec<(&(usize, usize), &MatrixCell)> = if self.matrix.len() <= matrix_cap {
            self.matrix.iter().collect()
        } else {
            // Heaviest cells first, then back to key order for output so
            // the truncated document stays deterministic and diffable.
            let mut by_weight: Vec<(&(usize, usize), &MatrixCell)> = self.matrix.iter().collect();
            by_weight.sort_by_key(|(key, cell)| (std::cmp::Reverse(cell.bytes), **key));
            by_weight.truncate(matrix_cap);
            by_weight.sort_by_key(|(key, _)| **key);
            by_weight
        };
        let dropped_cells = self.matrix.len() - cells.len();
        out.push_str("],\"matrix\":[");
        for (i, ((src, dst), cell)) in cells.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"src\":{src},\"dst\":{dst},\"msgs\":{},\"bytes\":{}}}",
                cell.msgs, cell.bytes
            );
        }
        let _ = write!(
            out,
            "],\"matrix_cells\":{},\"matrix_truncated\":{},\"dropped_cells\":{dropped_cells}",
            self.matrix.len(),
            dropped_cells > 0
        );
        out.push_str(",\"sections\":[");
        for (i, (key, c)) in self.per_section.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"comm\":{},\"label\":{},\"counters\":{}}}",
                key.comm.0,
                json_str(&key.label),
                c.to_json()
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SectionRuntime, VerifyMode};
    use mpisim::{Src, TagSel, WorldBuilder};

    fn ring_run(nranks: usize) -> PvarSnapshot {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let pvar = PvarRegistry::new();
        let s = sections.clone();
        WorldBuilder::new(nranks)
            .tool(sections.clone())
            .tool(pvar.clone())
            .run(move |p| {
                let world = p.world();
                s.scoped(p, &world, "EXCHANGE", |p| {
                    let world = p.world();
                    let next = (p.world_rank() + 1) % p.world_size();
                    let prev = (p.world_rank() + p.world_size() - 1) % p.world_size();
                    world.send(p, next, 0, &[1u64, 2, 3]);
                    let _ = world.recv::<u64>(p, Src::Rank(prev), TagSel::Is(0));
                });
                s.scoped(p, &world, "SYNC", |p| {
                    let world = p.world();
                    world.barrier(p);
                });
            })
            .unwrap();
        pvar.snapshot()
    }

    #[test]
    fn ring_counters_and_matrix() {
        let snap = ring_run(4);
        assert_eq!(snap.nranks, 4);
        let totals = snap.totals();
        assert_eq!(totals.sent_msgs, 4);
        assert_eq!(totals.recv_msgs, 4);
        assert_eq!(totals.sent_bytes, 4 * 24);
        assert_eq!(totals.recv_bytes, 4 * 24);
        assert_eq!(totals.coll_calls, 4); // one barrier per rank
                                          // Ring matrix: each rank sent exactly one 24-byte message to next.
        assert_eq!(snap.matrix.len(), 4);
        assert_eq!(
            snap.matrix.get(&(0, 1)),
            Some(&MatrixCell { msgs: 1, bytes: 24 })
        );
        assert_eq!(
            snap.matrix.get(&(3, 0)),
            Some(&MatrixCell { msgs: 1, bytes: 24 })
        );
    }

    #[test]
    fn reset_isolates_reruns() {
        // One registry, two runs — the explorer's usage pattern. Without a
        // reset the second snapshot folds in the first run's counters;
        // with one it matches a single run exactly.
        let pvar = PvarRegistry::new();
        let run = |pvar: &std::sync::Arc<PvarRegistry>| {
            let sections = SectionRuntime::new(VerifyMode::Active);
            WorldBuilder::new(2)
                .tool(sections)
                .tool(pvar.clone())
                .run(|p| {
                    let world = p.world();
                    if p.world_rank() == 0 {
                        world.send(p, 1, 0, &[1u64]);
                    } else {
                        let _ = world.recv::<u64>(p, Src::Rank(0), TagSel::Is(0));
                    }
                })
                .unwrap();
        };
        run(&pvar);
        let first = pvar.snapshot();
        run(&pvar);
        let polluted = pvar.snapshot();
        assert_eq!(polluted.totals().sent_msgs, 2 * first.totals().sent_msgs);
        pvar.reset();
        run(&pvar);
        let fresh = pvar.snapshot();
        assert_eq!(fresh.totals().sent_msgs, first.totals().sent_msgs);
        assert_eq!(fresh.matrix, first.matrix);
        assert_eq!(fresh.nranks, first.nranks);
    }

    #[test]
    fn sections_attribute_traffic() {
        let snap = ring_run(4);
        let exchange = snap
            .per_section
            .get(&SectionKey {
                comm: CommId::WORLD,
                label: "EXCHANGE".into(),
            })
            .unwrap();
        assert_eq!(exchange.sent_msgs, 4);
        assert_eq!(exchange.coll_calls, 0);
        let sync = snap
            .per_section
            .get(&SectionKey {
                comm: CommId::WORLD,
                label: "SYNC".into(),
            })
            .unwrap();
        assert_eq!(sync.sent_msgs, 0);
        assert_eq!(sync.coll_calls, 4);
        // MPI_MAIN sees everything (it encloses both sections).
        let main = snap
            .per_section
            .get(&SectionKey {
                comm: CommId::WORLD,
                label: crate::section::MPI_MAIN.into(),
            })
            .unwrap();
        assert_eq!(main.sent_msgs, 4);
        assert_eq!(main.coll_calls, 4);
    }

    #[test]
    fn recv_wait_measures_late_sender() {
        let pvar = PvarRegistry::new();
        WorldBuilder::new(2)
            .tool(pvar.clone())
            .run(|p| {
                let world = p.world();
                if p.world_rank() == 0 {
                    // Receiver posts immediately; sender is 2 s late.
                    let _ = world.recv::<u8>(p, Src::Rank(1), TagSel::Any);
                } else {
                    p.advance_secs(2.0);
                    world.send(p, 0, 0, &[9u8]);
                }
            })
            .unwrap();
        let snap = pvar.snapshot();
        // Rank 0 waited at least the 2 s skew.
        assert!(snap.per_rank[0].recv_wait_secs() >= 2.0);
        assert_eq!(snap.per_rank[1].recv_wait_ns, 0);
    }

    #[test]
    fn collective_wait_measures_straggler() {
        let pvar = PvarRegistry::new();
        WorldBuilder::new(2)
            .tool(pvar.clone())
            .run(|p| {
                let world = p.world();
                if p.world_rank() == 1 {
                    p.advance_secs(1.0);
                }
                world.barrier(p);
            })
            .unwrap();
        let snap = pvar.snapshot();
        // Rank 0 arrived first and waited ~1 s for rank 1.
        assert!(snap.per_rank[0].coll_wait_secs() >= 1.0);
        assert!(snap.per_rank[1].coll_wait_secs() < 0.5);
    }

    #[test]
    fn renders_and_json_are_wellformed() {
        let snap = ring_run(3);
        let metrics = snap.render_metrics();
        assert!(metrics.contains("EXCHANGE"), "{metrics}");
        assert!(metrics.contains("totals over 3 ranks"), "{metrics}");
        let matrix = snap.render_matrix(16);
        assert!(matrix.contains("communication matrix"), "{matrix}");
        let wide = snap.render_matrix(2);
        assert!(wide.contains("heaviest"), "{wide}");
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"matrix\":["), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn snapshot_is_deterministic() {
        let a = ring_run(4).to_json();
        let b = ring_run(4).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn matrix_json_caps_at_heaviest_cells() {
        let mut matrix: BTreeMap<(usize, usize), MatrixCell> = BTreeMap::new();
        for src in 0..4 {
            for dst in 0..4 {
                if src != dst {
                    matrix.insert(
                        (src, dst),
                        MatrixCell {
                            msgs: 1,
                            bytes: (src * 10 + dst) as u64,
                        },
                    );
                }
            }
        }
        let snap = PvarSnapshot {
            nranks: 4,
            per_rank: vec![Counters::default(); 4],
            matrix,
            per_section: BTreeMap::new(),
        };
        let full = snap.to_json();
        assert!(full.contains("\"matrix_truncated\":false"), "{full}");
        assert!(full.contains("\"dropped_cells\":0"), "{full}");
        assert_eq!(full.matches("\"src\":").count(), 12);

        let capped = snap.to_json_capped(3);
        assert!(capped.contains("\"matrix_truncated\":true"), "{capped}");
        assert!(capped.contains("\"dropped_cells\":9"), "{capped}");
        assert!(capped.contains("\"matrix_cells\":12"), "{capped}");
        // The three heaviest cells survive, emitted in key order.
        assert_eq!(capped.matches("\"src\":").count(), 3);
        let i30 = capped.find("\"src\":3,\"dst\":0").expect("cell (3,0)");
        let i31 = capped.find("\"src\":3,\"dst\":1").expect("cell (3,1)");
        let i32 = capped.find("\"src\":3,\"dst\":2").expect("cell (3,2)");
        assert!(i30 < i31 && i31 < i32, "{capped}");
        assert_eq!(capped.matches('{').count(), capped.matches('}').count());
        mpisim::jsoncheck::assert_json(&capped, "capped pvar json");
    }
}
