//! Crash/context attribution — the paper's §5.3 debugger scenario: "A
//! debugger would tell you that the bug is in the 'communication' section
//! of 'load-balancing', for example."
//!
//! [`ContextTool`] tracks each rank's currently-open section stack. At any
//! moment — in particular after a rank dies — a debugger (or the launch
//! harness) can ask *where* a rank was, phrased in the program's own
//! semantic vocabulary instead of a call stack.

use crate::tool::{EnterInfo, LeaveInfo, SectionTool};
use mpisim::{CommId, SectionData};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Tracks the open-section stack of every rank (across communicators,
/// interleaved in entry order — the semantic "where is this rank now").
#[derive(Default)]
pub struct ContextTool {
    /// Per rank: the open sections in entry order, with their comm.
    stacks: Mutex<HashMap<usize, Vec<(CommId, String)>>>,
}

impl ContextTool {
    /// A fresh context tool behind an `Arc`, ready to attach.
    pub fn new() -> Arc<ContextTool> {
        Arc::new(ContextTool::default())
    }

    /// The rank's open sections, outermost first (empty if idle/unknown).
    pub fn context_of(&self, world_rank: usize) -> Vec<String> {
        self.stacks
            .lock()
            .get(&world_rank)
            .map(|s| s.iter().map(|(_, l)| l.clone()).collect())
            .unwrap_or_default()
    }

    /// A human-readable location string, e.g.
    /// `"MPI_MAIN > timeloop > LagrangeNodal > CommSBN"`.
    pub fn describe(&self, world_rank: usize) -> String {
        let ctx = self.context_of(world_rank);
        if ctx.is_empty() {
            "outside any section".to_string()
        } else {
            ctx.join(" > ")
        }
    }

    /// Ranks currently inside a section with the given label.
    pub fn ranks_in(&self, label: &str) -> Vec<usize> {
        let stacks = self.stacks.lock();
        let mut out: Vec<usize> = stacks
            .iter()
            .filter(|(_, stack)| stack.iter().any(|(_, l)| l == label))
            .map(|(&r, _)| r)
            .collect();
        out.sort_unstable();
        out
    }
}

impl SectionTool for ContextTool {
    fn on_enter(&self, info: &EnterInfo, _data: &mut SectionData) {
        self.stacks
            .lock()
            .entry(info.world_rank)
            .or_default()
            .push((info.comm, info.label.to_string()));
    }

    fn on_leave(&self, info: &LeaveInfo, _data: &SectionData) {
        let mut stacks = self.stacks.lock();
        if let Some(stack) = stacks.get_mut(&info.world_rank) {
            // Remove the innermost matching frame (sections on different
            // communicators may interleave in global entry order).
            if let Some(pos) = stack
                .iter()
                .rposition(|(c, l)| *c == info.comm && l == &*info.label)
            {
                stack.remove(pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SectionRuntime, VerifyMode};
    use machine::VTime;
    use mpisim::WorldBuilder;

    #[test]
    fn crash_location_is_attributed_to_sections() {
        // Rank 1 dies inside HALO (nested in timeloop); the context tool
        // still holds its semantic location after the run fails.
        let sections = SectionRuntime::new(VerifyMode::Off);
        let context = ContextTool::new();
        sections.attach(context.clone());
        let s = sections.clone();
        let result = WorldBuilder::new(2).tool(sections.clone()).run(move |p| {
            let world = p.world();
            s.enter(p, &world, "timeloop");
            s.enter(p, &world, "HALO");
            if p.world_rank() == 1 {
                panic!("segfault-equivalent");
            }
            // Rank 0 blocks on a message its dead peer never sends; the
            // poisoned world unwinds it mid-section.
            let _ = world.recv::<u8>(p, mpisim::Src::Rank(1), mpisim::TagSel::Any);
            s.exit(p, &world, "HALO");
            s.exit(p, &world, "timeloop");
        });
        assert!(result.is_err());
        // The paper's §5.3 sentence, literally: both the crashed rank and
        // the one its death stranded are located semantically.
        assert_eq!(context.describe(1), "MPI_MAIN > timeloop > HALO");
        assert_eq!(context.describe(0), "MPI_MAIN > timeloop > HALO");
        assert_eq!(context.ranks_in("HALO"), vec![0, 1]);
    }

    #[test]
    fn context_clears_on_clean_exit() {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let context = ContextTool::new();
        sections.attach(context.clone());
        let s = sections.clone();
        WorldBuilder::new(1)
            .tool(sections.clone())
            .run(move |p| {
                let world = p.world();
                s.scoped(p, &world, "phase", |_| {});
            })
            .unwrap();
        // MPI_MAIN closed at Finalize; nothing remains open.
        assert_eq!(context.describe(0), "outside any section");
        assert!(context.context_of(0).is_empty());
    }

    #[test]
    fn ranks_in_reports_membership() {
        let tool = ContextTool::default();
        let enter = |rank: usize, label: &str| {
            let info = EnterInfo {
                world_rank: rank,
                comm: CommId::WORLD,
                comm_size: 4,
                comm_rank: rank,
                label: Arc::from(label),
                section: 0,
                time: VTime::ZERO,
                occurrence: 0,
                depth: 0,
            };
            let mut data = [0u8; 32];
            tool.on_enter(&info, &mut data);
        };
        enter(0, "io");
        enter(2, "io");
        enter(1, "compute");
        assert_eq!(tool.ranks_in("io"), vec![0, 2]);
        assert_eq!(tool.ranks_in("compute"), vec![1]);
        assert!(tool.ranks_in("missing").is_empty());
    }

    #[test]
    fn interleaved_communicator_sections_unwind_correctly() {
        let sections = SectionRuntime::new(VerifyMode::Off);
        let context = ContextTool::new();
        sections.attach(context.clone());
        let s = sections.clone();
        let ctx_inner = context.clone();
        WorldBuilder::new(2)
            .tool(sections.clone())
            .run(move |p| {
                let world = p.world();
                let dup = world.dup(p);
                s.enter(p, &world, "a");
                s.enter(p, &dup, "b");
                // Cross-communicator exit order is free.
                s.exit(p, &world, "a");
                assert_eq!(ctx_inner.context_of(p.world_rank()).last().unwrap(), "b");
                s.exit(p, &dup, "b");
            })
            .unwrap();
        assert_eq!(context.describe(0), "outside any section");
    }
}
