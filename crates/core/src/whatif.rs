//! What-if scenario specifications for counterfactual trace replay.
//!
//! A spec is a comma-separated list of clauses, each altering one
//! component of the recorded run's pricing; the whole spec describes one
//! scenario (one `--what-if` flag = one re-timed replay):
//!
//! ```text
//! net=ideal              free network (zero overhead, latency, bandwidth cost)
//! net=knl                re-price messages with another preset's links/placement
//! jitter=0               noise-free: compute at base duration, no latency jitter
//! null=late-sender       wait-state class nulled out of the timing
//! scale:HALO=0.5         local work inside section HALO scaled by 0.5
//! ```
//!
//! Clauses compose: `net=ideal,jitter=0` is the fully idealized replay
//! whose makespan must converge to the critical-path length. Parsing is
//! strict — unknown clauses, duplicate clauses and unknown machine names
//! are errors, so a typo cannot silently replay the identity scenario.

/// The wait-state classes a scenario can null out (the taxonomy of
/// [`crate::waitstate::classify`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitClass {
    /// Receiver idling for a send issued after the receive was posted.
    LateSender,
    /// Eager-buffer occupancy: the message waited for the receive. Not
    /// idle time, so nulling it never changes the predicted makespan —
    /// it only clears the class from the re-timed report.
    LateReceiver,
    /// Early arrival at a collective rendezvous.
    WaitAtCollective,
}

impl WaitClass {
    /// The spelling used in specs and reports.
    pub fn name(self) -> &'static str {
        match self {
            WaitClass::LateSender => "late-sender",
            WaitClass::LateReceiver => "late-receiver",
            WaitClass::WaitAtCollective => "wait-at-collective",
        }
    }
}

/// One parsed what-if scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIfSpec {
    /// The spec text as given (scenario label in every report).
    pub raw: String,
    /// Machine name whose network/placement re-prices every message
    /// (`"ideal"` frees the network entirely); `None` keeps the recorded
    /// network deltas.
    pub net: Option<String>,
    /// Replay noise-free: compute intervals at their recorded base
    /// duration, zero network latency jitter.
    pub zero_jitter: bool,
    /// Null one wait-state class out of the timing.
    pub null: Option<WaitClass>,
    /// `(section label, factor)` pairs scaling local work.
    pub scale: Vec<(String, f64)>,
}

impl WhatIfSpec {
    /// The identity scenario: nothing altered. Replaying it must
    /// reproduce the recorded run bit for bit.
    pub fn identity() -> WhatIfSpec {
        WhatIfSpec {
            raw: "identity".to_string(),
            net: None,
            zero_jitter: false,
            null: None,
            scale: Vec::new(),
        }
    }

    /// True when no clause alters anything.
    pub fn is_identity(&self) -> bool {
        self.net.is_none() && !self.zero_jitter && self.null.is_none() && self.scale.is_empty()
    }
}

/// Machine names `net=` accepts (the preset set of [`machine::presets`]).
const NET_NAMES: &[&str] = &["ideal", "nehalem", "knl", "broadwell"];

/// Parse one `--what-if` spec.
pub fn parse(spec: &str) -> Result<WhatIfSpec, String> {
    let raw = spec.trim();
    if raw.is_empty() {
        return Err("what-if spec is empty (try e.g. 'jitter=0' or 'net=ideal')".to_string());
    }
    let mut out = WhatIfSpec {
        raw: raw.to_string(),
        net: None,
        zero_jitter: false,
        null: None,
        scale: Vec::new(),
    };
    for clause in raw.split(',') {
        let clause = clause.trim();
        if clause.is_empty() {
            return Err(format!("empty clause in what-if spec '{raw}'"));
        }
        if let Some(rest) = clause.strip_prefix("net=") {
            if out.net.is_some() {
                return Err(format!("duplicate net= clause in '{raw}'"));
            }
            if !NET_NAMES.contains(&rest) {
                return Err(format!(
                    "unknown machine '{rest}' in '{clause}' (expected one of {})",
                    NET_NAMES.join("|")
                ));
            }
            out.net = Some(rest.to_string());
        } else if let Some(rest) = clause.strip_prefix("jitter=") {
            if out.zero_jitter {
                return Err(format!("duplicate jitter= clause in '{raw}'"));
            }
            if rest != "0" {
                return Err(format!(
                    "unsupported jitter value '{rest}' in '{clause}' (only jitter=0)"
                ));
            }
            out.zero_jitter = true;
        } else if let Some(rest) = clause.strip_prefix("null=") {
            if out.null.is_some() {
                return Err(format!("duplicate null= clause in '{raw}'"));
            }
            out.null = Some(match rest {
                "late-sender" => WaitClass::LateSender,
                "late-receiver" => WaitClass::LateReceiver,
                "wait-at-collective" => WaitClass::WaitAtCollective,
                other => {
                    return Err(format!(
                        "unknown wait class '{other}' in '{clause}' \
                         (late-sender|late-receiver|wait-at-collective)"
                    ))
                }
            });
        } else if let Some(rest) = clause.strip_prefix("scale:") {
            let Some((label, factor)) = rest.split_once('=') else {
                return Err(format!(
                    "scale clause '{clause}' needs the form scale:SECTION=FACTOR"
                ));
            };
            if label.is_empty() {
                return Err(format!("empty section label in '{clause}'"));
            }
            let k: f64 = factor
                .parse()
                .map_err(|_| format!("scale factor '{factor}' in '{clause}' is not a number"))?;
            if !k.is_finite() || k < 0.0 {
                return Err(format!(
                    "scale factor {k} in '{clause}' must be finite and >= 0"
                ));
            }
            if out.scale.iter().any(|(l, _)| l == label) {
                return Err(format!("duplicate scale clause for '{label}' in '{raw}'"));
            }
            out.scale.push((label.to_string(), k));
        } else {
            return Err(format!(
                "unknown what-if clause '{clause}' \
                 (net=MACHINE | jitter=0 | null=CLASS | scale:SECTION=K)"
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_clauses_parse() {
        let s = parse("net=ideal").unwrap();
        assert_eq!(s.net.as_deref(), Some("ideal"));
        assert!(!s.zero_jitter);
        let s = parse("jitter=0").unwrap();
        assert!(s.zero_jitter);
        let s = parse("null=late-sender").unwrap();
        assert_eq!(s.null, Some(WaitClass::LateSender));
        let s = parse("scale:HALO=0.5").unwrap();
        assert_eq!(s.scale, vec![("HALO".to_string(), 0.5)]);
    }

    #[test]
    fn clauses_compose() {
        let s = parse("net=ideal, jitter=0, scale:HALO=2").unwrap();
        assert_eq!(s.net.as_deref(), Some("ideal"));
        assert!(s.zero_jitter);
        assert_eq!(s.scale.len(), 1);
        assert!(!s.is_identity());
        assert!(WhatIfSpec::identity().is_identity());
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        for (spec, needle) in [
            ("", "empty"),
            ("net=quantum", "unknown machine"),
            ("jitter=1", "only jitter=0"),
            ("null=slow", "unknown wait class"),
            ("scale:HALO", "scale:SECTION=FACTOR"),
            ("scale:=2", "empty section label"),
            ("scale:HALO=fast", "not a number"),
            ("scale:HALO=-1", ">= 0"),
            ("warp=9", "unknown what-if clause"),
            ("net=ideal,net=knl", "duplicate net="),
            ("scale:A=1,scale:A=2", "duplicate scale"),
        ] {
            let err = parse(spec).unwrap_err();
            assert!(err.contains(needle), "spec '{spec}': {err}");
        }
    }

    #[test]
    fn class_names_round_trip() {
        assert_eq!(WaitClass::LateSender.name(), "late-sender");
        assert_eq!(WaitClass::LateReceiver.name(), "late-receiver");
        assert_eq!(WaitClass::WaitAtCollective.name(), "wait-at-collective");
    }
}
