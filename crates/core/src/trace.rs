//! Section-level tracing — the coarse-grained trace the paper imagines a
//! viewer like Vampir consuming (§5.3: "merge fine-grained trace-events
//! per sections to provide a coarse-grain overview of section instances
//! before zooming in").
//!
//! [`TraceTool`] records one complete-span event per section traversal per
//! rank (as a [`SectionTool`]) and, when additionally attached as an
//! [`mpisim::Tool`], the endpoints of every point-to-point message. The
//! trace exports as:
//!
//! * CSV (`to_csv`),
//! * Chrome trace-event JSON (`to_chrome_trace`) — `chrome://tracing` /
//!   Perfetto open it directly, with one labeled process row per rank,
//!   one thread lane per communicator, and flow arrows joining each
//!   message's send to its matching receive,
//! * folded flamegraph stacks (`to_folded`) weighted by *exclusive*
//!   section time, ready for `flamegraph.pl` or speedscope.

use crate::tool::{EnterInfo, LeaveInfo, SectionTool};
use mpisim::diag::json_str;
use mpisim::{CommId, MpiEvent, SectionData, Tool};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt::Write as _;
use std::sync::Arc;

/// One completed section traversal on one rank.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// World rank.
    pub rank: usize,
    /// Communicator of the section.
    pub comm: CommId,
    /// Section label.
    pub label: String,
    /// Virtual entry time, nanoseconds.
    pub enter_ns: u64,
    /// Virtual exit time, nanoseconds.
    pub exit_ns: u64,
    /// Nesting depth at entry.
    pub depth: usize,
    /// Occurrence index of this (comm, label) on this rank.
    pub occurrence: u64,
}

/// Both endpoints of one message, as `(rank, time ns, comm id)`.
#[derive(Debug, Clone, Copy, Default)]
struct FlowEnds {
    src: Option<(usize, u64, u64)>,
    dst: Option<(usize, u64, u64)>,
}

/// Synthetic Chrome-trace pid hosting the efficiency counter lanes —
/// far above any plausible world size so it never collides with a rank.
pub const COUNTER_PID: usize = 1_000_000;

/// A tool recording every section traversal as a span, plus message flow
/// endpoints when attached at the PMPI layer too.
#[derive(Default)]
pub struct TraceTool {
    events: Mutex<Vec<SpanEvent>>,
    flows: Mutex<HashMap<u64, FlowEnds>>,
}

impl TraceTool {
    /// A fresh trace tool behind an `Arc`, ready to attach.
    pub fn new() -> Arc<TraceTool> {
        Arc::new(TraceTool::default())
    }

    /// Discard all recorded spans and flow endpoints. A process that runs
    /// several worlds against one trace tool (the schedule explorer) must
    /// reset between runs or later exports replay earlier runs' spans.
    pub fn reset(&self) {
        self.events.lock().clear();
        self.flows.lock().clear();
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Take a snapshot of the recorded spans, sorted by (rank, enter).
    pub fn spans(&self) -> Vec<SpanEvent> {
        let mut events = self.events.lock().clone();
        events.sort_by_key(|e| (e.rank, e.enter_ns, e.exit_ns));
        events
    }

    /// Export as CSV (`rank,comm,label,enter_ns,exit_ns,depth,occurrence`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("rank,comm,label,enter_ns,exit_ns,depth,occurrence\n");
        for e in self.spans() {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{}",
                e.rank, e.comm.0, e.label, e.enter_ns, e.exit_ns, e.depth, e.occurrence
            );
        }
        out
    }

    /// Export as Chrome trace-event JSON (complete events, µs timebase):
    /// one "process" per rank (named via metadata events so Perfetto shows
    /// `rank N` instead of a bare pid), one "thread" lane per communicator
    /// — within a communicator sections nest LIFO, which is what the
    /// complete-event format requires of a lane — and a flow-event pair
    /// (`ph:"s"` → `ph:"f"`) drawing an arrow from every send to its
    /// matching receive.
    pub fn to_chrome_trace(&self) -> String {
        self.to_chrome_trace_with(None)
    }

    /// Like [`TraceTool::to_chrome_trace`], plus per-window efficiency
    /// counter lanes (`ph:"C"`) from a windowed [`crate::Timeline`]:
    /// Perfetto renders one stepped counter track per section under a
    /// synthetic "windowed efficiency" process, so metric trajectories sit
    /// directly under the span rows and flow arrows they explain.
    pub fn to_chrome_trace_with(&self, timeline: Option<&crate::Timeline>) -> String {
        self.to_chrome_trace_capped(usize::MAX, timeline).0
    }

    /// Like [`TraceTool::to_chrome_trace_with`], but capped at
    /// `max_ranks` rank lanes: spans and flow arrows touching world rank
    /// `>= max_ranks` are dropped and the count of distinct dropped ranks
    /// is returned alongside the JSON, so large-p exports stay bounded
    /// and the caller can say exactly what was cut instead of silently
    /// emitting a multi-GB trace.
    pub fn to_chrome_trace_capped(
        &self,
        max_ranks: usize,
        timeline: Option<&crate::Timeline>,
    ) -> (String, usize) {
        let mut dropped: BTreeSet<usize> = BTreeSet::new();
        let spans: Vec<SpanEvent> = self
            .spans()
            .into_iter()
            .filter(|e| {
                if e.rank < max_ranks {
                    true
                } else {
                    dropped.insert(e.rank);
                    false
                }
            })
            .collect();
        let flows = {
            let flows = self.flows.lock();
            let mut pairs: Vec<(u64, FlowEnds)> = flows
                .iter()
                .filter(|(_, f)| f.src.is_some() && f.dst.is_some())
                .filter(|(_, f)| {
                    let ends = [f.src.expect("filtered"), f.dst.expect("filtered")];
                    let keep = ends.iter().all(|&(rank, _, _)| rank < max_ranks);
                    if !keep {
                        for (rank, _, _) in ends {
                            if rank >= max_ranks {
                                dropped.insert(rank);
                            }
                        }
                    }
                    keep
                })
                .map(|(&seq, &f)| (seq, f))
                .collect();
            pairs.sort_by_key(|&(seq, _)| seq);
            pairs
        };

        // Every (pid) and (pid, tid) that will appear gets a metadata row.
        let mut pids: BTreeSet<usize> = BTreeSet::new();
        let mut lanes: BTreeSet<(usize, u64)> = BTreeSet::new();
        for e in &spans {
            pids.insert(e.rank);
            lanes.insert((e.rank, e.comm.0));
        }
        for (_, f) in &flows {
            for end in [f.src, f.dst].into_iter().flatten() {
                pids.insert(end.0);
                lanes.insert((end.0, end.2));
            }
        }

        let mut out = String::from("[");
        let mut first = true;
        let emit = |out: &mut String, first: &mut bool, ev: String| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&ev);
        };

        for &pid in &pids {
            emit(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":{}}}}}",
                    json_str(&format!("rank {pid}"))
                ),
            );
            emit(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"sort_index\":{pid}}}}}"
                ),
            );
        }
        for &(pid, tid) in &lanes {
            let lane = if tid == CommId::WORLD.0 {
                "MPI_COMM_WORLD".to_string()
            } else {
                format!("comm {tid}")
            };
            emit(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":{}}}}}",
                    json_str(&lane)
                ),
            );
        }

        for e in &spans {
            emit(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":{},\"cat\":\"section\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":{},\"tid\":{},\"args\":{{\"depth\":{},\"occurrence\":{}}}}}",
                    json_str(&e.label),
                    e.enter_ns as f64 / 1e3,
                    (e.exit_ns - e.enter_ns) as f64 / 1e3,
                    e.rank,
                    e.comm.0,
                    e.depth,
                    e.occurrence,
                ),
            );
        }

        for (seq, f) in &flows {
            let (src_rank, src_ns, src_comm) = f.src.expect("filtered");
            let (dst_rank, dst_ns, dst_comm) = f.dst.expect("filtered");
            emit(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"msg\",\"cat\":\"msg\",\"ph\":\"s\",\"id\":{seq},\"ts\":{:.3},\"pid\":{src_rank},\"tid\":{src_comm}}}",
                    src_ns as f64 / 1e3,
                ),
            );
            emit(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"msg\",\"cat\":\"msg\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{seq},\"ts\":{:.3},\"pid\":{dst_rank},\"tid\":{dst_comm}}}",
                    dst_ns as f64 / 1e3,
                ),
            );
        }

        if let Some(tl) = timeline {
            // Synthetic pid far above any real rank; sorted after them.
            let pid = COUNTER_PID;
            emit(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\"windowed efficiency\"}}}}"
                ),
            );
            emit(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"sort_index\":{pid}}}}}"
                ),
            );
            for ev in tl.counter_events(pid) {
                emit(&mut out, &mut first, ev);
            }
        }

        out.push(']');
        (out, dropped.len())
    }

    /// Export as folded flamegraph stacks: one line per unique stack,
    /// `rank N;PARENT;CHILD weight`, weighted by **exclusive** time in
    /// nanoseconds (a section's own time minus its nested children), so
    /// frame widths in the rendered graph are proportional to where time
    /// was actually spent. Lines are sorted; identical runs fold to
    /// byte-identical output.
    pub fn to_folded(&self) -> String {
        let spans = self.spans();
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();

        // Group by (rank, comm): spans nest LIFO within a lane.
        let mut i = 0;
        while i < spans.len() {
            let (rank, comm) = (spans[i].rank, spans[i].comm);
            let mut j = i;
            while j < spans.len() && spans[j].rank == rank && spans[j].comm == comm {
                j += 1;
            }
            let mut group: Vec<&SpanEvent> = spans[i..j].iter().collect();
            // Parents first: earlier enter, or same enter and later exit.
            group.sort_by(|a, b| {
                a.enter_ns
                    .cmp(&b.enter_ns)
                    .then(b.exit_ns.cmp(&a.exit_ns))
                    .then(a.depth.cmp(&b.depth))
            });

            let prefix = if comm == CommId::WORLD {
                format!("rank {rank}")
            } else {
                format!("rank {rank};comm {}", comm.0)
            };
            // Sweep with an explicit stack; child_ns accumulates nested
            // time so the popped frame's weight is exclusive.
            let mut stack: Vec<(&SpanEvent, u64)> = Vec::new();
            let pop = |stack: &mut Vec<(&SpanEvent, u64)>, folded: &mut BTreeMap<String, u64>| {
                let (span, child_ns) = stack.pop().expect("pop on empty stack");
                let dur = span.exit_ns - span.enter_ns;
                let exclusive = dur.saturating_sub(child_ns);
                let mut path = prefix.clone();
                for (ancestor, _) in stack.iter() {
                    path.push(';');
                    path.push_str(&ancestor.label.replace(';', ","));
                }
                path.push(';');
                path.push_str(&span.label.replace(';', ","));
                if exclusive > 0 {
                    *folded.entry(path).or_default() += exclusive;
                }
                if let Some(top) = stack.last_mut() {
                    top.1 += dur;
                }
            };
            for e in group {
                while let Some(&(top, _)) = stack.last() {
                    if top.exit_ns <= e.enter_ns {
                        pop(&mut stack, &mut folded);
                    } else {
                        break;
                    }
                }
                stack.push((e, 0));
            }
            while !stack.is_empty() {
                pop(&mut stack, &mut folded);
            }
            i = j;
        }

        let mut out = String::new();
        for (path, weight) in folded {
            let _ = writeln!(out, "{path} {weight}");
        }
        out
    }
}

impl SectionTool for TraceTool {
    fn on_enter(&self, _info: &EnterInfo, _data: &mut SectionData) {}

    fn on_leave(&self, info: &LeaveInfo, _data: &SectionData) {
        self.events.lock().push(SpanEvent {
            rank: info.world_rank,
            comm: info.comm,
            label: info.label.to_string(),
            enter_ns: info.enter_time.as_nanos(),
            exit_ns: info.time.as_nanos(),
            depth: info.depth,
            occurrence: info.occurrence,
        });
    }
}

/// PMPI attachment: record message endpoints for the flow arrows. Attach
/// the same `Arc<TraceTool>` with both `sections.attach(..)` (spans) and
/// `WorldBuilder::tool(..)` (flows).
impl Tool for TraceTool {
    fn on_event(&self, world_rank: usize, event: &MpiEvent) {
        match event {
            MpiEvent::SendEnqueued {
                comm, seq, time, ..
            } => {
                self.flows.lock().entry(*seq).or_default().src =
                    Some((world_rank, time.as_nanos(), comm.0));
            }
            MpiEvent::RecvMatched {
                comm, seq, time, ..
            } => {
                self.flows.lock().entry(*seq).or_default().dst =
                    Some((world_rank, time.as_nanos(), comm.0));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SectionRuntime, VerifyMode};
    use mpisim::{Src, TagSel, WorldBuilder};

    fn traced_run() -> Arc<TraceTool> {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let trace = TraceTool::new();
        sections.attach(trace.clone());
        let s = sections.clone();
        WorldBuilder::new(2)
            .tool(sections.clone())
            .run(move |p| {
                let world = p.world();
                s.scoped(p, &world, "outer", |p| {
                    p.advance_secs(1.0);
                    s.scoped(p, &world, "inner", |p| p.advance_secs(0.5));
                });
            })
            .unwrap();
        trace
    }

    fn traced_ring_run() -> Arc<TraceTool> {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let trace = TraceTool::new();
        sections.attach(trace.clone());
        let s = sections.clone();
        WorldBuilder::new(2)
            .tool(sections.clone())
            .tool(trace.clone())
            .run(move |p| {
                let world = p.world();
                s.scoped(p, &world, "xchg", |p| {
                    let world = p.world();
                    let peer = 1 - p.world_rank();
                    world.send(p, peer, 0, &[1u8, 2]);
                    let _ = world.recv::<u8>(p, Src::Rank(peer), TagSel::Is(0));
                });
            })
            .unwrap();
        trace
    }

    #[test]
    fn spans_are_recorded_with_nesting() {
        let trace = traced_run();
        // 2 ranks x (outer + inner + MPI_MAIN).
        assert_eq!(trace.len(), 6);
        let spans = trace.spans();
        let outer = spans
            .iter()
            .find(|e| e.rank == 0 && e.label == "outer")
            .unwrap();
        let inner = spans
            .iter()
            .find(|e| e.rank == 0 && e.label == "inner")
            .unwrap();
        assert!(outer.enter_ns <= inner.enter_ns);
        assert!(outer.exit_ns >= inner.exit_ns);
        assert_eq!(outer.depth, 1); // under MPI_MAIN
        assert_eq!(inner.depth, 2);
        assert_eq!(outer.exit_ns - outer.enter_ns, 1_500_000_000);
    }

    #[test]
    fn csv_export_has_all_rows() {
        let trace = traced_run();
        let csv = trace.to_csv();
        assert_eq!(csv.lines().count(), 7); // header + 6 spans
        assert!(csv.starts_with("rank,comm,label"));
        assert!(csv.contains("inner"));
    }

    #[test]
    fn chrome_trace_is_wellformed_enough() {
        let trace = traced_run();
        let json = trace.to_chrome_trace();
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 6);
        assert!(json.contains("\"name\":\"outer\""));
        // Balanced braces (cheap sanity check without a JSON parser).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn chrome_trace_labels_ranks() {
        let trace = traced_run();
        let json = trace.to_chrome_trace();
        assert_eq!(json.matches("\"process_name\"").count(), 2);
        assert!(json.contains("\"name\":\"rank 0\""));
        assert!(json.contains("\"name\":\"rank 1\""));
        assert_eq!(json.matches("\"process_sort_index\"").count(), 2);
        assert_eq!(json.matches("\"thread_name\"").count(), 2);
        assert!(json.contains("\"name\":\"MPI_COMM_WORLD\""));
    }

    #[test]
    fn chrome_trace_draws_message_flows() {
        let trace = traced_ring_run();
        let json = trace.to_chrome_trace();
        // Two messages -> two complete arrows.
        assert_eq!(json.matches("\"ph\":\"s\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"f\"").count(), 2);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn folded_stacks_weight_exclusive_time() {
        let trace = traced_run();
        let folded = trace.to_folded();
        let lines: Vec<&str> = folded.lines().collect();
        // Per rank: MPI_MAIN (exclusive ~0 is dropped or tiny), outer, inner.
        assert!(
            lines
                .iter()
                .any(|l| l.starts_with("rank 0;MPI_MAIN;outer;inner ")),
            "{folded}"
        );
        let outer = lines
            .iter()
            .find(|l| l.starts_with("rank 0;MPI_MAIN;outer "))
            .unwrap();
        let weight: u64 = outer.rsplit(' ').next().unwrap().parse().unwrap();
        // outer ran 1.5 s total but 0.5 s belongs to inner.
        assert_eq!(weight, 1_000_000_000);
    }

    #[test]
    fn folded_output_is_sorted_and_stable() {
        let a = traced_run().to_folded();
        let b = traced_run().to_folded();
        assert_eq!(a, b);
        let mut lines: Vec<&str> = a.lines().collect();
        let sorted = {
            let mut s = lines.clone();
            s.sort();
            s
        };
        lines.sort();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn counter_lanes_ride_next_to_spans() {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let trace = TraceTool::new();
        let rec = crate::CommRecorder::new();
        sections.attach(trace.clone());
        let s = sections.clone();
        WorldBuilder::new(2)
            .tool(sections.clone())
            .tool(trace.clone())
            .tool(rec.clone())
            .run(move |p| {
                let world = p.world();
                for _ in 0..4 {
                    s.scoped(p, &world, "xchg", |p| {
                        let world = p.world();
                        let peer = 1 - p.world_rank();
                        p.advance_secs(1.0);
                        world.send(p, peer, 0, &[1u8, 2]);
                        let _ = world.recv::<u8>(p, Src::Rank(peer), TagSel::Is(0));
                    });
                }
            })
            .unwrap();
        let tl = crate::timeline::build(&rec.freeze(), &crate::Windowing::Fixed(4));
        let json = trace.to_chrome_trace_with(Some(&tl));
        assert!(json.contains("\"windowed efficiency\""), "{json}");
        assert!(json.matches("\"ph\":\"C\"").count() >= 4, "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Without a timeline the output is unchanged.
        assert_eq!(trace.to_chrome_trace(), trace.to_chrome_trace_with(None));
        assert!(!trace.to_chrome_trace().contains("\"ph\":\"C\""));
    }

    #[test]
    fn rank_cap_drops_lanes_and_counts_them() {
        let trace = traced_ring_run();
        let (json, dropped) = trace.to_chrome_trace_capped(1, None);
        assert_eq!(dropped, 1);
        assert!(json.contains("\"name\":\"rank 0\""), "{json}");
        assert!(!json.contains("\"name\":\"rank 1\""), "{json}");
        // Both messages touch rank 1, so every flow arrow is dropped too.
        assert!(!json.contains("\"ph\":\"s\""), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // An unconstrained cap is the identity.
        let (full, none_dropped) = trace.to_chrome_trace_capped(usize::MAX, None);
        assert_eq!(none_dropped, 0);
        assert_eq!(full, trace.to_chrome_trace());
    }

    #[test]
    fn empty_trace() {
        let t = TraceTool::new();
        assert!(t.is_empty());
        assert_eq!(t.to_chrome_trace(), "[]");
        assert_eq!(t.to_csv().lines().count(), 1);
        assert_eq!(t.to_folded(), "");
    }
}
