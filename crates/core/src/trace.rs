//! Section-level tracing — the coarse-grained trace the paper imagines a
//! viewer like Vampir consuming (§5.3: "merge fine-grained trace-events
//! per sections to provide a coarse-grain overview of section instances
//! before zooming in").
//!
//! [`TraceTool`] records one complete-span event per section traversal per
//! rank. The trace can be exported as CSV or as Chrome trace-event JSON
//! (`chrome://tracing` / Perfetto open it directly, with one timeline row
//! per rank).

use crate::tool::{EnterInfo, LeaveInfo, SectionTool};
use mpisim::{CommId, SectionData};
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::sync::Arc;

/// One completed section traversal on one rank.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// World rank.
    pub rank: usize,
    /// Communicator of the section.
    pub comm: CommId,
    /// Section label.
    pub label: String,
    /// Virtual entry time, nanoseconds.
    pub enter_ns: u64,
    /// Virtual exit time, nanoseconds.
    pub exit_ns: u64,
    /// Nesting depth at entry.
    pub depth: usize,
    /// Occurrence index of this (comm, label) on this rank.
    pub occurrence: u64,
}

/// A tool recording every section traversal as a span.
#[derive(Default)]
pub struct TraceTool {
    events: Mutex<Vec<SpanEvent>>,
}

impl TraceTool {
    /// A fresh trace tool behind an `Arc`, ready to attach.
    pub fn new() -> Arc<TraceTool> {
        Arc::new(TraceTool::default())
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Take a snapshot of the recorded spans, sorted by (rank, enter).
    pub fn spans(&self) -> Vec<SpanEvent> {
        let mut events = self.events.lock().clone();
        events.sort_by_key(|e| (e.rank, e.enter_ns, e.exit_ns));
        events
    }

    /// Export as CSV (`rank,comm,label,enter_ns,exit_ns,depth,occurrence`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("rank,comm,label,enter_ns,exit_ns,depth,occurrence\n");
        for e in self.spans() {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{}",
                e.rank, e.comm.0, e.label, e.enter_ns, e.exit_ns, e.depth, e.occurrence
            );
        }
        out
    }

    /// Export as Chrome trace-event JSON (complete events, µs timebase):
    /// one "process" per rank, one "thread" lane per communicator —
    /// within a communicator sections nest LIFO, which is what the
    /// complete-event format requires of a lane.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("[");
        let mut first = true;
        for e in self.spans() {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"section\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":{},\"tid\":{},\"args\":{{\"depth\":{},\"occurrence\":{}}}}}",
                escape_json(&e.label),
                e.enter_ns as f64 / 1e3,
                (e.exit_ns - e.enter_ns) as f64 / 1e3,
                e.rank,
                e.comm.0,
                e.depth,
                e.occurrence,
            );
        }
        out.push(']');
        out
    }
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

impl SectionTool for TraceTool {
    fn on_enter(&self, _info: &EnterInfo, _data: &mut SectionData) {}

    fn on_leave(&self, info: &LeaveInfo, _data: &SectionData) {
        self.events.lock().push(SpanEvent {
            rank: info.world_rank,
            comm: info.comm,
            label: info.label.to_string(),
            enter_ns: info.enter_time.as_nanos(),
            exit_ns: info.time.as_nanos(),
            depth: info.depth,
            occurrence: info.occurrence,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SectionRuntime, VerifyMode};
    use mpisim::WorldBuilder;

    fn traced_run() -> Arc<TraceTool> {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let trace = TraceTool::new();
        sections.attach(trace.clone());
        let s = sections.clone();
        WorldBuilder::new(2)
            .tool(sections.clone())
            .run(move |p| {
                let world = p.world();
                s.scoped(p, &world, "outer", |p| {
                    p.advance_secs(1.0);
                    s.scoped(p, &world, "inner", |p| p.advance_secs(0.5));
                });
            })
            .unwrap();
        trace
    }

    #[test]
    fn spans_are_recorded_with_nesting() {
        let trace = traced_run();
        // 2 ranks x (outer + inner + MPI_MAIN).
        assert_eq!(trace.len(), 6);
        let spans = trace.spans();
        let outer = spans
            .iter()
            .find(|e| e.rank == 0 && e.label == "outer")
            .unwrap();
        let inner = spans
            .iter()
            .find(|e| e.rank == 0 && e.label == "inner")
            .unwrap();
        assert!(outer.enter_ns <= inner.enter_ns);
        assert!(outer.exit_ns >= inner.exit_ns);
        assert_eq!(outer.depth, 1); // under MPI_MAIN
        assert_eq!(inner.depth, 2);
        assert_eq!(outer.exit_ns - outer.enter_ns, 1_500_000_000);
    }

    #[test]
    fn csv_export_has_all_rows() {
        let trace = traced_run();
        let csv = trace.to_csv();
        assert_eq!(csv.lines().count(), 7); // header + 6 spans
        assert!(csv.starts_with("rank,comm,label"));
        assert!(csv.contains("inner"));
    }

    #[test]
    fn chrome_trace_is_wellformed_enough() {
        let trace = traced_run();
        let json = trace.to_chrome_trace();
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 6);
        assert!(json.contains("\"name\":\"outer\""));
        // Balanced braces (cheap sanity check without a JSON parser).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("a\\b"), "a\\\\b");
        assert_eq!(escape_json("a\nb"), "a\\u000ab");
    }

    #[test]
    fn empty_trace() {
        let t = TraceTool::new();
        assert!(t.is_empty());
        assert_eq!(t.to_chrome_trace(), "[]");
        assert_eq!(t.to_csv().lines().count(), 1);
    }
}
