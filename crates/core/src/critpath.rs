//! Critical-path extraction through the message-dependency graph.
//!
//! The paper's Eq. 6 bounds speedup from per-section timings under the
//! assumption that everything off the profiled section scales; the
//! critical path gives the complementary, communication-aware bound. The
//! longest dependency chain through the run — compute segments joined by
//! the sends, receives and collective rendezvous recorded in a
//! [`CommLog`] — cannot be compressed by adding ranks, so
//!
//! ```text
//! S(p) <= T_seq / CPL        (critical-path bound)
//! ```
//!
//! holds for any p. The walker starts at the last rank to finalize and
//! follows dependencies backward:
//!
//! * a receive that idled for a late sender hops to the sending rank at
//!   the send instant (the wait itself is *not* on the path);
//! * a collective exit hops to the member that arrived last (waits of the
//!   early arrivers are skipped);
//! * everything else consumes local time, attributed to the enclosing
//!   section.
//!
//! Per-section path shares therefore say which sections the wall clock is
//! actually serialized through — a sharper answer than inclusive time.

use crate::waitstate::{CommLog, RecKind};
use mpisim::diag::json_str;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// The extracted critical path.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Total path length in virtual nanoseconds.
    pub length_ns: u64,
    /// Path time per section label (sums to `length_ns`).
    pub per_section: BTreeMap<String, u64>,
    /// Path time per world rank (sums to `length_ns`).
    pub per_rank: Vec<u64>,
    /// Number of dependency edges followed (diagnostic).
    pub steps: usize,
}

impl CriticalPath {
    /// Path length in seconds.
    pub fn length_secs(&self) -> f64 {
        self.length_ns as f64 / 1e9
    }

    /// The critical-path speedup bound `T_seq / CPL` for a sequential
    /// baseline of `seq_total_secs`. Returns `f64::INFINITY` for an empty
    /// path.
    pub fn bound(&self, seq_total_secs: f64) -> f64 {
        if self.length_ns == 0 {
            f64::INFINITY
        } else {
            seq_total_secs / self.length_secs()
        }
    }

    /// Render the critical-path block shown next to the Eq. 6 ranking.
    pub fn render(&self, seq_total_secs: f64, p: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "critical path: {:.4} s through {} dependency steps",
            self.length_secs(),
            self.steps
        );
        let mut shares: Vec<(&String, &u64)> = self.per_section.iter().collect();
        shares.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        for (label, &ns) in shares {
            let share = if self.length_ns == 0 {
                0.0
            } else {
                100.0 * ns as f64 / self.length_ns as f64
            };
            let _ = writeln!(
                out,
                "  {:<32} {:>10.4} s  {:>5.1}%",
                crate::report::truncate_label(label, 32),
                ns as f64 / 1e9,
                share
            );
        }
        let bound = self.bound(seq_total_secs);
        let _ = writeln!(
            out,
            "critical-path speedup bound: S <= T_seq/CPL = {bound:.2} (p = {p}, T_seq = {seq_total_secs:.4} s)"
        );
        out
    }

    /// Machine-readable JSON dump (deterministic key order, integer ns).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"length_ns\":{},\"steps\":{}",
            self.length_ns, self.steps
        );
        out.push_str(",\"sections\":[");
        for (i, (label, ns)) in self.per_section.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"label\":{},\"ns\":{ns}}}", json_str(label));
        }
        out.push_str("],\"per_rank\":[");
        for (i, ns) in self.per_rank.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{ns}");
        }
        out.push_str("]}");
        out
    }
}

/// Walk the log backward from the last rank to finalize and extract the
/// critical path.
pub fn extract(log: &CommLog) -> CriticalPath {
    let nranks = log.ranks.len();
    let mut per_section: HashMap<u32, u64> = HashMap::new();
    let mut per_rank = vec![0u64; nranks];
    let mut steps = 0usize;

    if nranks == 0 {
        return CriticalPath {
            length_ns: 0,
            per_section: BTreeMap::new(),
            per_rank,
            steps,
        };
    }

    // Index the jump targets: message seq -> (rank, rec index) of the send,
    // (comm, round) -> rec index of each member's collective exit.
    let mut send_at: HashMap<u64, (usize, usize)> = HashMap::new();
    let mut coll_at: HashMap<(mpisim::CommId, u64), HashMap<usize, usize>> = HashMap::new();
    for (rank, rr) in log.ranks.iter().enumerate() {
        for (idx, rec) in rr.recs.iter().enumerate() {
            match rec.kind {
                RecKind::Send { seq } => {
                    send_at.insert(seq, (rank, idx));
                }
                RecKind::CollExit { comm, round, .. } => {
                    coll_at.entry((comm, round)).or_default().insert(rank, idx);
                }
                _ => {}
            }
        }
    }

    // Start on the rank that finalized last (ties: lowest rank).
    let mut rank = 0usize;
    for (r, rr) in log.ranks.iter().enumerate() {
        if rr.fini_ns > log.ranks[rank].fini_ns {
            rank = r;
        }
    }
    let mut cursor_ns = log.ranks[rank].fini_ns;
    let mut idx = log.ranks[rank].recs.len() as isize - 1;

    // Every step either decrements an index or jumps to a strictly earlier
    // time on another rank, but cap the walk defensively anyway.
    let cap = log.ranks.iter().map(|r| r.recs.len()).sum::<usize>() * 2 + 16;

    while idx >= 0 && steps < cap {
        steps += 1;
        let rec = log.ranks[rank].recs[idx as usize];
        match rec.kind {
            RecKind::RecvMatch { seq, post_ns, .. } => {
                let send = log.sends.get(&seq).copied();
                let target = send_at.get(&seq).copied();
                if let (Some(send), Some((src_rank, src_idx))) = (send, target) {
                    if send.send_ns > post_ns {
                        // Late sender: the receiver's segment on the path
                        // starts when the message left; hop to the sender.
                        let spent = cursor_ns.saturating_sub(send.send_ns);
                        *per_section.entry(rec.sec).or_default() += spent;
                        per_rank[rank] += spent;
                        rank = src_rank;
                        idx = src_idx as isize;
                        cursor_ns = send.send_ns;
                        continue;
                    }
                }
                // Message was already waiting: plain local segment.
                let spent = cursor_ns.saturating_sub(rec.t_ns);
                *per_section.entry(rec.sec).or_default() += spent;
                per_rank[rank] += spent;
                cursor_ns = rec.t_ns;
                idx -= 1;
            }
            RecKind::CollExit {
                comm,
                round,
                enter_ns,
            } => {
                // The rendezvous spans from the last arrival to the common
                // exit; hop to whichever member arrived last.
                let (crit_rank, max_enter) = log
                    .colls
                    .get(&(comm, round))
                    .map(|cr| {
                        cr.entries.iter().fold((rank, enter_ns), |best, &(r, t)| {
                            if t > best.1 || (t == best.1 && r < best.0) {
                                (r, t)
                            } else {
                                best
                            }
                        })
                    })
                    .unwrap_or((rank, enter_ns));
                let spent = cursor_ns.saturating_sub(max_enter);
                *per_section.entry(rec.sec).or_default() += spent;
                per_rank[rank] += spent;
                cursor_ns = max_enter;
                if crit_rank == rank {
                    idx -= 1;
                } else if let Some(&ci) =
                    coll_at.get(&(comm, round)).and_then(|m| m.get(&crit_rank))
                {
                    rank = crit_rank;
                    idx = ci as isize - 1;
                } else {
                    idx -= 1;
                }
            }
            _ => {
                let spent = cursor_ns.saturating_sub(rec.t_ns);
                *per_section.entry(rec.sec).or_default() += spent;
                per_rank[rank] += spent;
                cursor_ns = rec.t_ns;
                idx -= 1;
            }
        }
    }

    let mut named: BTreeMap<String, u64> = BTreeMap::new();
    for (sec, ns) in per_section {
        *named.entry(log.name(sec).to_string()).or_default() += ns;
    }
    CriticalPath {
        length_ns: named.values().sum(),
        per_section: named,
        per_rank,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waitstate::CommRecorder;
    use crate::{SectionRuntime, VerifyMode};
    use mpisim::{Src, TagSel, WorldBuilder};

    #[test]
    fn pipeline_path_runs_through_the_producer() {
        let rec = CommRecorder::new();
        let report = WorldBuilder::new(2)
            .tool(rec.clone())
            .run(|p| {
                let world = p.world();
                if p.world_rank() == 1 {
                    p.advance_secs(2.0);
                    world.send(p, 0, 0, &[1u8]);
                } else {
                    let _ = world.recv::<u8>(p, Src::Rank(1), TagSel::Any);
                }
            })
            .unwrap();
        let cp = extract(&rec.freeze());
        // The path must include rank 1's 2 s of compute, and cannot exceed
        // the makespan (waits are skipped, never double-counted).
        assert!(cp.per_rank[1] >= 1_900_000_000, "{:?}", cp.per_rank);
        assert!(cp.length_secs() <= report.makespan_secs() + 1e-9);
        assert!(cp.length_secs() >= 2.0);
    }

    #[test]
    fn straggler_dominates_collective_path() {
        let rec = CommRecorder::new();
        WorldBuilder::new(4)
            .tool(rec.clone())
            .run(|p| {
                let world = p.world();
                if p.world_rank() == 3 {
                    p.advance_secs(1.5);
                }
                world.barrier(p);
            })
            .unwrap();
        let cp = extract(&rec.freeze());
        // The straggler's compute is on the path; the waiters' idle is not.
        assert!(cp.per_rank[3] >= 1_400_000_000, "{:?}", cp.per_rank);
        assert!(cp.length_secs() >= 1.5);
        assert!(cp.length_secs() < 2.0, "{}", cp.length_secs());
    }

    #[test]
    fn path_never_exceeds_makespan_with_sections() {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let rec = CommRecorder::new();
        let s = sections.clone();
        let report = WorldBuilder::new(4)
            .tool(sections.clone())
            .tool(rec.clone())
            .run(move |p| {
                let world = p.world();
                s.scoped(p, &world, "WORK", |p| {
                    p.advance_secs(0.1 * (p.world_rank() + 1) as f64);
                });
                s.scoped(p, &world, "RING", |p| {
                    let world = p.world();
                    let next = (p.world_rank() + 1) % p.world_size();
                    let prev = (p.world_rank() + p.world_size() - 1) % p.world_size();
                    world.send(p, next, 7, &[0u32; 64]);
                    let _ = world.recv::<u32>(p, Src::Rank(prev), TagSel::Is(7));
                });
                s.scoped(p, &world, "SYNC", |p| {
                    let world = p.world();
                    world.barrier(p);
                });
            })
            .unwrap();
        let cp = extract(&rec.freeze());
        assert!(cp.length_ns > 0);
        assert!(
            cp.length_secs() <= report.makespan_secs() + 1e-9,
            "cpl {} > makespan {}",
            cp.length_secs(),
            report.makespan_secs()
        );
        // Every attributed nanosecond lands in a known section.
        let sum: u64 = cp.per_section.values().sum();
        assert_eq!(sum, cp.length_ns);
        let rank_sum: u64 = cp.per_rank.iter().sum();
        assert_eq!(rank_sum, cp.length_ns);
    }

    #[test]
    fn bound_and_render_and_json() {
        let rec = CommRecorder::new();
        WorldBuilder::new(2)
            .tool(rec.clone())
            .run(|p| {
                p.advance_secs(1.0);
                let world = p.world();
                world.barrier(p);
            })
            .unwrap();
        let cp = extract(&rec.freeze());
        let bound = cp.bound(8.0);
        assert!(bound > 0.0 && bound.is_finite());
        let text = cp.render(8.0, 4);
        assert!(text.contains("critical-path speedup bound"), "{text}");
        let json = cp.to_json();
        assert!(json.contains("\"length_ns\":"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn extraction_is_deterministic() {
        let run = || {
            let rec = CommRecorder::new();
            WorldBuilder::new(4)
                .tool(rec.clone())
                .run(|p| {
                    let world = p.world();
                    let next = (p.world_rank() + 1) % p.world_size();
                    let prev = (p.world_rank() + p.world_size() - 1) % p.world_size();
                    world.send(p, next, 0, &[p.world_rank() as u64]);
                    let _ = world.recv::<u64>(p, Src::Rank(prev), TagSel::Is(0));
                    world.barrier(p);
                })
                .unwrap();
            extract(&rec.freeze()).to_json()
        };
        assert_eq!(run(), run());
    }
}
