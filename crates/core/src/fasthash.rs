//! A fast, deterministic, non-cryptographic hasher for hot-path maps.
//!
//! The section enter/exit path hashes a rank id, a communicator id and a
//! short label on every call; SipHash (std's default) costs more than the
//! rest of the bookkeeping combined at 16k ranks. This is the well-known
//! Fx construction (rotate, xor, multiply by a Meyer-constant), which is
//! 3–5× cheaper on short keys and — unlike `RandomState` — independent of
//! process-level seeding, so map iteration feeding deterministic exports
//! never varies between runs. Not DoS-resistant: use only on keys the
//! application controls (labels, rank ids), never on external input.

use std::hash::{BuildHasherDefault, Hasher};

/// Hot-path replacement for `std::collections::HashMap`'s default hasher.
pub type FastMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// FNV-1a over a byte string: the workspace's one *stable fingerprint*
/// function. Unlike [`FastHasher`] (whose word-at-a-time folding is an
/// implementation detail of the hot-path maps), FNV-1a is byte-exact and
/// format-stable, so its values may be persisted: the mpistudy run store
/// addresses documents by it, mpiverify fingerprints run artifacts with
/// it, and metrics JSON embeds it as `results_fingerprint`. Changing this
/// function invalidates every stored hash — don't.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// [`fnv1a`] of a string, rendered as the fixed-width hex form used for
/// store filenames and JSON fingerprint fields.
pub fn fnv1a_hex(text: &str) -> String {
    format!("{:016x}", fnv1a(text.as_bytes()))
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx word-at-a-time hasher.
#[derive(Default)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
            self.add(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FastHasher::default();
        let mut b = FastHasher::default();
        a.write(b"CONVOLVE");
        b.write(b"CONVOLVE");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_values() {
        let mut a = FastHasher::default();
        let mut b = FastHasher::default();
        a.write_u64(1);
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn tail_bytes_change_the_hash() {
        let mut a = FastHasher::default();
        let mut b = FastHasher::default();
        a.write(b"HALO");
        b.write(b"HALT");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn fnv1a_reference_vectors() {
        // The canonical FNV-1a test vectors: any drift here would orphan
        // every content-addressed store document.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
        assert_eq!(fnv1a_hex("foobar"), "85944171f73967e8");
    }

    #[test]
    fn map_works_with_str_and_tuple_keys() {
        let mut m: FastMap<String, u32> = FastMap::default();
        m.insert("LOAD".into(), 1);
        m.insert("STORE".into(), 2);
        assert_eq!(m.get("LOAD"), Some(&1));
        assert_eq!(m.len(), 2);
    }
}
