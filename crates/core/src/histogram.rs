//! Online event-stream reduction — the lineage of the paper's MALP tool
//! (reference [34], *"Event streaming for online performance measurements
//! reduction"*): instead of storing every section event (like
//! [`crate::TraceTool`], whose memory grows with the event count), reduce
//! the stream *online* into per-label duration histograms with
//! logarithmic buckets. Memory is O(labels × buckets) no matter how many
//! billions of events flow through — the property that makes a tool
//! usable at scale.

use crate::tool::{EnterInfo, LeaveInfo, SectionTool};
use mpisim::SectionData;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Number of logarithmic buckets: 1 ns .. ~32 s in half-decade steps;
/// the last bucket collects everything larger.
pub const BUCKETS: usize = 22;

/// Lower edge (nanoseconds) of bucket `i`: `10^(i/2)` ns.
fn bucket_floor_ns(i: usize) -> u64 {
    10f64.powf(i as f64 / 2.0).round() as u64
}

/// The bucket a duration falls into.
fn bucket_of(ns: u64) -> usize {
    if ns == 0 {
        return 0;
    }
    let idx = (2.0 * (ns as f64).log10()).floor() as isize;
    idx.clamp(0, BUCKETS as isize - 1) as usize
}

/// Streaming summary of one label's durations.
#[derive(Debug, Clone, PartialEq)]
pub struct DurationHistogram {
    /// Event counts per logarithmic bucket.
    pub counts: [u64; BUCKETS],
    /// Total events folded in.
    pub total: u64,
    /// Sum of durations (ns) — exact mean survives the reduction.
    pub sum_ns: u128,
    /// Extremes survive exactly too.
    pub min_ns: u64,
    pub max_ns: u64,
}

impl Default for DurationHistogram {
    fn default() -> Self {
        DurationHistogram {
            counts: [0; BUCKETS],
            total: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

impl DurationHistogram {
    /// Fold one duration in.
    pub fn record(&mut self, ns: u64) {
        self.counts[bucket_of(ns)] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Exact mean duration in seconds.
    pub fn mean_secs(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.total as f64 * 1e-9
        }
    }

    /// Approximate quantile (by bucket floor): the reduction's accuracy is
    /// half a decade, the price of bounded memory.
    pub fn quantile_floor_ns(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return bucket_floor_ns(i);
            }
        }
        bucket_floor_ns(BUCKETS - 1)
    }

    /// Merge another histogram (e.g. from another rank or run) — the
    /// operation that makes the reduction composable across a tree.
    pub fn merge(&mut self, other: &DurationHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// A tool reducing the section event stream into per-label histograms.
#[derive(Default)]
pub struct HistogramTool {
    labels: Mutex<BTreeMap<String, DurationHistogram>>,
}

impl HistogramTool {
    /// A fresh tool behind an `Arc`, ready to attach.
    pub fn new() -> Arc<HistogramTool> {
        Arc::new(HistogramTool::default())
    }

    /// Snapshot the per-label histograms.
    pub fn snapshot(&self) -> BTreeMap<String, DurationHistogram> {
        self.labels.lock().clone()
    }

    /// Number of distinct labels seen (the memory footprint driver).
    pub fn label_count(&self) -> usize {
        self.labels.lock().len()
    }
}

impl SectionTool for HistogramTool {
    fn on_enter(&self, _info: &EnterInfo, _data: &mut SectionData) {}

    fn wants_enter(&self) -> bool {
        false
    }

    fn on_leave(&self, info: &LeaveInfo, _data: &SectionData) {
        self.labels
            .lock()
            .entry(info.label.to_string())
            .or_default()
            .record(info.duration.as_nanos());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SectionRuntime, VerifyMode};
    use machine::VTime;
    use mpisim::WorldBuilder;

    #[test]
    fn buckets_are_monotone_halfdecades() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert!(bucket_of(10) > bucket_of(3));
        assert!(bucket_of(1_000_000) > bucket_of(10_000));
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        for i in 1..BUCKETS {
            assert!(bucket_floor_ns(i) > bucket_floor_ns(i - 1));
        }
    }

    #[test]
    fn exact_aggregates_survive_reduction() {
        let mut h = DurationHistogram::default();
        for ns in [100u64, 200, 300, 1_000_000] {
            h.record(ns);
        }
        assert_eq!(h.total, 4);
        assert_eq!(h.min_ns, 100);
        assert_eq!(h.max_ns, 1_000_000);
        assert!((h.mean_secs() - 250_150.0 * 1e-9).abs() < 1e-15);
    }

    #[test]
    fn quantiles_land_in_the_right_decade() {
        let mut h = DurationHistogram::default();
        for _ in 0..99 {
            h.record(1_000); // 1 µs
        }
        h.record(1_000_000_000); // one 1 s outlier
        let median = h.quantile_floor_ns(0.5);
        assert!((100..=1_000).contains(&median), "{median}");
        let p999 = h.quantile_floor_ns(0.999);
        assert!(p999 >= 100_000_000, "{p999}");
        assert_eq!(h.quantile_floor_ns(0.0), h.quantile_floor_ns(1e-9));
    }

    #[test]
    fn merge_is_sum() {
        let mut a = DurationHistogram::default();
        let mut b = DurationHistogram::default();
        a.record(10);
        b.record(1_000_000);
        b.record(20);
        a.merge(&b);
        assert_eq!(a.total, 3);
        assert_eq!(a.min_ns, 10);
        assert_eq!(a.max_ns, 1_000_000);
    }

    #[test]
    fn memory_is_bounded_by_labels_not_events() {
        // 2 ranks x 500 instances x 2 labels = 2000 events -> 2 entries.
        let sections = SectionRuntime::new(VerifyMode::Off);
        let hist = HistogramTool::new();
        sections.attach(hist.clone());
        let s = sections.clone();
        WorldBuilder::new(2)
            .tool(sections.clone())
            .run(move |p| {
                let world = p.world();
                for i in 0..500u64 {
                    s.scoped(p, &world, "step", |p| {
                        p.advance(VTime::from_nanos(1_000 + i));
                    });
                    s.scoped(p, &world, "sync", |p| p.advance(VTime::from_nanos(50)));
                }
            })
            .unwrap();
        // MPI_MAIN + step + sync.
        assert_eq!(hist.label_count(), 3);
        let snap = hist.snapshot();
        assert_eq!(snap["step"].total, 1000);
        assert_eq!(snap["sync"].total, 1000);
        assert_eq!(snap["sync"].min_ns, 50);
        assert!(snap["step"].min_ns >= 1_000);
    }
}
