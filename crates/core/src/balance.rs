//! The section load-balance analysis interface — the paper's §8 future
//! work: "We are in the process of developing an MPI Section analysis
//! interface describing the load-balancing of Sections as shown in
//! Figure 3."
//!
//! Given a profiled section's per-rank time distribution, [`BalanceReport`]
//! derives the classic balance metrics a tool would display: the imbalance
//! factor `max/mean` (1.0 = perfect), the percent imbalance
//! `(max - mean)/max` (the fraction of the critical path spent waiting in
//! a balanced world), the Gini coefficient of the distribution, and the
//! most/least loaded ranks.

use crate::profiler::SectionStats;

/// Load-balance diagnosis of one section across its ranks.
///
/// ```
/// use mpi_sections::BalanceReport;
/// // Rank 3 does double work: rebalancing would save 0.75 s of the
/// // 2 s critical path.
/// let r = BalanceReport::from_distribution("EOS", &[1.0, 1.0, 1.0, 2.0]).unwrap();
/// assert_eq!(r.max, (3, 2.0));
/// assert!((r.potential_saving_secs() - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BalanceReport {
    /// The section's label.
    pub label: String,
    /// Ranks contributing (communicator size).
    pub ranks: usize,
    /// Mean per-rank inclusive time, seconds.
    pub mean_secs: f64,
    /// Minimum per-rank time and the rank achieving it.
    pub min: (usize, f64),
    /// Maximum per-rank time and the rank achieving it.
    pub max: (usize, f64),
    /// Imbalance factor `max / mean` (>= 1; 1 is perfect balance).
    pub imbalance_factor: f64,
    /// Percent imbalance `(max - mean) / max`, in `[0, 1)`. This equals
    /// the fraction of the slowest rank's time that perfect rebalancing
    /// would save.
    pub percent_imbalance: f64,
    /// Gini coefficient of the per-rank distribution, in `[0, 1)`.
    pub gini: f64,
    /// Standard deviation of per-rank times, seconds.
    pub stddev_secs: f64,
}

impl BalanceReport {
    /// Analyse a per-rank time distribution (seconds per rank).
    pub fn from_distribution(label: &str, per_rank: &[f64]) -> Option<BalanceReport> {
        if per_rank.is_empty() {
            return None;
        }
        let n = per_rank.len();
        let total: f64 = per_rank.iter().sum();
        let mean = total / n as f64;
        let (mut min_r, mut min_v) = (0usize, f64::INFINITY);
        let (mut max_r, mut max_v) = (0usize, f64::NEG_INFINITY);
        for (r, &v) in per_rank.iter().enumerate() {
            if v < min_v {
                min_r = r;
                min_v = v;
            }
            if v > max_v {
                max_r = r;
                max_v = v;
            }
        }
        let var = per_rank
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / n as f64;
        let gini = gini_coefficient(per_rank);
        Some(BalanceReport {
            label: label.to_string(),
            ranks: n,
            mean_secs: mean,
            min: (min_r, min_v),
            max: (max_r, max_v),
            imbalance_factor: if mean > 0.0 { max_v / mean } else { 1.0 },
            percent_imbalance: if max_v > 0.0 {
                (max_v - mean) / max_v
            } else {
                0.0
            },
            gini,
            stddev_secs: var.sqrt(),
        })
    }

    /// Analyse a profiled section's inclusive-time distribution.
    pub fn for_section(stats: &SectionStats) -> Option<BalanceReport> {
        BalanceReport::from_distribution(&stats.key.label, &stats.per_rank_own)
    }

    /// The time perfect rebalancing would save on the critical path, in
    /// seconds: `max - mean`.
    pub fn potential_saving_secs(&self) -> f64 {
        (self.max.1 - self.mean_secs).max(0.0)
    }

    /// A one-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} ranks, mean {:.3}s, max {:.3}s on rank {}, \
             imbalance x{:.2} ({:.1}% of critical path), gini {:.3}",
            self.label,
            self.ranks,
            self.mean_secs,
            self.max.1,
            self.max.0,
            self.imbalance_factor,
            self.percent_imbalance * 100.0,
            self.gini,
        )
    }
}

/// Gini coefficient of a non-negative distribution (0 = all equal).
fn gini_coefficient(values: &[f64]) -> f64 {
    let n = values.len();
    if n < 2 {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let total: f64 = sorted.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    // G = (2 * Σ_i i*x_i) / (n * Σ x) - (n + 1)/n with 1-based i.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i + 1) as f64 * x)
        .sum();
    (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
}

/// Rank all sections of a profile by potential rebalancing saving,
/// largest first — "where should I look first".
pub fn rank_by_saving(profile: &crate::Profile) -> Vec<BalanceReport> {
    let mut out: Vec<BalanceReport> = profile
        .sections()
        .filter(|s| s.key.label != crate::section::MPI_MAIN)
        .filter_map(BalanceReport::for_section)
        .collect();
    out.sort_by(|a, b| {
        b.potential_saving_secs()
            .partial_cmp(&a.potential_saving_secs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_balanced() {
        let r = BalanceReport::from_distribution("x", &[2.0, 2.0, 2.0, 2.0]).unwrap();
        assert_eq!(r.imbalance_factor, 1.0);
        assert_eq!(r.percent_imbalance, 0.0);
        assert!(r.gini.abs() < 1e-12);
        assert_eq!(r.stddev_secs, 0.0);
        assert_eq!(r.potential_saving_secs(), 0.0);
    }

    #[test]
    fn skewed_distribution() {
        // Rank 3 does double work.
        let r = BalanceReport::from_distribution("x", &[1.0, 1.0, 1.0, 2.0]).unwrap();
        assert_eq!(r.max, (3, 2.0));
        assert_eq!(r.min.1, 1.0);
        assert!((r.mean_secs - 1.25).abs() < 1e-12);
        assert!((r.imbalance_factor - 1.6).abs() < 1e-12);
        assert!((r.percent_imbalance - 0.375).abs() < 1e-12);
        assert!((r.potential_saving_secs() - 0.75).abs() < 1e-12);
        assert!(r.gini > 0.0);
    }

    #[test]
    fn gini_extremes() {
        assert!(gini_coefficient(&[1.0, 1.0, 1.0]) < 1e-12);
        // All load on one rank out of many: G -> (n-1)/n.
        let mut v = vec![0.0; 10];
        v[0] = 5.0;
        let g = gini_coefficient(&v);
        assert!((g - 0.9).abs() < 1e-9, "{g}");
        assert_eq!(gini_coefficient(&[1.0]), 0.0);
        assert_eq!(gini_coefficient(&[]), 0.0);
        assert_eq!(gini_coefficient(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn empty_distribution() {
        assert!(BalanceReport::from_distribution("x", &[]).is_none());
    }

    #[test]
    fn zero_work_is_balanced() {
        let r = BalanceReport::from_distribution("x", &[0.0, 0.0]).unwrap();
        assert_eq!(r.imbalance_factor, 1.0);
        assert_eq!(r.percent_imbalance, 0.0);
    }

    #[test]
    fn summary_contains_essentials() {
        let r = BalanceReport::from_distribution("HALO", &[1.0, 3.0]).unwrap();
        let s = r.summary();
        assert!(s.contains("HALO"));
        assert!(s.contains("rank 1"));
    }
}
