//! # mpi-sections — the paper's `MPI_Section` abstraction
//!
//! This crate implements the primary contribution of *"Towards a Better
//! Expressiveness of the Speedup Metric in MPI Context"* (Besnard et al.,
//! ICPP Workshops 2017): a compact, tool-oriented MPI interface that
//! outlines *distributed* phases of an MPI program.
//!
//! ## The interface (paper Fig. 1 and Fig. 2)
//!
//! ```c
//! int MPIX_Section_enter(MPI_Comm comm, const char *label);
//! int MPIX_Section_exit (MPI_Comm comm, const char *label);
//! ```
//!
//! Here: [`mpix_section_enter`]/[`mpix_section_exit`] (or the equivalent
//! methods on [`SectionRuntime`]). Sections are asynchronous collectives:
//! no synchronization is added, but every rank of the communicator must
//! traverse the same section sequence — optionally verified by the runtime
//! ([`VerifyMode`]). Sections nest perfectly; the implicit [`MPI_MAIN`]
//! section opens at `MPI_Init` and closes at `MPI_Finalize`.
//!
//! Tools observe sections through the callback interface ([`SectionTool`],
//! the Rust shape of the paper's `MPIX_Section_enter_cb`/`leave_cb`),
//! including the 32-byte `data` blob the runtime preserves between enter
//! and leave. The bundled [`SectionProfiler`] computes the paper's Fig. 3
//! metrics — `Tmin`, `Tin`, `Tout`, `Tsection`, `Tmax`, entry imbalance and
//! section imbalance — in streaming form.
//!
//! ## Example
//!
//! ```
//! use mpi_sections::{SectionRuntime, SectionProfiler, VerifyMode};
//! use mpisim::WorldBuilder;
//!
//! let sections = SectionRuntime::new(VerifyMode::Active);
//! let profiler = SectionProfiler::new();
//! sections.attach(profiler.clone());
//! let s = sections.clone();
//!
//! WorldBuilder::new(4)
//!     .tool(sections.clone())       // MPI_MAIN + PMPI interception
//!     .run(move |p| {
//!         let world = p.world();
//!         s.scoped(p, &world, "COMPUTE", |p| p.advance_secs(1.0));
//!     })
//!     .unwrap();
//!
//! let profile = profiler.snapshot();
//! let compute = profile.get_world("COMPUTE").unwrap();
//! assert_eq!(compute.instances, 1);
//! assert!((compute.total_own_secs - 4.0).abs() < 1e-9);
//! ```

pub mod balance;
pub mod compare;
pub mod context;
pub mod critpath;
pub mod efficiency;
pub mod fasthash;
pub mod histogram;
pub mod metrics;
pub mod pcontrol;
pub mod profiler;
pub mod pvar;
pub mod replay;
pub mod report;
pub mod section;
pub mod sketch;
pub mod summary;
pub mod timeline;
pub mod tool;
pub mod trace;
pub mod waitstate;
pub mod whatif;

pub use balance::BalanceReport;
pub use compare::{ProfileComparison, SectionScaling};
pub use context::ContextTool;
pub use critpath::CriticalPath;
pub use efficiency::Efficiencies;
pub use histogram::{DurationHistogram, HistogramTool};
pub use metrics::InstanceStats;
pub use pcontrol::PcontrolAdapter;
pub use profiler::{Profile, SectionKey, SectionProfiler, SectionStats};
pub use pvar::{PvarRegistry, PvarSnapshot};
pub use replay::replay;
pub use report::{render, render_bounds, ReportOptions};
pub use section::{SectionRuntime, VerifyMode, MPI_MAIN};
pub use sketch::{QuantileSketch, SpaceSaving};
pub use summary::{RunSummary, SummaryTool, SUMMARY_AUTO_RANKS};
pub use timeline::{Timeline, Window, WindowSection, Windowing};
pub use tool::{EnterInfo, LeaveInfo, SectionTool};
pub use trace::{SpanEvent, TraceTool};
pub use waitstate::{classify, CommLog, CommRecorder, WaitStateReport};
pub use whatif::{WaitClass, WhatIfSpec};

use mpisim::{Comm, Proc};

/// Paper-faithful spelling of `MPIX_Section_enter` (Fig. 1).
pub fn mpix_section_enter(runtime: &SectionRuntime, p: &mut Proc, comm: &Comm, label: &str) {
    runtime.enter(p, comm, label);
}

/// Paper-faithful spelling of `MPIX_Section_exit` (Fig. 1).
pub fn mpix_section_exit(runtime: &SectionRuntime, p: &mut Proc, comm: &Comm, label: &str) {
    runtime.exit(p, comm, label);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::WorldBuilder;

    #[test]
    fn free_function_spelling_works() {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let profiler = SectionProfiler::new();
        sections.attach(profiler.clone());
        let s = sections.clone();
        WorldBuilder::new(2)
            .tool(sections.clone())
            .run(move |p| {
                let world = p.world();
                mpix_section_enter(&s, p, &world, "PHASE");
                p.advance_secs(1.0);
                mpix_section_exit(&s, p, &world, "PHASE");
            })
            .unwrap();
        let profile = profiler.snapshot();
        assert!(profile.get_world("PHASE").is_some());
    }
}
