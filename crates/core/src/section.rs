//! The `MPI_Section` runtime: per-communicator nesting stacks, invariant
//! verification, and tool notification.
//!
//! This is the reference implementation the paper describes in §4: "Our
//! reference implementation simply manipulates a stack of contexts for each
//! communicator, calling tool callbacks upon enter and exit events." The
//! 32-byte `data` blob of the callback interface (Fig. 2) is owned by the
//! runtime and preserved between the enter and the matching leave.
//!
//! Invariants enforced (the paper's "non-intrusive synchronization
//! primitives which could be selectively enabled"):
//!
//! * **Perfect nesting** (always on — it is a local check): the label of an
//!   exit must match the innermost open section on that communicator.
//! * **Collective consistency** ([`VerifyMode::Active`], the default):
//!   every rank of a communicator must traverse the same sequence of
//!   section enters/exits. The check shares a per-communicator event log
//!   guarded by a mutex — no time synchronization is introduced, only
//!   detection. This is the paper's "selectively enabled" switch: pass
//!   [`VerifyMode::Off`] for production-scale sweeps, where the shared
//!   log's lock traffic and growth are measurable.

use crate::tool::{EnterInfo, LeaveInfo, SectionTool};
use machine::VTime;
use mpisim::{
    diag, Comm, CommId, Diagnostic, DiagnosticKind, MpiEvent, Proc, SectionData, Severity, Tool,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// The label of the implicit outermost section, entered at `MPI_Init` and
/// left at `MPI_Finalize` (paper §4).
pub const MPI_MAIN: &str = "MPI_MAIN";

/// Whether cross-rank section-ordering verification is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyMode {
    /// No cross-rank checking (production profile, zero shared state).
    /// Use this for large sweeps: verification funnels every enter/exit
    /// through one shared log.
    Off,
    /// Shared-log verification of section order across ranks (default:
    /// misuse should be loud while developing).
    #[default]
    Active,
}

/// One open section on one rank.
struct Frame {
    label: Arc<str>,
    data: SectionData,
    enter: VTime,
    /// Virtual time spent in already-closed child sections (for exclusive
    /// time computation).
    child_time: VTime,
    /// Occurrence index of this (comm, label) pair on this rank.
    occurrence: u64,
}

/// Per-rank, per-communicator section state.
#[derive(Default)]
struct RankComms {
    /// Open-section stack per communicator.
    stacks: HashMap<CommId, Vec<Frame>>,
    /// Occurrence counters per (communicator, label).
    occurrences: HashMap<(CommId, Arc<str>), u64>,
    /// Count of section events (enters + exits) this rank performed, over
    /// all communicators — the event index carried by misuse diagnostics.
    events: u64,
}

/// One record of the shared verification log.
#[derive(Debug, Clone, PartialEq, Eq)]
enum VerifyEvent {
    Enter(Arc<str>),
    Exit(Arc<str>),
}

/// Shared verification state of one communicator.
#[derive(Default)]
struct CommVerify {
    /// The agreed sequence of section events (grown by the first rank to
    /// perform each step).
    log: Vec<VerifyEvent>,
    /// How far each world rank has progressed through the log.
    position: HashMap<usize, usize>,
}

const SHARDS: usize = 64;

/// The section runtime. Register it as an `mpisim` tool (for the implicit
/// `MPI_MAIN` section) and call [`SectionRuntime::enter`]/[`exit`] from the
/// application — or the `MPIX_*` free functions in the crate root for
/// paper-faithful spelling.
///
/// [`exit`]: SectionRuntime::exit
pub struct SectionRuntime {
    /// Rank state, sharded by world rank to keep enter/exit non-intrusive.
    shards: Vec<Mutex<HashMap<usize, RankComms>>>,
    verify: VerifyMode,
    verify_state: Mutex<HashMap<CommId, CommVerify>>,
    tools: Mutex<Vec<Arc<dyn SectionTool>>>,
}

impl SectionRuntime {
    /// A runtime with the given verification mode and no tools.
    pub fn new(verify: VerifyMode) -> Arc<SectionRuntime> {
        Arc::new(SectionRuntime {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            verify,
            verify_state: Mutex::new(HashMap::new()),
            tools: Mutex::new(Vec::new()),
        })
    }

    /// Attach a section tool (profiler, debugger, trace writer).
    pub fn attach(&self, tool: Arc<dyn SectionTool>) {
        self.tools.lock().push(tool);
    }

    /// Enter a section on `comm`. Asynchronous collective: no rank blocks,
    /// but all ranks of `comm` must perform the same call.
    pub fn enter(&self, p: &mut Proc, comm: &Comm, label: &str) {
        let info = CommInfo {
            id: comm.id(),
            size: comm.size(),
            rank: comm.rank(),
        };
        self.enter_at(p.world_rank(), info, label, p.now());
        // Raise the PMPI-level event so generic mpisim tools also see it.
        p.raise(MpiEvent::SectionEnter {
            comm: comm.id(),
            comm_size: comm.size(),
            comm_rank: comm.rank(),
            label: Arc::from(label),
            data: [0; 32],
            time: p.now(),
        });
    }

    /// Exit a section on `comm`. The label must match the innermost open
    /// section (perfect nesting, paper §4).
    pub fn exit(&self, p: &mut Proc, comm: &Comm, label: &str) {
        let info = CommInfo {
            id: comm.id(),
            size: comm.size(),
            rank: comm.rank(),
        };
        let data = self.exit_at(p.world_rank(), info, label, p.now());
        p.raise(MpiEvent::SectionLeave {
            comm: comm.id(),
            comm_size: comm.size(),
            comm_rank: comm.rank(),
            label: Arc::from(label),
            data,
            time: p.now(),
        });
    }

    /// Run `body` inside a section (exit guaranteed on normal return).
    pub fn scoped<R>(
        &self,
        p: &mut Proc,
        comm: &Comm,
        label: &str,
        body: impl FnOnce(&mut Proc) -> R,
    ) -> R {
        self.enter(p, comm, label);
        let out = body(p);
        self.exit(p, comm, label);
        out
    }

    /// Enter a world-communicator section on behalf of a rank from a tool
    /// context (no `Proc` at hand) — used by adapters such as
    /// [`crate::pcontrol::PcontrolAdapter`]. PMPI-level section events are
    /// *not* re-raised (the caller is already below the PMPI layer).
    pub fn enter_world_section(
        &self,
        world_rank: usize,
        world_size: usize,
        label: &str,
        time: VTime,
    ) {
        self.enter_at(
            world_rank,
            CommInfo {
                id: CommId::WORLD,
                size: world_size,
                rank: world_rank,
            },
            label,
            time,
        );
    }

    /// Counterpart of [`SectionRuntime::enter_world_section`].
    pub fn exit_world_section(
        &self,
        world_rank: usize,
        world_size: usize,
        label: &str,
        time: VTime,
    ) {
        let _ = self.exit_at(
            world_rank,
            CommInfo {
                id: CommId::WORLD,
                size: world_size,
                rank: world_rank,
            },
            label,
            time,
        );
    }

    /// Depth of open sections for a rank on a communicator (diagnostics).
    pub fn depth(&self, world_rank: usize, comm: CommId) -> usize {
        let shard = self.shards[world_rank % SHARDS].lock();
        shard
            .get(&world_rank)
            .and_then(|rc| rc.stacks.get(&comm))
            .map_or(0, |s| s.len())
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn enter_at(&self, world_rank: usize, comm: CommInfo, label: &str, now: VTime) {
        let label: Arc<str> = Arc::from(label);
        self.verify_step(world_rank, comm.id, VerifyEvent::Enter(label.clone()));
        let (occurrence, depth) = {
            let mut shard = self.shards[world_rank % SHARDS].lock();
            let rc = shard.entry(world_rank).or_default();
            rc.events += 1;
            let counter = rc.occurrences.entry((comm.id, label.clone())).or_insert(0);
            let occurrence = *counter;
            *counter += 1;
            let stack = rc.stacks.entry(comm.id).or_default();
            let depth = stack.len();
            stack.push(Frame {
                label: label.clone(),
                data: [0; 32],
                enter: now,
                child_time: VTime::ZERO,
                occurrence,
            });
            (occurrence, depth)
        };
        let info = EnterInfo {
            world_rank,
            comm: comm.id,
            comm_size: comm.size,
            comm_rank: comm.rank,
            label: label.clone(),
            time: now,
            occurrence,
            depth,
        };
        // Tools may write their context into the 32-byte blob; the runtime
        // stores whatever they leave there.
        let mut data = [0u8; 32];
        for tool in self.tools.lock().iter() {
            tool.on_enter(&info, &mut data);
        }
        if data != [0u8; 32] {
            let mut shard = self.shards[world_rank % SHARDS].lock();
            if let Some(frame) = shard
                .get_mut(&world_rank)
                .and_then(|rc| rc.stacks.get_mut(&comm.id))
                .and_then(|s| s.last_mut())
            {
                frame.data = data;
            }
        }
    }

    fn exit_at(&self, world_rank: usize, comm: CommInfo, label: &str, now: VTime) -> SectionData {
        let label: Arc<str> = Arc::from(label);
        self.verify_step(world_rank, comm.id, VerifyEvent::Exit(label.clone()));
        let (frame, depth) = {
            let mut shard = self.shards[world_rank % SHARDS].lock();
            let rc = shard.entry(world_rank).or_default();
            let event_index = rc.events;
            rc.events += 1;
            let stack = rc.stacks.entry(comm.id).or_default();
            let open: Vec<String> = stack.iter().map(|f| f.label.to_string()).collect();
            let frame = stack.pop().unwrap_or_else(|| {
                section_misuse(
                    world_rank,
                    comm.id,
                    open.clone(),
                    event_index,
                    format!(
                        "mpi-sections: exit of '{label}' on rank {world_rank} \
                         with no open section"
                    ),
                )
            });
            if frame.label != label {
                section_misuse(
                    world_rank,
                    comm.id,
                    open,
                    event_index,
                    format!(
                        "mpi-sections: imperfect nesting on rank {world_rank}: \
                         exiting '{label}' but innermost open section is '{}'",
                        frame.label
                    ),
                );
            }
            let duration = now - frame.enter;
            // Credit our inclusive duration to the parent's child time.
            if let Some(parent) = stack.last_mut() {
                parent.child_time += duration;
            }
            (frame, stack.len())
        };
        let duration = now - frame.enter;
        let exclusive = duration - frame.child_time;
        let info = LeaveInfo {
            world_rank,
            comm: comm.id,
            comm_size: comm.size,
            comm_rank: comm.rank,
            label,
            enter_time: frame.enter,
            time: now,
            duration,
            exclusive,
            occurrence: frame.occurrence,
            depth,
        };
        for tool in self.tools.lock().iter() {
            tool.on_leave(&info, &frame.data);
        }
        frame.data
    }

    fn verify_step(&self, world_rank: usize, comm: CommId, event: VerifyEvent) {
        if self.verify == VerifyMode::Off {
            return;
        }
        let mut state = self.verify_state.lock();
        let cv = state.entry(comm).or_default();
        let pos = cv.position.entry(world_rank).or_insert(0);
        if *pos == cv.log.len() {
            cv.log.push(event);
        } else {
            assert!(
                *pos < cv.log.len(),
                "mpi-sections: verification position overran the log"
            );
            if cv.log[*pos] != event {
                let message = format!(
                    "mpi-sections: section order violation on rank {world_rank}: \
                     expected {:?} at step {pos}, got {event:?}",
                    cv.log[*pos]
                );
                let (label_stack, event_index) = self.rank_snapshot(world_rank, comm);
                section_misuse(world_rank, comm, label_stack, event_index, message);
            }
        }
        *pos += 1;
    }

    /// Open labels on `comm` plus the rank's next section-event index
    /// (misuse-diagnostic context). Lock order is `verify_state` → shard,
    /// consistently with the callers.
    fn rank_snapshot(&self, world_rank: usize, comm: CommId) -> (Vec<String>, u64) {
        let shard = self.shards[world_rank % SHARDS].lock();
        match shard.get(&world_rank) {
            Some(rc) => {
                let labels = rc
                    .stacks
                    .get(&comm)
                    .map(|s| s.iter().map(|f| f.label.to_string()).collect())
                    .unwrap_or_default();
                (labels, rc.events)
            }
            None => (Vec::new(), 0),
        }
    }
}

/// Abort the calling rank with a [`DiagnosticKind::SectionMisuse`] finding.
fn section_misuse(
    world_rank: usize,
    comm: CommId,
    label_stack: Vec<String>,
    event_index: u64,
    message: String,
) -> ! {
    diag::abort_with(vec![Diagnostic {
        kind: DiagnosticKind::SectionMisuse {
            label_stack,
            event_index,
        },
        severity: Severity::Error,
        ranks: vec![world_rank],
        comm: Some(comm),
        message,
    }]);
}

#[derive(Clone, Copy)]
struct CommInfo {
    id: CommId,
    size: usize,
    rank: usize,
}

/// `MPI_MAIN` management: as an `mpisim` tool, the runtime opens the
/// implicit section at `Init` and closes it at `Finalize` (paper §4).
impl Tool for SectionRuntime {
    fn on_event(&self, world_rank: usize, event: &MpiEvent) {
        match event {
            MpiEvent::Init { size, time } => {
                self.enter_at(
                    world_rank,
                    CommInfo {
                        id: CommId::WORLD,
                        size: *size,
                        rank: world_rank,
                    },
                    MPI_MAIN,
                    *time,
                );
            }
            MpiEvent::Finalize { time } => {
                // Comm size is not carried by Finalize; MPI_MAIN lives on
                // the world communicator whose size tools already saw at
                // Init, so 0 participants here is treated as "unchanged".
                let _ = self.exit_at(
                    world_rank,
                    CommInfo {
                        id: CommId::WORLD,
                        size: 0,
                        rank: world_rank,
                    },
                    MPI_MAIN,
                    *time,
                );
            }
            _ => {}
        }
    }

    /// When a rank panics, report its open-section stacks so the failure
    /// message carries the phase the rank died in.
    fn rank_context(&self, world_rank: usize) -> Option<String> {
        let shard = self.shards[world_rank % SHARDS].lock();
        let rc = shard.get(&world_rank)?;
        let mut parts: Vec<String> = rc
            .stacks
            .iter()
            .filter(|(_, stack)| !stack.is_empty())
            .map(|(comm, stack)| {
                let labels: Vec<&str> = stack.iter().map(|f| &*f.label).collect();
                format!("comm {}: {}", comm.0, labels.join(" > "))
            })
            .collect();
        if parts.is_empty() {
            return None;
        }
        parts.sort();
        Some(format!("open sections: {}", parts.join("; ")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::WorldBuilder;

    #[test]
    fn enter_exit_roundtrip_and_depth() {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let s = sections.clone();
        WorldBuilder::new(2)
            .run(move |p| {
                let world = p.world();
                s.enter(p, &world, "outer");
                assert_eq!(s.depth(p.world_rank(), world.id()), 1);
                s.enter(p, &world, "inner");
                assert_eq!(s.depth(p.world_rank(), world.id()), 2);
                s.exit(p, &world, "inner");
                s.exit(p, &world, "outer");
                assert_eq!(s.depth(p.world_rank(), world.id()), 0);
            })
            .unwrap();
    }

    #[test]
    fn imperfect_nesting_panics() {
        let sections = SectionRuntime::new(VerifyMode::Off);
        let s = sections.clone();
        let result = WorldBuilder::new(1).run(move |p| {
            let world = p.world();
            s.enter(p, &world, "a");
            s.enter(p, &world, "b");
            s.exit(p, &world, "a"); // wrong: b is innermost
        });
        let err = result.unwrap_err();
        assert!(err.to_string().contains("imperfect nesting"), "{err}");
    }

    #[test]
    fn exit_without_enter_panics() {
        let sections = SectionRuntime::new(VerifyMode::Off);
        let s = sections.clone();
        let result = WorldBuilder::new(1).run(move |p| {
            let world = p.world();
            s.exit(p, &world, "phantom");
        });
        assert!(result.is_err());
    }

    #[test]
    fn imperfect_nesting_yields_structured_diagnostic() {
        let sections = SectionRuntime::new(VerifyMode::Off);
        let s = sections.clone();
        let err = WorldBuilder::new(1)
            .run(move |p| {
                let world = p.world();
                s.enter(p, &world, "a");
                s.enter(p, &world, "b");
                s.exit(p, &world, "a");
            })
            .unwrap_err();
        let diags = err.diagnostics();
        assert_eq!(diags.len(), 1, "{err}");
        let d = &diags[0];
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.ranks, vec![0]);
        assert_eq!(d.comm, Some(CommId::WORLD));
        match &d.kind {
            DiagnosticKind::SectionMisuse {
                label_stack,
                event_index,
            } => {
                assert_eq!(label_stack, &["a".to_string(), "b".to_string()]);
                // Two enters precede the offending exit.
                assert_eq!(*event_index, 2);
            }
            other => panic!("expected SectionMisuse, got {other:?}"),
        }
    }

    #[test]
    fn rank_panic_carries_open_section_stack() {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let s = sections.clone();
        let err = WorldBuilder::new(1)
            .tool(sections.clone())
            .run(move |p| {
                let world = p.world();
                s.enter(p, &world, "phase");
                panic!("boom");
            })
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("boom"), "{msg}");
        assert!(msg.contains("open sections"), "{msg}");
        assert!(msg.contains("MPI_MAIN > phase"), "{msg}");
    }

    #[test]
    fn cross_rank_order_violation_detected() {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let s = sections.clone();
        let result = WorldBuilder::new(2).run(move |p| {
            let world = p.world();
            // Rank 0 and rank 1 disagree on the first section label.
            let label = if p.world_rank() == 0 { "compute" } else { "io" };
            s.enter(p, &world, label);
            s.exit(p, &world, label);
        });
        let err = result.unwrap_err();
        assert!(err.to_string().contains("section order violation"), "{err}");
    }

    #[test]
    fn verification_off_tolerates_divergence() {
        let sections = SectionRuntime::new(VerifyMode::Off);
        let s = sections.clone();
        // Divergent labels are (wrongly) accepted when checking is off —
        // exactly the paper's "selectively enabled" tradeoff.
        WorldBuilder::new(2)
            .run(move |p| {
                let world = p.world();
                let label = if p.world_rank() == 0 { "compute" } else { "io" };
                s.enter(p, &world, label);
                s.exit(p, &world, label);
            })
            .unwrap();
    }

    #[test]
    fn scoped_runs_body_and_closes() {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let s = sections.clone();
        let report = WorldBuilder::new(1)
            .run(move |p| {
                let world = p.world();
                let out = s.scoped(p, &world, "phase", |p| {
                    p.advance_secs(1.0);
                    42
                });
                assert_eq!(s.depth(p.world_rank(), world.id()), 0);
                out
            })
            .unwrap();
        assert_eq!(report.results[0], 42);
    }

    #[test]
    fn sections_per_communicator_are_independent() {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let s = sections.clone();
        WorldBuilder::new(4)
            .run(move |p| {
                let world = p.world();
                let sub = world
                    .split(p, Some((p.world_rank() % 2) as i32), 0)
                    .unwrap();
                s.enter(p, &world, "global");
                s.enter(p, &sub, "local");
                // Independent stacks: exit order across comms is free.
                s.exit(p, &world, "global");
                s.exit(p, &sub, "local");
            })
            .unwrap();
    }

    #[test]
    fn occurrences_count_up() {
        struct LastOccurrence(Mutex<u64>);
        impl SectionTool for LastOccurrence {
            fn on_enter(&self, info: &EnterInfo, _data: &mut SectionData) {
                if &*info.label == "step" {
                    *self.0.lock() = info.occurrence;
                }
            }
            fn on_leave(&self, _info: &LeaveInfo, _data: &SectionData) {}
        }
        let tool = Arc::new(LastOccurrence(Mutex::new(0)));
        let sections = SectionRuntime::new(VerifyMode::Active);
        sections.attach(tool.clone());
        let s = sections.clone();
        WorldBuilder::new(1)
            .run(move |p| {
                let world = p.world();
                for _ in 0..5 {
                    s.scoped(p, &world, "step", |_| {});
                }
            })
            .unwrap();
        assert_eq!(*tool.0.lock(), 4);
    }

    #[test]
    fn tool_data_preserved_between_enter_and_leave() {
        // A tool stores its own timestamp in the 32-byte blob at enter and
        // reads it back at leave — the paper's motivating use of `data`.
        struct StampTool {
            observed: Mutex<Vec<(u64, u64)>>,
        }
        impl SectionTool for StampTool {
            fn on_enter(&self, info: &EnterInfo, data: &mut SectionData) {
                data[..8].copy_from_slice(&info.time.as_nanos().to_le_bytes());
            }
            fn on_leave(&self, info: &LeaveInfo, data: &SectionData) {
                let stamped = u64::from_le_bytes(data[..8].try_into().unwrap());
                self.observed.lock().push((stamped, info.time.as_nanos()));
            }
        }
        let tool = Arc::new(StampTool {
            observed: Mutex::new(Vec::new()),
        });
        let sections = SectionRuntime::new(VerifyMode::Active);
        sections.attach(tool.clone());
        let s = sections.clone();
        WorldBuilder::new(1)
            .run(move |p| {
                let world = p.world();
                p.advance_secs(1.0);
                s.enter(p, &world, "phase");
                p.advance_secs(2.0);
                s.exit(p, &world, "phase");
            })
            .unwrap();
        let observed = tool.observed.lock();
        assert_eq!(observed.len(), 1);
        let (stamped, leave) = observed[0];
        assert_eq!(stamped, 1_000_000_000);
        assert_eq!(leave, 3_000_000_000);
    }
}
