//! The `MPI_Section` runtime: per-communicator nesting stacks, invariant
//! verification, and tool notification.
//!
//! This is the reference implementation the paper describes in §4: "Our
//! reference implementation simply manipulates a stack of contexts for each
//! communicator, calling tool callbacks upon enter and exit events." The
//! 32-byte `data` blob of the callback interface (Fig. 2) is owned by the
//! runtime and preserved between the enter and the matching leave.
//!
//! Invariants enforced (the paper's "non-intrusive synchronization
//! primitives which could be selectively enabled"):
//!
//! * **Perfect nesting** (always on — it is a local check): the label of an
//!   exit must match the innermost open section on that communicator.
//! * **Collective consistency** ([`VerifyMode::Active`], the default):
//!   every rank of a communicator must traverse the same sequence of
//!   section enters/exits. The check shares a per-communicator event log
//!   guarded by a mutex — no time synchronization is introduced, only
//!   detection. This is the paper's "selectively enabled" switch: pass
//!   [`VerifyMode::Off`] for production-scale sweeps, where the shared
//!   log's lock traffic and growth are measurable.

use crate::fasthash::FastMap;
use crate::tool::{EnterInfo, LeaveInfo, SectionTool};
use machine::VTime;
use mpisim::{
    diag, Comm, CommId, Diagnostic, DiagnosticKind, EventKind, EventMask, MpiEvent, Proc,
    SectionData, Severity, Tool,
};
use parking_lot::Mutex;
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// The label of the implicit outermost section, entered at `MPI_Init` and
/// left at `MPI_Finalize` (paper §4).
pub const MPI_MAIN: &str = "MPI_MAIN";

/// Whether cross-rank section-ordering verification is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyMode {
    /// No cross-rank checking (production profile, zero shared state).
    /// Use this for large sweeps: verification funnels every enter/exit
    /// through one shared log.
    Off,
    /// Shared-log verification of section order across ranks (default:
    /// misuse should be loud while developing).
    #[default]
    Active,
}

/// One open section on one rank.
struct Frame {
    label: Arc<str>,
    /// Dense runtime-wide id of the (comm, label) section.
    id: u32,
    data: SectionData,
    enter: VTime,
    /// Virtual time spent in already-closed child sections (for exclusive
    /// time computation).
    child_time: VTime,
    /// Occurrence index of this (comm, label) pair on this rank.
    occurrence: u64,
}

/// Per-(rank, comm) state of one label: occurrence counter plus the
/// runtime-wide dense section id, both resolved by the same hash probe.
struct LabelSlot {
    count: Cell<u64>,
    id: u32,
}

/// One rank's section state on one communicator.
#[derive(Default)]
struct CommSections {
    /// Open-section stack.
    stack: Vec<Frame>,
    /// Occurrence counter per label. The map's keys double as the label
    /// intern table: after the first enter of a label, subsequent enters
    /// clone the existing `Arc<str>` instead of re-allocating (the
    /// dominant cost of the old hot path). `Cell` lets one probe both
    /// yield the interned key and bump the counter.
    occurrences: FastMap<Arc<str>, LabelSlot>,
    /// Count of section events (enters + exits) on this (rank, comm).
    /// Misuse diagnostics carry the rank-wide index, recovered (cold path
    /// only) by summing over the rank's communicators.
    events: u64,
}

/// Shard state: per-(rank, communicator) section stacks. Keying the flat
/// map by the pair instead of nesting rank → comm maps halves the hash
/// probes on the enter/exit hot path.
type Shard = FastMap<(usize, CommId), CommSections>;

/// Rank-wide section-event count (sum over the rank's communicators); all
/// of a rank's entries live in one shard because the shard index is
/// derived from the rank alone.
fn rank_events(shard: &Shard, world_rank: usize) -> u64 {
    shard
        .iter()
        .filter(|((r, _), _)| *r == world_rank)
        .map(|(_, cs)| cs.events)
        .sum()
}

/// One record of the shared verification log.
#[derive(Debug, Clone, PartialEq, Eq)]
enum VerifyEvent {
    Enter(Arc<str>),
    Exit(Arc<str>),
}

/// Shared verification state of one communicator.
#[derive(Default)]
struct CommVerify {
    /// The agreed sequence of section events (grown by the first rank to
    /// perform each step).
    log: Vec<VerifyEvent>,
    /// How far each world rank has progressed through the log.
    position: FastMap<usize, usize>,
}

const SHARDS: usize = 64;

/// Fixed tool-slot capacity (see [`SectionRuntime::attach`]).
const MAX_TOOLS: usize = 16;

/// The section runtime. Register it as an `mpisim` tool (for the implicit
/// `MPI_MAIN` section) and call [`SectionRuntime::enter`]/[`exit`] from the
/// application — or the `MPIX_*` free functions in the crate root for
/// paper-faithful spelling.
///
/// [`exit`]: SectionRuntime::exit
pub struct SectionRuntime {
    /// Rank state, sharded by world rank to keep enter/exit non-intrusive.
    shards: Vec<Mutex<Shard>>,
    verify: VerifyMode,
    verify_state: Mutex<FastMap<CommId, CommVerify>>,
    /// Attached tools in fixed write-once slots: the dispatch loop reads
    /// them lock-free (`OnceLock::get` is one `Acquire` load), which
    /// matters because every section exit walks this list.
    tools: [OnceLock<Arc<dyn SectionTool>>; MAX_TOOLS],
    /// Count of published tool slots — lets the hot path skip the
    /// `LeaveInfo` build entirely when no tool is attached.
    n_tools: AtomicUsize,
    /// Cached count of tools whose [`SectionTool::wants_enter`] is true;
    /// when zero, enters skip `EnterInfo` and the dispatch chain.
    n_enter_tools: AtomicUsize,
    /// Runtime-wide dense id per (comm, label) section, assigned in
    /// first-seen order. Only consulted on a rank's *first* enter of a
    /// label (cold); afterwards the id rides in the rank's `LabelSlot`.
    ids: Mutex<FastMap<(CommId, Arc<str>), u32>>,
}

impl SectionRuntime {
    /// A runtime with the given verification mode and no tools.
    pub fn new(verify: VerifyMode) -> Arc<SectionRuntime> {
        Arc::new(SectionRuntime {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(FastMap::default()))
                .collect(),
            verify,
            verify_state: Mutex::new(FastMap::default()),
            tools: std::array::from_fn(|_| OnceLock::new()),
            n_tools: AtomicUsize::new(0),
            n_enter_tools: AtomicUsize::new(0),
            ids: Mutex::new(FastMap::default()),
        })
    }

    /// Attach a section tool (profiler, debugger, trace writer). Tools are
    /// expected to be attached during setup, before ranks start entering
    /// sections.
    pub fn attach(&self, tool: Arc<dyn SectionTool>) {
        let wants_enter = tool.wants_enter();
        let n = self.n_tools.load(Ordering::Acquire);
        assert!(
            n < MAX_TOOLS,
            "mpi-sections: at most {MAX_TOOLS} section tools can be attached"
        );
        if self.tools[n].set(tool).is_err() {
            panic!("mpi-sections: concurrent attach; attach tools before the run starts");
        }
        if wants_enter {
            self.n_enter_tools.fetch_add(1, Ordering::Release);
        }
        self.n_tools.store(n + 1, Ordering::Release);
    }

    /// Enter a section on `comm`. Asynchronous collective: no rank blocks,
    /// but all ranks of `comm` must perform the same call.
    pub fn enter(&self, p: &mut Proc, comm: &Comm, label: &str) {
        let info = CommInfo {
            id: comm.id(),
            size: comm.size(),
            rank: comm.rank(),
        };
        // Raise the PMPI-level event so generic mpisim tools also see it —
        // but only when one subscribed: building it clones the label and
        // fans out through the tool chain, which dwarfs the bookkeeping.
        let want = p.wants(EventKind::SectionEnter);
        let label = self.enter_at(p.world_rank(), info, label, p.now(), want);
        if let Some(label) = label {
            p.raise(MpiEvent::SectionEnter {
                comm: comm.id(),
                comm_size: comm.size(),
                comm_rank: comm.rank(),
                label,
                data: [0; 32],
                time: p.now(),
            });
        }
    }

    /// Exit a section on `comm`. The label must match the innermost open
    /// section (perfect nesting, paper §4).
    pub fn exit(&self, p: &mut Proc, comm: &Comm, label: &str) {
        let info = CommInfo {
            id: comm.id(),
            size: comm.size(),
            rank: comm.rank(),
        };
        let (data, label) = self.exit_at(p.world_rank(), info, label, p.now());
        if p.wants(EventKind::SectionLeave) {
            p.raise(MpiEvent::SectionLeave {
                comm: comm.id(),
                comm_size: comm.size(),
                comm_rank: comm.rank(),
                label,
                data,
                time: p.now(),
            });
        }
    }

    /// Run `body` inside a section (exit guaranteed on normal return).
    pub fn scoped<R>(
        &self,
        p: &mut Proc,
        comm: &Comm,
        label: &str,
        body: impl FnOnce(&mut Proc) -> R,
    ) -> R {
        self.enter(p, comm, label);
        let out = body(p);
        self.exit(p, comm, label);
        out
    }

    /// Enter a world-communicator section on behalf of a rank from a tool
    /// context (no `Proc` at hand) — used by adapters such as
    /// [`crate::pcontrol::PcontrolAdapter`]. PMPI-level section events are
    /// *not* re-raised (the caller is already below the PMPI layer).
    pub fn enter_world_section(
        &self,
        world_rank: usize,
        world_size: usize,
        label: &str,
        time: VTime,
    ) {
        self.enter_at(
            world_rank,
            CommInfo {
                id: CommId::WORLD,
                size: world_size,
                rank: world_rank,
            },
            label,
            time,
            false,
        );
    }

    /// Counterpart of [`SectionRuntime::enter_world_section`].
    pub fn exit_world_section(
        &self,
        world_rank: usize,
        world_size: usize,
        label: &str,
        time: VTime,
    ) {
        let _ = self.exit_at(
            world_rank,
            CommInfo {
                id: CommId::WORLD,
                size: world_size,
                rank: world_rank,
            },
            label,
            time,
        );
    }

    /// Depth of open sections for a rank on a communicator (diagnostics).
    pub fn depth(&self, world_rank: usize, comm: CommId) -> usize {
        let shard = self.shards[world_rank % SHARDS].lock();
        shard.get(&(world_rank, comm)).map_or(0, |c| c.stack.len())
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn enter_at(
        &self,
        world_rank: usize,
        comm: CommInfo,
        label: &str,
        now: VTime,
        want_label: bool,
    ) -> Option<Arc<str>> {
        self.verify_step(world_rank, comm.id, true, label);
        let enter_tools = self.n_enter_tools.load(Ordering::Acquire) > 0;
        // Clone the interned label out of the lock only when someone will
        // actually look at it (event raise or an enter-side tool).
        let need_label = want_label || enter_tools;
        let (label, id, occurrence, depth) = {
            let mut shard = self.shards[world_rank % SHARDS].lock();
            let cs = shard.entry((world_rank, comm.id)).or_default();
            cs.events += 1;
            // Intern: after the first enter of a label, reuse the map
            // key's allocation instead of `Arc::from`-ing every call. The
            // `Cell` counter makes one probe serve both lookup and bump,
            // and the slot carries the dense section id alongside.
            let (label, id, occurrence) = match cs.occurrences.get_key_value(label) {
                Some((interned, slot)) => {
                    let occurrence = slot.count.get();
                    slot.count.set(occurrence + 1);
                    (interned.clone(), slot.id, occurrence)
                }
                None => {
                    let interned: Arc<str> = Arc::from(label);
                    // First enter of this label on this (rank, comm):
                    // resolve the runtime-wide dense id (cold path).
                    let id = {
                        let mut ids = self.ids.lock();
                        let next = ids.len() as u32;
                        *ids.entry((comm.id, interned.clone())).or_insert(next)
                    };
                    cs.occurrences.insert(
                        interned.clone(),
                        LabelSlot {
                            count: Cell::new(1),
                            id,
                        },
                    );
                    (interned, id, 0)
                }
            };
            let depth = cs.stack.len();
            let ret = need_label.then(|| label.clone());
            cs.stack.push(Frame {
                label,
                id,
                data: [0; 32],
                enter: now,
                child_time: VTime::ZERO,
                occurrence,
            });
            (ret, id, occurrence, depth)
        };
        // Leave-side tools (the profiler) fold everything at exit; when no
        // attached tool acts on enters, skip the info build and dispatch.
        if enter_tools {
            let info = EnterInfo {
                world_rank,
                comm: comm.id,
                comm_size: comm.size,
                comm_rank: comm.rank,
                label: label.clone().expect("label retained for enter tools"),
                section: id,
                time: now,
                occurrence,
                depth,
            };
            // Tools may write their context into the 32-byte blob; the
            // runtime stores whatever they leave there.
            let mut data = [0u8; 32];
            for slot in &self.tools[..self.n_tools.load(Ordering::Acquire)] {
                if let Some(tool) = slot.get() {
                    tool.on_enter(&info, &mut data);
                }
            }
            if data != [0u8; 32] {
                let mut shard = self.shards[world_rank % SHARDS].lock();
                if let Some(frame) = shard
                    .get_mut(&(world_rank, comm.id))
                    .and_then(|c| c.stack.last_mut())
                {
                    frame.data = data;
                }
            }
        }
        if want_label {
            label
        } else {
            None
        }
    }

    fn exit_at(
        &self,
        world_rank: usize,
        comm: CommInfo,
        label: &str,
        now: VTime,
    ) -> (SectionData, Arc<str>) {
        self.verify_step(world_rank, comm.id, false, label);
        let (frame, depth) = {
            let mut shard = self.shards[world_rank % SHARDS].lock();
            let cs = shard.entry((world_rank, comm.id)).or_default();
            cs.events += 1;
            let Some(frame) = cs.stack.pop() else {
                // Cold path: the rank-wide event index (pre-bump) is
                // recovered by summing the rank's per-comm counters.
                let event_index = rank_events(&shard, world_rank) - 1;
                section_misuse(
                    world_rank,
                    comm.id,
                    Vec::new(),
                    event_index,
                    format!(
                        "mpi-sections: exit of '{label}' on rank {world_rank} \
                         with no open section"
                    ),
                )
            };
            if &*frame.label != label {
                // The misuse-context stack (cold path only: snapshotting
                // every open label on every exit is what the hot path pays
                // for otherwise).
                let mut open: Vec<String> = cs.stack.iter().map(|f| f.label.to_string()).collect();
                open.push(frame.label.to_string());
                let event_index = rank_events(&shard, world_rank) - 1;
                section_misuse(
                    world_rank,
                    comm.id,
                    open,
                    event_index,
                    format!(
                        "mpi-sections: imperfect nesting on rank {world_rank}: \
                         exiting '{label}' but innermost open section is '{}'",
                        frame.label
                    ),
                );
            }
            let duration = now - frame.enter;
            // Credit our inclusive duration to the parent's child time.
            if let Some(parent) = cs.stack.last_mut() {
                parent.child_time += duration;
            }
            (frame, cs.stack.len())
        };
        let n_tools = self.n_tools.load(Ordering::Acquire);
        if n_tools > 0 {
            let duration = now - frame.enter;
            let exclusive = duration - frame.child_time;
            // The frame is consumed here, so its label moves into the
            // info (and back out for the return) without touching the
            // Arc's refcount.
            let info = LeaveInfo {
                world_rank,
                comm: comm.id,
                comm_size: comm.size,
                comm_rank: comm.rank,
                label: frame.label,
                section: frame.id,
                enter_time: frame.enter,
                time: now,
                duration,
                exclusive,
                occurrence: frame.occurrence,
                depth,
            };
            for slot in &self.tools[..n_tools] {
                if let Some(tool) = slot.get() {
                    tool.on_leave(&info, &frame.data);
                }
            }
            (frame.data, info.label)
        } else {
            (frame.data, frame.label)
        }
    }

    fn verify_step(&self, world_rank: usize, comm: CommId, is_enter: bool, label: &str) {
        if self.verify == VerifyMode::Off {
            return;
        }
        let mut state = self.verify_state.lock();
        let cv = state.entry(comm).or_default();
        let pos = cv.position.entry(world_rank).or_insert(0);
        if *pos == cv.log.len() {
            let label: Arc<str> = Arc::from(label);
            cv.log.push(if is_enter {
                VerifyEvent::Enter(label)
            } else {
                VerifyEvent::Exit(label)
            });
        } else {
            assert!(
                *pos < cv.log.len(),
                "mpi-sections: verification position overran the log"
            );
            let agrees = match &cv.log[*pos] {
                VerifyEvent::Enter(l) => is_enter && &**l == label,
                VerifyEvent::Exit(l) => !is_enter && &**l == label,
            };
            if !agrees {
                let event = if is_enter {
                    VerifyEvent::Enter(Arc::from(label))
                } else {
                    VerifyEvent::Exit(Arc::from(label))
                };
                let message = format!(
                    "mpi-sections: section order violation on rank {world_rank}: \
                     expected {:?} at step {pos}, got {event:?}",
                    cv.log[*pos]
                );
                let (label_stack, event_index) = self.rank_snapshot(world_rank, comm);
                section_misuse(world_rank, comm, label_stack, event_index, message);
            }
        }
        *pos += 1;
    }

    /// Open labels on `comm` plus the rank's next section-event index
    /// (misuse-diagnostic context). Lock order is `verify_state` → shard,
    /// consistently with the callers.
    fn rank_snapshot(&self, world_rank: usize, comm: CommId) -> (Vec<String>, u64) {
        let shard = self.shards[world_rank % SHARDS].lock();
        let labels = shard
            .get(&(world_rank, comm))
            .map(|c| c.stack.iter().map(|f| f.label.to_string()).collect())
            .unwrap_or_default();
        (labels, rank_events(&shard, world_rank))
    }
}

/// Abort the calling rank with a [`DiagnosticKind::SectionMisuse`] finding.
fn section_misuse(
    world_rank: usize,
    comm: CommId,
    label_stack: Vec<String>,
    event_index: u64,
    message: String,
) -> ! {
    diag::abort_with(vec![Diagnostic {
        kind: DiagnosticKind::SectionMisuse {
            label_stack,
            event_index,
        },
        severity: Severity::Error,
        ranks: vec![world_rank],
        comm: Some(comm),
        message,
    }]);
}

#[derive(Clone, Copy)]
struct CommInfo {
    id: CommId,
    size: usize,
    rank: usize,
}

/// `MPI_MAIN` management: as an `mpisim` tool, the runtime opens the
/// implicit section at `Init` and closes it at `Finalize` (paper §4).
impl Tool for SectionRuntime {
    /// Only the lifecycle events matter here — subscribing to everything
    /// would route every send/recv/section event of every rank through a
    /// no-op match arm.
    fn interests(&self) -> EventMask {
        EventMask::LIFECYCLE
    }

    fn on_event(&self, world_rank: usize, event: &MpiEvent) {
        match event {
            MpiEvent::Init { size, time } => {
                self.enter_at(
                    world_rank,
                    CommInfo {
                        id: CommId::WORLD,
                        size: *size,
                        rank: world_rank,
                    },
                    MPI_MAIN,
                    *time,
                    false,
                );
            }
            MpiEvent::Finalize { time } => {
                // Comm size is not carried by Finalize; MPI_MAIN lives on
                // the world communicator whose size tools already saw at
                // Init, so 0 participants here is treated as "unchanged".
                let _ = self.exit_at(
                    world_rank,
                    CommInfo {
                        id: CommId::WORLD,
                        size: 0,
                        rank: world_rank,
                    },
                    MPI_MAIN,
                    *time,
                );
            }
            _ => {}
        }
    }

    /// When a rank panics, report its open-section stacks so the failure
    /// message carries the phase the rank died in.
    fn rank_context(&self, world_rank: usize) -> Option<String> {
        let shard = self.shards[world_rank % SHARDS].lock();
        let mut parts: Vec<String> = shard
            .iter()
            .filter(|((r, _), cs)| *r == world_rank && !cs.stack.is_empty())
            .map(|((_, comm), cs)| {
                let labels: Vec<&str> = cs.stack.iter().map(|f| &*f.label).collect();
                format!("comm {}: {}", comm.0, labels.join(" > "))
            })
            .collect();
        if parts.is_empty() {
            return None;
        }
        parts.sort();
        Some(format!("open sections: {}", parts.join("; ")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::WorldBuilder;

    #[test]
    fn enter_exit_roundtrip_and_depth() {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let s = sections.clone();
        WorldBuilder::new(2)
            .run(move |p| {
                let world = p.world();
                s.enter(p, &world, "outer");
                assert_eq!(s.depth(p.world_rank(), world.id()), 1);
                s.enter(p, &world, "inner");
                assert_eq!(s.depth(p.world_rank(), world.id()), 2);
                s.exit(p, &world, "inner");
                s.exit(p, &world, "outer");
                assert_eq!(s.depth(p.world_rank(), world.id()), 0);
            })
            .unwrap();
    }

    #[test]
    fn imperfect_nesting_panics() {
        let sections = SectionRuntime::new(VerifyMode::Off);
        let s = sections.clone();
        let result = WorldBuilder::new(1).run(move |p| {
            let world = p.world();
            s.enter(p, &world, "a");
            s.enter(p, &world, "b");
            s.exit(p, &world, "a"); // wrong: b is innermost
        });
        let err = result.unwrap_err();
        assert!(err.to_string().contains("imperfect nesting"), "{err}");
    }

    #[test]
    fn exit_without_enter_panics() {
        let sections = SectionRuntime::new(VerifyMode::Off);
        let s = sections.clone();
        let result = WorldBuilder::new(1).run(move |p| {
            let world = p.world();
            s.exit(p, &world, "phantom");
        });
        assert!(result.is_err());
    }

    #[test]
    fn imperfect_nesting_yields_structured_diagnostic() {
        let sections = SectionRuntime::new(VerifyMode::Off);
        let s = sections.clone();
        let err = WorldBuilder::new(1)
            .run(move |p| {
                let world = p.world();
                s.enter(p, &world, "a");
                s.enter(p, &world, "b");
                s.exit(p, &world, "a");
            })
            .unwrap_err();
        let diags = err.diagnostics();
        assert_eq!(diags.len(), 1, "{err}");
        let d = &diags[0];
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.ranks, vec![0]);
        assert_eq!(d.comm, Some(CommId::WORLD));
        match &d.kind {
            DiagnosticKind::SectionMisuse {
                label_stack,
                event_index,
            } => {
                assert_eq!(label_stack, &["a".to_string(), "b".to_string()]);
                // Two enters precede the offending exit.
                assert_eq!(*event_index, 2);
            }
            other => panic!("expected SectionMisuse, got {other:?}"),
        }
    }

    #[test]
    fn rank_panic_carries_open_section_stack() {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let s = sections.clone();
        let err = WorldBuilder::new(1)
            .tool(sections.clone())
            .run(move |p| {
                let world = p.world();
                s.enter(p, &world, "phase");
                panic!("boom");
            })
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("boom"), "{msg}");
        assert!(msg.contains("open sections"), "{msg}");
        assert!(msg.contains("MPI_MAIN > phase"), "{msg}");
    }

    #[test]
    fn cross_rank_order_violation_detected() {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let s = sections.clone();
        let result = WorldBuilder::new(2).run(move |p| {
            let world = p.world();
            // Rank 0 and rank 1 disagree on the first section label.
            let label = if p.world_rank() == 0 { "compute" } else { "io" };
            s.enter(p, &world, label);
            s.exit(p, &world, label);
        });
        let err = result.unwrap_err();
        assert!(err.to_string().contains("section order violation"), "{err}");
    }

    #[test]
    fn verification_off_tolerates_divergence() {
        let sections = SectionRuntime::new(VerifyMode::Off);
        let s = sections.clone();
        // Divergent labels are (wrongly) accepted when checking is off —
        // exactly the paper's "selectively enabled" tradeoff.
        WorldBuilder::new(2)
            .run(move |p| {
                let world = p.world();
                let label = if p.world_rank() == 0 { "compute" } else { "io" };
                s.enter(p, &world, label);
                s.exit(p, &world, label);
            })
            .unwrap();
    }

    #[test]
    fn scoped_runs_body_and_closes() {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let s = sections.clone();
        let report = WorldBuilder::new(1)
            .run(move |p| {
                let world = p.world();
                let out = s.scoped(p, &world, "phase", |p| {
                    p.advance_secs(1.0);
                    42
                });
                assert_eq!(s.depth(p.world_rank(), world.id()), 0);
                out
            })
            .unwrap();
        assert_eq!(report.results[0], 42);
    }

    #[test]
    fn sections_per_communicator_are_independent() {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let s = sections.clone();
        WorldBuilder::new(4)
            .run(move |p| {
                let world = p.world();
                let sub = world
                    .split(p, Some((p.world_rank() % 2) as i32), 0)
                    .unwrap();
                s.enter(p, &world, "global");
                s.enter(p, &sub, "local");
                // Independent stacks: exit order across comms is free.
                s.exit(p, &world, "global");
                s.exit(p, &sub, "local");
            })
            .unwrap();
    }

    #[test]
    fn occurrences_count_up() {
        struct LastOccurrence(Mutex<u64>);
        impl SectionTool for LastOccurrence {
            fn on_enter(&self, info: &EnterInfo, _data: &mut SectionData) {
                if &*info.label == "step" {
                    *self.0.lock() = info.occurrence;
                }
            }
            fn on_leave(&self, _info: &LeaveInfo, _data: &SectionData) {}
        }
        let tool = Arc::new(LastOccurrence(Mutex::new(0)));
        let sections = SectionRuntime::new(VerifyMode::Active);
        sections.attach(tool.clone());
        let s = sections.clone();
        WorldBuilder::new(1)
            .run(move |p| {
                let world = p.world();
                for _ in 0..5 {
                    s.scoped(p, &world, "step", |_| {});
                }
            })
            .unwrap();
        assert_eq!(*tool.0.lock(), 4);
    }

    #[test]
    fn tool_data_preserved_between_enter_and_leave() {
        // A tool stores its own timestamp in the 32-byte blob at enter and
        // reads it back at leave — the paper's motivating use of `data`.
        struct StampTool {
            observed: Mutex<Vec<(u64, u64)>>,
        }
        impl SectionTool for StampTool {
            fn on_enter(&self, info: &EnterInfo, data: &mut SectionData) {
                data[..8].copy_from_slice(&info.time.as_nanos().to_le_bytes());
            }
            fn on_leave(&self, info: &LeaveInfo, data: &SectionData) {
                let stamped = u64::from_le_bytes(data[..8].try_into().unwrap());
                self.observed.lock().push((stamped, info.time.as_nanos()));
            }
        }
        let tool = Arc::new(StampTool {
            observed: Mutex::new(Vec::new()),
        });
        let sections = SectionRuntime::new(VerifyMode::Active);
        sections.attach(tool.clone());
        let s = sections.clone();
        WorldBuilder::new(1)
            .run(move |p| {
                let world = p.world();
                p.advance_secs(1.0);
                s.enter(p, &world, "phase");
                p.advance_secs(2.0);
                s.exit(p, &world, "phase");
            })
            .unwrap();
        let observed = tool.observed.lock();
        assert_eq!(observed.len(), 1);
        let (stamped, leave) = observed[0];
        assert_eq!(stamped, 1_000_000_000);
        assert_eq!(leave, 3_000_000_000);
    }
}
