//! Cross-run profile comparison — the §2 workflow as an API.
//!
//! The partial-speedup methodology needs two measurements: a baseline run
//! (normally sequential) and a parallel run. [`ProfileComparison`] lines
//! the two profiles up section by section and derives, for each section,
//! its own speedup, its share drift, and its Eq. 6 bound on the program —
//! i.e. the table a scaling study reads off first ("which section stopped
//! scaling?").

use crate::profiler::Profile;
use crate::section::MPI_MAIN;

/// One section's scaling behaviour between two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct SectionScaling {
    /// The label.
    pub label: String,
    /// Total (across ranks) seconds in the baseline run.
    pub base_total_secs: f64,
    /// Total seconds in the target run.
    pub target_total_secs: f64,
    /// Per-process seconds in the target run.
    pub target_per_rank_secs: f64,
    /// The section's own speedup: `base_total / target_per_rank`
    /// (how much faster the section's work completes with p ranks).
    pub section_speedup: f64,
    /// Eq. 6: the bound this section imposes on the whole program,
    /// `base_program_total / target_per_rank`.
    pub program_bound: f64,
}

/// A lined-up comparison of two profiles (world-communicator sections).
#[derive(Debug, Clone, Default)]
pub struct ProfileComparison {
    /// Per-section rows, sorted by ascending `program_bound` (the binding
    /// constraint first).
    pub sections: Vec<SectionScaling>,
    /// Baseline program total (sum of leaf section totals), seconds.
    pub base_program_total_secs: f64,
    /// Target parallelism.
    pub target_p: usize,
}

impl ProfileComparison {
    /// Compare `base` (typically p = 1) against `target` at `target_p`
    /// ranks. Sections appearing in only one run get zero time on the
    /// other side (new sections bound nothing; vanished sections scale
    /// infinitely).
    pub fn between(base: &Profile, target: &Profile, target_p: usize) -> ProfileComparison {
        let mut labels: Vec<String> = base
            .sections()
            .chain(target.sections())
            .filter(|s| s.key.label != MPI_MAIN)
            .map(|s| s.key.label.clone())
            .collect();
        labels.sort();
        labels.dedup();
        // Exclusive times partition the program; inclusive sums would
        // double-count nested sections (Eq. 6's numerator is the total
        // program time).
        let base_program_total_secs: f64 = base
            .world_labels()
            .iter()
            .filter_map(|l| base.get_world(l))
            .map(|s| s.total_excl_secs)
            .sum();
        let mut sections: Vec<SectionScaling> = labels
            .into_iter()
            .map(|label| {
                let base_total = base
                    .get_world(&label)
                    .map(|s| s.total_own_secs)
                    .unwrap_or(0.0);
                let target_total = target
                    .get_world(&label)
                    .map(|s| s.total_own_secs)
                    .unwrap_or(0.0);
                let per_rank = target_total / target_p.max(1) as f64;
                let section_speedup = if per_rank > 0.0 {
                    base_total / per_rank
                } else {
                    f64::INFINITY
                };
                let program_bound = if per_rank > 0.0 {
                    base_program_total_secs / per_rank
                } else {
                    f64::INFINITY
                };
                SectionScaling {
                    label,
                    base_total_secs: base_total,
                    target_total_secs: target_total,
                    target_per_rank_secs: per_rank,
                    section_speedup,
                    program_bound,
                }
            })
            .collect();
        sections.sort_by(|a, b| {
            a.program_bound
                .partial_cmp(&b.program_bound)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        ProfileComparison {
            sections,
            base_program_total_secs,
            target_p,
        }
    }

    /// The binding section (smallest program bound), if any has cost.
    pub fn binding(&self) -> Option<&SectionScaling> {
        self.sections.iter().find(|s| s.program_bound.is_finite())
    }

    /// Sections that are *pure overhead*: zero baseline cost but non-zero
    /// parallel cost (e.g. communication — the paper's "their sequential
    /// time is null, creating a pure overhead").
    pub fn pure_overheads(&self) -> Vec<&SectionScaling> {
        self.sections
            .iter()
            .filter(|s| s.base_total_secs <= 0.0 && s.target_total_secs > 0.0)
            .collect()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "section scaling vs baseline (program total {:.2} s) at p = {}:\n",
            self.base_program_total_secs, self.target_p
        );
        out.push_str(&format!(
            "{:<32} {:>12} {:>12} {:>12} {:>12}\n",
            "section", "base (s)", "par/rank (s)", "sec speedup", "Eq.6 bound"
        ));
        for s in &self.sections {
            let fmt_inf = |x: f64| {
                if x.is_infinite() {
                    "inf".to_string()
                } else {
                    format!("{x:.2}")
                }
            };
            out.push_str(&format!(
                "{:<32} {:>12.3} {:>12.4} {:>12} {:>12}\n",
                s.label,
                s.base_total_secs,
                s.target_per_rank_secs,
                fmt_inf(s.section_speedup),
                fmt_inf(s.program_bound),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SectionProfiler, SectionRuntime, VerifyMode};
    use machine::Work;
    use mpisim::WorldBuilder;

    fn profile_at(p: usize) -> Profile {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let profiler = SectionProfiler::new();
        sections.attach(profiler.clone());
        let s = sections.clone();
        WorldBuilder::new(p)
            .tool(sections.clone())
            .run(move |proc| {
                let world = proc.world();
                // Perfectly parallel work.
                s.scoped(proc, &world, "work", |proc| {
                    proc.compute(Work::flops(8.0e9 / proc.world_size() as f64));
                });
                // Fixed per-rank overhead, absent sequentially.
                if proc.world_size() > 1 {
                    s.scoped(proc, &world, "comm", |proc| {
                        proc.advance_secs(0.5);
                    });
                } else {
                    s.scoped(proc, &world, "comm", |_| {});
                }
            })
            .unwrap();
        profiler.snapshot()
    }

    #[test]
    fn comparison_derives_bounds_and_binding() {
        let base = profile_at(1);
        let target = profile_at(8);
        let cmp = ProfileComparison::between(&base, &target, 8);
        // Baseline total: 8 s of work (comm free sequentially).
        assert!((cmp.base_program_total_secs - 8.0).abs() < 1e-9);
        let work = cmp.sections.iter().find(|s| s.label == "work").unwrap();
        // Per-rank work at p=8: 1 s -> section speedup 8, bound 8.
        assert!((work.target_per_rank_secs - 1.0).abs() < 1e-9);
        assert!((work.section_speedup - 8.0).abs() < 1e-9);
        let comm = cmp.sections.iter().find(|s| s.label == "comm").unwrap();
        // Pure overhead: 0.5 s/rank -> program bound 16.
        assert!((comm.program_bound - 16.0).abs() < 1e-9);
        assert_eq!(comm.section_speedup, 0.0); // zero base / positive cost
                                               // Binding: work (bound 8 < 16).
        assert_eq!(cmp.binding().unwrap().label, "work");
    }

    #[test]
    fn pure_overheads_identified() {
        let base = profile_at(1);
        let target = profile_at(4);
        let cmp = ProfileComparison::between(&base, &target, 4);
        let overheads = cmp.pure_overheads();
        assert_eq!(overheads.len(), 1);
        assert_eq!(overheads[0].label, "comm");
    }

    #[test]
    fn render_contains_rows() {
        let base = profile_at(1);
        let target = profile_at(2);
        let text = ProfileComparison::between(&base, &target, 2).render();
        assert!(text.contains("work"));
        assert!(text.contains("comm"));
        assert!(text.contains("Eq.6 bound"));
    }

    #[test]
    fn empty_profiles() {
        let cmp = ProfileComparison::between(&Profile::default(), &Profile::default(), 4);
        assert!(cmp.sections.is_empty());
        assert!(cmp.binding().is_none());
        assert!(cmp.pure_overheads().is_empty());
    }
}
