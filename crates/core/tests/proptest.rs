//! Property tests for the section runtime: arbitrary well-nested section
//! programs are accepted, profiled exactly, and their derived metrics obey
//! the Fig. 3 identities; malformed programs are rejected.

use machine::VTime;
use mpi_sections::{InstanceStats, SectionProfiler, SectionRuntime, VerifyMode};
use mpisim::WorldBuilder;
use proptest::prelude::*;
use std::sync::Arc;

/// A random well-nested section program: a sequence of enter/advance/exit
/// operations produced by recursive generation.
#[derive(Debug, Clone)]
enum Op {
    Enter(u8),
    Exit(u8),
    Advance(u32),
}

fn balanced_program() -> impl Strategy<Value = Vec<Op>> {
    // Generate a nesting skeleton as a tree, then flatten.
    #[derive(Debug, Clone)]
    enum Node {
        Leaf(u32),
        Section(u8, Vec<Node>),
    }
    let leaf = (0u32..1_000_000).prop_map(Node::Leaf);
    let tree = leaf.prop_recursive(4, 32, 5, |inner| {
        (0u8..6, prop::collection::vec(inner, 0..5))
            .prop_map(|(label, children)| Node::Section(label, children))
    });
    fn flatten(node: &Node, out: &mut Vec<Op>) {
        match node {
            Node::Leaf(cost) => out.push(Op::Advance(*cost)),
            Node::Section(label, children) => {
                out.push(Op::Enter(*label));
                for c in children {
                    flatten(c, out);
                }
                out.push(Op::Exit(*label));
            }
        }
    }
    prop::collection::vec(tree, 0..6).prop_map(|roots| {
        let mut out = Vec::new();
        for r in &roots {
            flatten(r, &mut out);
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn well_nested_programs_are_accepted_and_balanced(program in balanced_program()) {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let profiler = SectionProfiler::new();
        sections.attach(profiler.clone());
        let s = sections.clone();
        let prog = Arc::new(program);
        let prog2 = prog.clone();
        let report = WorldBuilder::new(3)
            .tool(sections.clone())
            .run(move |p| {
                let world = p.world();
                for op in prog2.iter() {
                    match op {
                        Op::Enter(l) => s.enter(p, &world, &format!("sec{l}")),
                        Op::Exit(l) => s.exit(p, &world, &format!("sec{l}")),
                        Op::Advance(ns) => p.advance(VTime::from_nanos(*ns as u64)),
                    }
                }
                p.now()
            });
        let report = report.unwrap();

        // Every profiled section balances: inclusive >= exclusive >= 0,
        // and for each label, enters == exits == instances * ranks.
        let profile = profiler.snapshot();
        let enters = prog.iter().filter(|op| matches!(op, Op::Enter(_))).count();
        let mut total_instances = 0u64;
        for st in profile.sections() {
            if st.key.label == mpi_sections::MPI_MAIN {
                continue;
            }
            prop_assert!(st.total_own_secs + 1e-12 >= st.total_excl_secs);
            for inst in &st.per_instance {
                prop_assert_eq!(inst.count, 3, "all ranks complete each instance");
                prop_assert!(inst.t_max() >= inst.t_min());
            }
            total_instances += st.instances;
        }
        prop_assert_eq!(total_instances as usize, enters);

        // Exclusive times over all sections (incl. MPI_MAIN) sum to the
        // per-rank total elapsed: time is partitioned, never double
        // counted.
        let excl_sum: f64 = profile.sections().map(|s| s.total_excl_secs).sum();
        let elapsed: f64 = report.results.iter().map(|t| t.as_secs_f64()).sum();
        prop_assert!((excl_sum - elapsed).abs() < 1e-6, "{excl_sum} vs {elapsed}");
    }

    #[test]
    fn mismatched_exit_is_rejected(a in 0u8..4, b in 4u8..8) {
        let sections = SectionRuntime::new(VerifyMode::Off);
        let s = sections.clone();
        let result = WorldBuilder::new(1).run(move |p| {
            let world = p.world();
            s.enter(p, &world, &format!("sec{a}"));
            s.exit(p, &world, &format!("sec{b}"));
        });
        prop_assert!(result.is_err());
    }

    #[test]
    fn instance_metrics_identities(
        entries in prop::collection::vec((0u64..1 << 40, 0u64..1 << 30), 1..64),
    ) {
        // For arbitrary (enter, duration) pairs, the Fig. 3 identities
        // hold: Tmin <= every enter, Tmax >= every exit, span >= mean
        // Tsection >= 0, imb = span - mean(Tsection).
        let mut inst = InstanceStats::default();
        for &(enter, dur) in &entries {
            let t_in = VTime::from_nanos(enter);
            let t_out = t_in + VTime::from_nanos(dur);
            inst.record(t_in, t_out, VTime::from_nanos(dur));
        }
        let t_min = entries.iter().map(|&(e, _)| e).min().unwrap();
        let t_max = entries.iter().map(|&(e, d)| e + d).max().unwrap();
        prop_assert_eq!(inst.t_min().as_nanos(), t_min);
        prop_assert_eq!(inst.t_max().as_nanos(), t_max);
        let span = inst.span().as_secs_f64();
        let mean_section = inst.mean_t_section_secs();
        prop_assert!(mean_section >= 0.0);
        prop_assert!(span + 1e-9 >= mean_section);
        prop_assert!((inst.imbalance_secs() - (span - mean_section)).abs() < 1e-9);
        prop_assert!(inst.mean_entry_imbalance_secs() >= -1e-9);
        prop_assert!(inst.entry_variance_s2() >= 0.0);
    }

    #[test]
    fn verification_accepts_identical_divergence_free_programs(
        labels in prop::collection::vec(0u8..5, 0..20),
        nranks in 1usize..6,
    ) {
        // All ranks perform the same flat label sequence: always valid.
        let sections = SectionRuntime::new(VerifyMode::Active);
        let s = sections.clone();
        let labels = Arc::new(labels);
        let result = WorldBuilder::new(nranks).run(move |p| {
            let world = p.world();
            for l in labels.iter() {
                s.scoped(p, &world, &format!("sec{l}"), |_| {});
            }
        });
        prop_assert!(result.is_ok());
    }
}
