//! The `Strategy` trait and combinators: ranges, tuples, `Just`, map,
//! union (`prop_oneof!`), bounded recursion, and type-erased boxing.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::sync::Arc;

/// A recipe for producing random values of one type.
///
/// Unlike real proptest there is no shrinking: a failing case panics with
/// the generated inputs in scope, and determinism (fixed per-property
/// seeds) makes every failure reproducible.
pub trait Strategy: Clone {
    /// The type of value this strategy generates.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `self` is the leaf case and `recurse`
    /// wraps an inner strategy into the composite case. `depth` bounds the
    /// recursion; the remaining two parameters (desired size and expected
    /// branch factor in real proptest) only shape the distribution, which
    /// this stand-in approximates with a 50/50 leaf/recurse choice per
    /// level.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut strat = self.clone().boxed();
        for _ in 0..depth {
            strat = Union::new(vec![self.clone().boxed(), recurse(strat).boxed()]).boxed();
        }
        strat
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe generation, used behind [`BoxedStrategy`].
trait DynStrategy<V> {
    fn dyn_generate(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V: 'static> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.dyn_generate(rng)
    }
}

/// Strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among alternatives — the engine behind `prop_oneof!`.
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Union of the given (non-empty) alternatives.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<V: 'static> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty range strategy {:?}", self
                );
                // Width fits u64 for every integer type used here.
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy {self:?}");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy {self:?}");
        let v = self.start + (rng.unit_f64() as f32) * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1_000 {
            let v = (5u32..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let f = (1.0f64..2.0).generate(&mut rng);
            assert!((1.0..2.0).contains(&f));
            let i = (-4i32..4).generate(&mut rng);
            assert!((-4..4).contains(&i));
        }
    }

    #[test]
    fn map_union_and_recursion_compose() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let leaf = (0u8..10).prop_map(Tree::Leaf);
        let tree = leaf.prop_recursive(3, 16, 3, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        let mut rng = TestRng::for_case("tree", 0);
        for _ in 0..200 {
            // Terminates (depth-bounded) and type-checks end to end.
            let _ = tree.generate(&mut rng);
        }
        let pick = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[pick.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
