//! Deterministic test-case runner state: configuration and the per-case RNG.

/// Subset of `proptest::test_runner::ProptestConfig` that the workspace
/// actually sets: the number of generated cases per property.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to generate and run for each property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; many properties here spin up a
        // multi-threaded simulated world per case, so default lower and
        // let hot spots raise it via `with_cases`.
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic generator handed to strategies (xoshiro256++ seeded from
/// the property's fully-qualified name and the case index, so every run of
/// the suite explores the same inputs and failures are reproducible).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// RNG for case number `case` of the property named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the property name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut sm = h ^ (u64::from(case) << 32) ^ u64::from(case);
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut sm);
        }
        if s == [0; 4] {
            s[0] = 1;
        }
        TestRng { s }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, n)`. `n` must be non-zero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift: unbiased enough for test-input generation.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_rng_is_deterministic_and_distinct() {
        let mut a = TestRng::for_case("mod::prop", 3);
        let mut b = TestRng::for_case("mod::prop", 3);
        let mut c = TestRng::for_case("mod::prop", 4);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = TestRng::for_case("below", 0);
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
        }
    }
}
