//! `any::<T>()` — full-range strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[inline]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Uniform in `[0, 1)` — bounded on purpose: properties over raw
    /// float bit patterns (NaN, infinities) are not what `any::<f64>()`
    /// callers in this workspace test.
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates_varied_values() {
        let mut rng = TestRng::for_case("any", 0);
        let strat = any::<u64>();
        let a = strat.generate(&mut rng);
        let b = strat.generate(&mut rng);
        assert_ne!(a, b, "256 bits of state should not repeat immediately");
        let bools: Vec<bool> = (0..64).map(|_| any::<bool>().generate(&mut rng)).collect();
        assert!(bools.contains(&true) && bools.contains(&false));
    }
}
