//! Collection strategies: `prop::collection::vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Half-open length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            start: r.start,
            end: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            start: n,
            end: n + 1,
        }
    }
}

/// `Vec` of values from `element`, with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(
            self.size.start < self.size.end,
            "empty length range for collection::vec"
        );
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_and_elements_in_range() {
        let strat = vec(0u8..5, 2usize..7);
        let mut rng = TestRng::for_case("vec", 0);
        for _ in 0..500 {
            let v = strat.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let exact = vec(0u8..5, 3usize);
        assert_eq!(exact.generate(&mut rng).len(), 3);
    }
}
