//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach a registry, so the workspace vendors
//! the slice of proptest it uses: the [`proptest!`] macro (with
//! `proptest_config`), `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`,
//! `any::<T>()`, range/tuple/`Just` strategies, `prop::collection::vec`,
//! `prop_map`, `prop_recursive`, and boxed strategies.
//!
//! Semantics differ from upstream in two deliberate ways:
//!
//! - **No shrinking.** A failing case panics immediately with the normal
//!   assertion message. Inputs are derived from a per-property seed
//!   (property name + case index), so failures reproduce exactly on rerun.
//! - **`prop_assert*` panics** instead of returning `Err`, which is
//!   indistinguishable to the test harness.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Assert a condition inside a property, reporting the generated case on
/// failure (by panicking — this stand-in does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            panic!(concat!("property assertion failed: ", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!($($fmt)+);
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "property assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "property assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format_args!($($fmt)+),
                l,
                r
            );
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (@run $config:expr;
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut proptest_rng,
                        );
                    )*
                    let _ = &proptest_rng;
                    $body
                }
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @run $crate::test_runner::ProptestConfig::default();
            $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// Doc comments and multi-arg signatures parse.
        #[test]
        fn generated_inputs_respect_strategies(
            x in 1u32..100,
            flag in any::<bool>(),
            v in prop::collection::vec(0u8..4, 0..10),
        ) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(u8::from(flag) <= 1);
            prop_assert!(v.len() < 10, "len {} out of range", v.len());
            prop_assert_eq!(v.iter().filter(|&&b| b < 4).count(), v.len());
        }
    }

    proptest! {
        #[test]
        fn oneof_and_map_compose(choice in prop_oneof![
            Just(0usize),
            (1usize..5).prop_map(|n| n * 10),
        ]) {
            prop_assert!(choice == 0 || (10..50).contains(&choice));
        }
    }

    #[test]
    #[should_panic(expected = "property assertion failed")]
    fn failing_assertion_panics() {
        prop_assert_eq!(1 + 1, 3);
    }
}
