//! # mpiverify — schedule-space exploration for wildcard message races
//!
//! `mpicheck` (PR 2) can *warn* that a wildcard receive had several
//! matching in-flight senders — a heuristic `MessageRace` diagnostic. It
//! cannot say whether any alternative matching actually changes the
//! program's observable behavior, and for the metrics this repository
//! reports that is the question that matters: a racy matching means the
//! run's timings, wait-state attribution, and even deadlock-freedom are
//! one sample from a distribution, not a measurement.
//!
//! This crate upgrades each warning to a **verdict** by stateless model
//! checking in the style of ISP, built on two substrate properties the
//! DES engine (PR 6) provides: runs are deterministic, and every
//! wildcard matching funnels through one hook
//! ([`WorldBuilder::match_controller`](mpisim::WorldBuilder::match_controller)).
//!
//! * [`ScheduleController`] records the canonical decision sequence of a
//!   run and replays forced alternatives;
//! * [`explore`] walks the tree of reachable matchings depth-first under
//!   a schedule budget, fingerprinting each run's artifacts;
//! * [`Report`] carries per-site verdicts — **confirmed** (a replayable
//!   witness pair whose artifacts diverge, or an alternative matching
//!   that deadlocks), **refuted** (all reachable matchings
//!   byte-identical; exhaustive when the tree fit in the budget), or
//!   **trivially refuted** (only one live sender) — as text, JSON, and
//!   Error-severity [`Diagnostic`](mpisim::Diagnostic)s;
//! * [`Schedule`] serializes witnesses so `profile --replay-schedule`
//!   reproduces either side of a confirmed race deterministically.

pub mod controller;
pub mod explore;
pub mod report;
pub mod schedule;

pub use controller::ScheduleController;
pub use explore::{explore, fingerprint, Confirmation, Report, RunOutcome, Site, Verdict};
pub use schedule::{Decision, Schedule};
