//! Witness schedules: the serializable record of wildcard-match decisions.
//!
//! A [`Schedule`] is the complete list of wildcard-receive resolutions a
//! run made, in the order the (single-threaded, deterministic) DES engine
//! made them. Because everything else in a run is a pure function of the
//! program, the seed, and the machine model, a schedule pins the run
//! exactly: feeding it back through a
//! [`ScheduleController`](crate::ScheduleController) reproduces the run
//! bit for bit. That is what makes a confirmed race *actionable* — the
//! two sides of the divergence are files you can replay, not a one-time
//! observation.
//!
//! The on-disk format is a small hand-rolled JSON document (this
//! workspace has no serde); [`Schedule::from_json`] parses it back with
//! the minimal recursive-descent reader at the bottom of this module.

use mpisim::diag::json_str;

/// One resolved wildcard-receive matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// World rank of the receiver.
    pub receiver: usize,
    /// Index of this decision among the receiver's wildcard receives
    /// (its per-receiver "slot"), counting from zero in program order.
    pub slot: usize,
    /// The candidate set offered at match time: `(sender world rank,
    /// tag)` of the earliest queued message per distinct sender, in
    /// arrival order.
    pub candidates: Vec<(usize, i32)>,
    /// World rank of the sender whose message was (or must be) consumed.
    pub chosen: usize,
}

/// An ordered list of wildcard-match decisions — one run's complete
/// matching, or the forced prefix of an exploration run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    pub decisions: Vec<Decision>,
}

impl Schedule {
    /// Serialize to the `mpiverify-schedule-v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"format\":\"mpiverify-schedule-v1\",\"decisions\":[");
        for (i, d) in self.decisions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"receiver\":{},\"slot\":{},\"chosen\":{},\"candidates\":[",
                d.receiver, d.slot, d.chosen
            ));
            for (j, (src, tag)) in d.candidates.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{src},{tag}]"));
            }
            out.push_str("]}");
        }
        out.push_str("]}\n");
        out
    }

    /// Parse a `mpiverify-schedule-v1` document produced by
    /// [`Schedule::to_json`].
    pub fn from_json(text: &str) -> Result<Schedule, String> {
        let value = parse_value(text)?;
        let obj = value
            .as_obj()
            .ok_or("schedule: top level must be an object")?;
        match obj_get(obj, "format").and_then(Value::as_str) {
            Some("mpiverify-schedule-v1") => {}
            Some(other) => return Err(format!("schedule: unknown format '{other}'")),
            None => return Err("schedule: missing \"format\" string".into()),
        }
        let decisions = obj_get(obj, "decisions")
            .and_then(Value::as_arr)
            .ok_or("schedule: missing \"decisions\" array")?;
        let mut out = Vec::with_capacity(decisions.len());
        for d in decisions {
            let d = d.as_obj().ok_or("schedule: decision must be an object")?;
            let field = |name: &str| -> Result<usize, String> {
                obj_get(d, name)
                    .and_then(Value::as_usize)
                    .ok_or_else(|| format!("schedule: decision missing integer \"{name}\""))
            };
            let mut candidates = Vec::new();
            for c in obj_get(d, "candidates")
                .and_then(Value::as_arr)
                .ok_or("schedule: decision missing \"candidates\" array")?
            {
                let pair = c
                    .as_arr()
                    .filter(|p| p.len() == 2)
                    .ok_or("schedule: candidate must be a [sender, tag] pair")?;
                let src = pair[0]
                    .as_usize()
                    .ok_or("schedule: candidate sender must be a non-negative integer")?;
                let tag = pair[1]
                    .as_i64()
                    .ok_or("schedule: candidate tag must be an integer")?;
                candidates.push((src, tag as i32));
            }
            out.push(Decision {
                receiver: field("receiver")?,
                slot: field("slot")?,
                chosen: field("chosen")?,
                candidates,
            });
        }
        Ok(Schedule { decisions: out })
    }
}

/// Render a decision for human-facing reports (`r0/slot1: 2 of {1,2}`).
pub fn describe(d: &Decision) -> String {
    let senders: Vec<String> = d.candidates.iter().map(|(s, _)| s.to_string()).collect();
    format!(
        "r{}/slot{}: picked sender {} of {{{}}}",
        d.receiver,
        d.slot,
        d.chosen,
        senders.join(",")
    )
}

/// Quote a string as a JSON literal (re-exported convenience).
pub fn quote(s: &str) -> String {
    json_str(s)
}

// --- minimal JSON reader -------------------------------------------------
//
// `mpisim::jsoncheck` validates syntax but builds no DOM, so schedule
// loading needs its own reader. It covers exactly the JSON this crate
// emits (objects, arrays, strings without exotic escapes, integers,
// bools, null) and rejects everything else with a position-free error —
// enough for trusted witness files, not a general-purpose parser.

#[derive(Debug)]
enum Value {
    Null,
    Bool,
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }
    fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }
    fn as_usize(&self) -> Option<usize> {
        self.as_i64().filter(|n| *n >= 0).map(|n| n as usize)
    }
}

fn obj_get<'a>(fields: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, String> {
    let mut r = Reader {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = r.value()?;
    r.skip_ws();
    if r.pos != r.bytes.len() {
        return Err("schedule: trailing garbage after JSON value".into());
    }
    Ok(v)
}

impl Reader<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "schedule: unexpected end of input".into())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("schedule: expected '{}'", b as char))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.literal("true", Value::Bool),
            b'f' => self.literal("false", Value::Bool),
            b'n' => self.literal("null", Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!("schedule: unexpected byte '{}'", other as char)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("schedule: expected '{word}'"))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err("schedule: expected ',' or '}' in object".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err("schedule: expected ',' or ']' in array".into()),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("schedule: unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    let esc = self
                        .bytes
                        .get(self.pos + 1)
                        .ok_or("schedule: unterminated escape")?;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        other => {
                            return Err(format!(
                                "schedule: unsupported escape '\\{}'",
                                *other as char
                            ))
                        }
                    });
                    self.pos += 2;
                }
                Some(&b) => {
                    // Schedule documents are ASCII by construction; pass
                    // through any UTF-8 continuation bytes untouched.
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| "schedule: malformed number".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schedule {
        Schedule {
            decisions: vec![
                Decision {
                    receiver: 0,
                    slot: 0,
                    candidates: vec![(1, 7), (2, 7)],
                    chosen: 2,
                },
                Decision {
                    receiver: 0,
                    slot: 1,
                    candidates: vec![(1, 7)],
                    chosen: 1,
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let s = sample();
        let json = s.to_json();
        mpisim::jsoncheck::assert_json(&json, "schedule");
        assert_eq!(Schedule::from_json(&json).unwrap(), s);
    }

    #[test]
    fn empty_roundtrip() {
        let s = Schedule::default();
        assert_eq!(Schedule::from_json(&s.to_json()).unwrap(), s);
    }

    #[test]
    fn rejects_wrong_format() {
        let err = Schedule::from_json("{\"format\":\"bogus\",\"decisions\":[]}").unwrap_err();
        assert!(err.contains("unknown format"), "{err}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Schedule::from_json("not json").is_err());
        assert!(Schedule::from_json("{\"decisions\":[]}").is_err());
        assert!(Schedule::from_json("{\"format\":\"mpiverify-schedule-v1\"}").is_err());
    }
}
