//! Rendering: the verdict JSON document and the Error-severity
//! diagnostics a confirmed race feeds back into the
//! [`Diagnostic`](mpisim::Diagnostic) machinery.

use mpisim::diag::json_str;
use mpisim::{Diagnostic, DiagnosticKind, Severity};

use crate::explore::{Confirmation, Report, Verdict};
use crate::schedule::describe;

impl Report {
    /// Render the whole report as one JSON document (validated by
    /// `mpisim::jsoncheck` in tests and CI).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"format\":\"mpiverify-report-v1\"");
        out.push_str(&format!(
            ",\"runs\":{},\"budget\":{},\"divergent\":{},\"exhausted_space\":{}",
            self.runs, self.budget, self.divergent, self.exhausted_space
        ));
        out.push_str(",\"verdicts\":[");
        for (i, v) in self.verdicts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (receiver, slot) = v.site();
            out.push_str(&format!(
                "{{\"receiver\":{receiver},\"slot\":{slot},\"verdict\":{}",
                json_str(v.word())
            ));
            match v {
                Verdict::Confirmed {
                    kind,
                    detail,
                    witness_a,
                    witness_b,
                    ..
                } => {
                    let kind = match kind {
                        Confirmation::DivergentArtifacts => "divergent-artifacts",
                        Confirmation::DeadlockUnderAlternate => "deadlock-under-alternate",
                    };
                    out.push_str(&format!(
                        ",\"kind\":{},\"detail\":{},\"witness_a_decisions\":{},\"witness_b_decisions\":{}",
                        json_str(kind),
                        json_str(detail),
                        witness_a.decisions.len(),
                        witness_b.decisions.len()
                    ));
                }
                Verdict::Refuted {
                    schedules_explored,
                    exhaustive,
                    ..
                } => {
                    out.push_str(&format!(
                        ",\"schedules_explored\":{schedules_explored},\"exhaustive\":{exhaustive}"
                    ));
                }
                Verdict::TriviallyRefuted { .. } => {}
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// One human-readable line per verdict.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "verify: {} run(s) of {} budget, {} divergent, space {}\n",
            self.runs,
            self.budget,
            self.divergent,
            if self.exhausted_space {
                "exhausted"
            } else {
                "budget-capped"
            }
        ));
        for v in &self.verdicts {
            let (receiver, slot) = v.site();
            match v {
                Verdict::Confirmed {
                    kind,
                    detail,
                    witness_b,
                    ..
                } => {
                    let why = match kind {
                        Confirmation::DivergentArtifacts => "observable artifacts diverge",
                        Confirmation::DeadlockUnderAlternate => {
                            "program fails under the alternative matching"
                        }
                    };
                    out.push_str(&format!(
                        "  CONFIRMED  r{receiver} wildcard #{slot}: {why} ({detail})\n"
                    ));
                    if let Some(d) = witness_b
                        .decisions
                        .iter()
                        .find(|d| (d.receiver, d.slot) == (receiver, slot))
                    {
                        out.push_str(&format!("             witness flip {}\n", describe(d)));
                    }
                }
                Verdict::Refuted {
                    schedules_explored,
                    exhaustive,
                    ..
                } => {
                    out.push_str(&format!(
                        "  REFUTED    r{receiver} wildcard #{slot}: {schedules_explored} alternative(s) byte-identical{}\n",
                        if *exhaustive { " (exhaustive)" } else { " (within budget)" }
                    ));
                }
                Verdict::TriviallyRefuted { .. } => {
                    out.push_str(&format!(
                        "  TRIVIAL    r{receiver} wildcard #{slot}: single live sender, no choice to race on\n"
                    ));
                }
            }
        }
        out
    }

    /// Error-severity [`Diagnostic`]s for every confirmed race — the
    /// upgrade path from mpicheck's Warn-severity `MessageRace`.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        self.verdicts
            .iter()
            .filter_map(|v| match v {
                Verdict::Confirmed {
                    site: (receiver, slot),
                    kind,
                    witness_b,
                    detail,
                    ..
                } => {
                    let candidates = witness_b
                        .decisions
                        .iter()
                        .find(|d| (d.receiver, d.slot) == (*receiver, *slot))
                        .map(|d| d.candidates.clone())
                        .unwrap_or_default();
                    let mut ranks: Vec<usize> = candidates.iter().map(|(s, _)| *s).collect();
                    ranks.push(*receiver);
                    ranks.sort_unstable();
                    ranks.dedup();
                    let why = match kind {
                        Confirmation::DivergentArtifacts => {
                            "two matchings produce observably different runs"
                        }
                        Confirmation::DeadlockUnderAlternate => {
                            "an alternative matching deadlocks the program"
                        }
                    };
                    Some(Diagnostic {
                        kind: DiagnosticKind::MessageRace {
                            receiver: *receiver,
                            candidates,
                        },
                        severity: Severity::Error,
                        ranks,
                        comm: None,
                        message: format!(
                            "confirmed message race at rank {receiver} wildcard receive #{slot}: {why} ({detail})"
                        ),
                    })
                }
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Report;
    use crate::schedule::{Decision, Schedule};

    fn sample_report() -> Report {
        let a = Schedule {
            decisions: vec![Decision {
                receiver: 0,
                slot: 0,
                candidates: vec![(1, 7), (2, 7)],
                chosen: 1,
            }],
        };
        let mut b = a.clone();
        b.decisions[0].chosen = 2;
        Report {
            verdicts: vec![
                Verdict::Confirmed {
                    site: (0, 0),
                    kind: Confirmation::DivergentArtifacts,
                    witness_a: a.clone(),
                    witness_b: b,
                    detail: "fp 1 vs 2".into(),
                },
                Verdict::Refuted {
                    site: (0, 1),
                    schedules_explored: 3,
                    exhaustive: true,
                },
                Verdict::TriviallyRefuted { site: (1, 0) },
            ],
            runs: 5,
            divergent: 1,
            budget: 64,
            exhausted_space: true,
            canonical: a,
        }
    }

    #[test]
    fn report_json_is_well_formed() {
        let json = sample_report().to_json();
        mpisim::jsoncheck::assert_json(&json, "verify report");
        assert!(json.contains("\"verdict\":\"confirmed\""));
        assert!(json.contains("\"verdict\":\"refuted\""));
        assert!(json.contains("\"verdict\":\"trivially-refuted\""));
        assert!(json.contains("\"kind\":\"divergent-artifacts\""));
    }

    #[test]
    fn confirmed_races_become_error_diagnostics() {
        let diags = sample_report().diagnostics();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(matches!(
            &diags[0].kind,
            DiagnosticKind::MessageRace { receiver: 0, candidates } if candidates.len() == 2
        ));
        assert_eq!(diags[0].ranks, vec![0, 1, 2]);
        mpisim::jsoncheck::assert_json(&diags[0].to_json(), "race diagnostic");
    }

    #[test]
    fn text_rendering_names_every_verdict() {
        let text = sample_report().render_text();
        assert!(text.contains("CONFIRMED"));
        assert!(text.contains("REFUTED"));
        assert!(text.contains("TRIVIAL"));
        assert!(text.contains("witness flip"));
    }
}
