//! The schedule-space explorer: DFS over wildcard-receive matchings.
//!
//! ## Algorithm
//!
//! The explorer first executes the program once with an empty forced
//! prefix — the *canonical run*, identical to an uncontrolled run — and
//! records its complete decision sequence and artifact fingerprint. It
//! then walks the tree of alternative matchings depth-first: for every
//! completed run with forced prefix `P` and logged schedule `S`, each
//! decision `S[i]` with `i >= |P|` that offered two or more distinct
//! senders spawns one branch per un-taken sender, forcing
//! `S[0..i] + flip(S[i])` as the next prefix. Decisions at or before the
//! forced prefix are never re-branched, so every reachable decision
//! sequence is visited exactly once (the sleep-set discipline); the
//! candidate set itself is already reduced to the earliest queued message
//! per distinct sender — MPI's non-overtaking rule makes any other queued
//! message unreachable at that site, which is the persistent-set
//! reduction.
//!
//! ## Verdicts
//!
//! Each run's observable artifact (whatever the caller folds into
//! [`RunOutcome::artifact`]: metrics JSON, diagnostics, received
//! payloads) is fingerprinted. A branch whose fingerprint differs from
//! the canonical run's — or that fails outright (deadlock under the
//! alternative matching) while the canonical run succeeded — **confirms**
//! the race at its flipped site, and the two full schedules become the
//! replayable witness pair. A site every alternative of which was
//! explored without divergence is **refuted** (exhaustively if the
//! whole tree fit in the budget, else within budget); a wildcard site
//! that never saw a second candidate is **trivially refuted**.

use std::collections::HashSet;

use crate::controller::ScheduleController;
use crate::schedule::{Decision, Schedule};
use std::sync::Arc;

/// What one exploration run observed.
pub struct RunOutcome {
    /// Concatenation of every observable artifact of the run (metrics
    /// JSON, diagnostics report, final receive payloads...). Compared by
    /// fingerprint only — keep it cheap but complete: anything left out
    /// is invisible to the divergence check.
    pub artifact: String,
    /// `Some(rendered error)` if the run failed (deadlock, abort). A
    /// failing canonical run stops exploration; a failing branch run
    /// confirms the race it flipped.
    pub failure: Option<String>,
}

/// A wildcard receive site: `(receiver world rank, per-receiver slot)`.
pub type Site = (usize, usize);

/// Why a confirmed verdict is confirmed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Confirmation {
    /// The witness runs both completed with different artifacts.
    DivergentArtifacts,
    /// The alternative matching made the program fail (deadlock/abort).
    DeadlockUnderAlternate,
}

/// The verdict on one wildcard receive site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Proven racy: the two schedules are observably different.
    Confirmed {
        site: Site,
        kind: Confirmation,
        /// The canonical run's full schedule.
        witness_a: Schedule,
        /// The diverging run's full schedule.
        witness_b: Schedule,
        /// Human-readable evidence (fingerprints or the failure text).
        detail: String,
    },
    /// Every alternative matching reachable at this site produced a
    /// byte-identical artifact.
    Refuted {
        site: Site,
        /// Runs that branched at this site.
        schedules_explored: usize,
        /// True when the whole tree fit inside the budget, making this a
        /// proof rather than a bounded search.
        exhaustive: bool,
    },
    /// The site is a wildcard receive but never had a second live
    /// candidate sender: there is no choice to race on.
    TriviallyRefuted { site: Site },
}

impl Verdict {
    /// The site this verdict covers.
    pub fn site(&self) -> Site {
        match self {
            Verdict::Confirmed { site, .. }
            | Verdict::Refuted { site, .. }
            | Verdict::TriviallyRefuted { site } => *site,
        }
    }

    /// Short verdict word for reports.
    pub fn word(&self) -> &'static str {
        match self {
            Verdict::Confirmed { .. } => "confirmed",
            Verdict::Refuted { .. } => "refuted",
            Verdict::TriviallyRefuted { .. } => "trivially-refuted",
        }
    }
}

/// The explorer's complete result.
pub struct Report {
    /// Per-site verdicts, sorted by site.
    pub verdicts: Vec<Verdict>,
    /// Total runs executed (canonical + branches).
    pub runs: usize,
    /// Runs whose fingerprint differed from the canonical run's.
    pub divergent: usize,
    /// Total schedules the budget allowed.
    pub budget: usize,
    /// True when the DFS drained before hitting the budget.
    pub exhausted_space: bool,
    /// The canonical run's schedule (the replay baseline).
    pub canonical: Schedule,
}

impl Report {
    /// Any site proven racy?
    pub fn any_confirmed(&self) -> bool {
        self.verdicts
            .iter()
            .any(|v| matches!(v, Verdict::Confirmed { .. }))
    }

    /// The first confirmed verdict's witness pair, if any.
    pub fn first_witness_pair(&self) -> Option<(&Schedule, &Schedule)> {
        self.verdicts.iter().find_map(|v| match v {
            Verdict::Confirmed {
                witness_a,
                witness_b,
                ..
            } => Some((witness_a, witness_b)),
            _ => None,
        })
    }
}

/// FNV-1a over the artifact string: cheap, deterministic, and collision
/// risk is irrelevant here (a collision can only mask a divergence the
/// caller's artifact already recorded byte-for-byte; the witness replay
/// in CI would catch it). The hash itself is the workspace-wide stable
/// fingerprint from `mpi_sections::fasthash` — the same function that
/// addresses mpistudy's run store, so verifier fingerprints and store
/// keys never drift apart.
pub fn fingerprint(artifact: &str) -> u64 {
    mpi_sections::fasthash::fnv1a(artifact.as_bytes())
}

/// Explore the matchings of the program `run` executes.
///
/// `run` must build a **fresh, silent** world each call, attach the given
/// controller via
/// [`WorldBuilder::match_controller`](mpisim::WorldBuilder::match_controller),
/// execute, and fold every observable artifact into the returned
/// [`RunOutcome`]. `budget` caps the total number of runs (at least the
/// canonical run always executes).
pub fn explore<F>(budget: usize, run: F) -> Report
where
    F: Fn(&Arc<ScheduleController>) -> RunOutcome,
{
    let budget = budget.max(1);
    let canonical_ctl = Arc::new(ScheduleController::recording());
    let canonical_out = run(&canonical_ctl);
    let canonical = canonical_ctl.schedule();
    let canonical_fp = fingerprint(&canonical_out.artifact);
    let mut runs = 1;
    let mut divergent = 0;

    // Sites that ever offered >= 2 senders, and their branch outcomes.
    let mut racy_sites: HashSet<Site> = HashSet::new();
    let mut branch_counts: Vec<(Site, usize)> = Vec::new();
    let mut confirmed: Vec<Verdict> = Vec::new();
    // All wildcard sites ever consulted (for trivially-refuted entries).
    let mut all_sites: HashSet<Site> = HashSet::new();
    // Decision prefixes already scheduled, so a diverged replay cannot
    // re-enqueue work the tree discipline would otherwise never repeat.
    let mut seen_prefixes: HashSet<Vec<(usize, usize, usize)>> = HashSet::new();

    let note_sites = |schedule: &Schedule, all: &mut HashSet<Site>, racy: &mut HashSet<Site>| {
        for d in &schedule.decisions {
            all.insert((d.receiver, d.slot));
            if d.candidates.len() >= 2 {
                racy.insert((d.receiver, d.slot));
            }
        }
    };
    note_sites(&canonical, &mut all_sites, &mut racy_sites);

    // A failed canonical run means the program is broken regardless of
    // matching; there is no baseline to diverge from.
    if canonical_out.failure.is_none() {
        // DFS stack of (forced prefix, site the last decision flipped).
        let mut stack: Vec<(Schedule, Site)> = Vec::new();
        let push_branches =
            |schedule: &Schedule,
             from: usize,
             stack: &mut Vec<(Schedule, Site)>,
             seen: &mut HashSet<Vec<(usize, usize, usize)>>| {
                // Reverse order so the stack pops the earliest site first.
                for i in (from..schedule.decisions.len()).rev() {
                    let d = &schedule.decisions[i];
                    for &(alt, _) in d.candidates.iter().filter(|(s, _)| *s != d.chosen) {
                        let mut prefix: Vec<Decision> = schedule.decisions[..i].to_vec();
                        prefix.push(Decision {
                            chosen: alt,
                            ..d.clone()
                        });
                        let key: Vec<(usize, usize, usize)> = prefix
                            .iter()
                            .map(|p| (p.receiver, p.slot, p.chosen))
                            .collect();
                        if seen.insert(key) {
                            stack.push((Schedule { decisions: prefix }, (d.receiver, d.slot)));
                        }
                    }
                }
            };
        push_branches(&canonical, 0, &mut stack, &mut seen_prefixes);

        while runs < budget {
            let Some((prefix, flipped_site)) = stack.pop() else {
                break;
            };
            let forced = prefix.decisions.len();
            let ctl = Arc::new(ScheduleController::replaying(prefix));
            let out = run(&ctl);
            runs += 1;
            let schedule = ctl.schedule();
            note_sites(&schedule, &mut all_sites, &mut racy_sites);
            branch_counts.push((flipped_site, 1));

            let already_confirmed = confirmed
                .iter()
                .any(|v| matches!(v, Verdict::Confirmed { site, .. } if *site == flipped_site));
            if let Some(failure) = out.failure {
                divergent += 1;
                if !already_confirmed {
                    confirmed.push(Verdict::Confirmed {
                        site: flipped_site,
                        kind: Confirmation::DeadlockUnderAlternate,
                        witness_a: canonical.clone(),
                        witness_b: schedule,
                        detail: failure,
                    });
                }
                continue;
            }
            let fp = fingerprint(&out.artifact);
            if fp != canonical_fp {
                divergent += 1;
                // One witness pair per site: later flips of an
                // already-confirmed site add no information.
                if !already_confirmed {
                    confirmed.push(Verdict::Confirmed {
                        site: flipped_site,
                        kind: Confirmation::DivergentArtifacts,
                        witness_a: canonical.clone(),
                        witness_b: schedule,
                        detail: format!(
                            "artifact fingerprints diverge: {canonical_fp:016x} vs {fp:016x}"
                        ),
                    });
                }
                continue;
            }
            if !ctl.diverged() {
                // Same fingerprint and the forced prefix replayed cleanly:
                // branch deeper into this run's suffix.
                push_branches(&schedule, forced, &mut stack, &mut seen_prefixes);
            }
        }

        // Remaining stack entries are schedules the budget cut off.
        let exhausted_space = stack.is_empty();
        return finish(
            canonical,
            runs,
            divergent,
            budget,
            exhausted_space,
            all_sites,
            racy_sites,
            branch_counts,
            confirmed,
        );
    }

    finish(
        canonical,
        runs,
        divergent,
        budget,
        true,
        all_sites,
        racy_sites,
        branch_counts,
        confirmed,
    )
}

#[allow(clippy::too_many_arguments)]
fn finish(
    canonical: Schedule,
    runs: usize,
    divergent: usize,
    budget: usize,
    exhausted_space: bool,
    all_sites: HashSet<Site>,
    racy_sites: HashSet<Site>,
    branch_counts: Vec<(Site, usize)>,
    confirmed: Vec<Verdict>,
) -> Report {
    let confirmed_sites: HashSet<Site> = confirmed.iter().map(Verdict::site).collect();
    let mut verdicts = confirmed;
    let mut sites: Vec<Site> = all_sites.into_iter().collect();
    sites.sort_unstable();
    for site in sites {
        if confirmed_sites.contains(&site) {
            continue;
        }
        if racy_sites.contains(&site) {
            let explored = branch_counts
                .iter()
                .filter(|(s, _)| *s == site)
                .map(|(_, n)| n)
                .sum();
            verdicts.push(Verdict::Refuted {
                site,
                schedules_explored: explored,
                exhaustive: exhausted_space,
            });
        } else {
            verdicts.push(Verdict::TriviallyRefuted { site });
        }
    }
    verdicts.sort_by_key(|v| v.site());
    Report {
        verdicts,
        runs,
        divergent,
        budget,
        exhausted_space,
        canonical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::{Src, TagSel, WorldBuilder};

    /// Run `body` as a 3-rank DES world and fold rank 0's received data
    /// into the artifact.
    fn race_outcome(ctl: &Arc<ScheduleController>, same_payload: bool) -> RunOutcome {
        let result = WorldBuilder::new(3)
            .engine(mpisim::Engine::Des)
            .match_controller(ctl.clone() as Arc<dyn mpisim::MatchController>)
            .run(move |p| {
                let world = p.world();
                let me = p.world_rank();
                if me == 0 {
                    world.barrier(p);
                    let a = world.recv::<u32>(p, Src::Any, TagSel::Is(7));
                    let b = world.recv::<u32>(p, Src::Any, TagSel::Is(7));
                    // Order-sensitive fold: diverges iff payloads differ.
                    a.data[0] * 1000 + b.data[0]
                } else {
                    let payload = if same_payload { 9 } else { me as u32 };
                    world.send(p, 0, 7, &[payload]);
                    world.barrier(p);
                    0
                }
            });
        match result {
            Ok(report) => RunOutcome {
                artifact: format!("{:?}", report.results),
                failure: None,
            },
            Err(e) => RunOutcome {
                artifact: String::new(),
                failure: Some(e.to_string()),
            },
        }
    }

    #[test]
    fn distinct_payload_race_is_confirmed() {
        let report = explore(64, |ctl| race_outcome(ctl, false));
        assert!(report.any_confirmed(), "distinct payloads must diverge");
        assert!(report.divergent >= 1);
        let (a, b) = report.first_witness_pair().expect("witness pair");
        assert_ne!(a, b, "witness schedules must differ");
        // Replaying each witness must reproduce its side of the divergence
        // deterministically.
        let out_a = race_outcome(&Arc::new(ScheduleController::replaying(a.clone())), false);
        let out_b = race_outcome(&Arc::new(ScheduleController::replaying(b.clone())), false);
        assert_ne!(
            fingerprint(&out_a.artifact),
            fingerprint(&out_b.artifact),
            "witness replays must reproduce the divergence"
        );
        // And replaying twice is stable.
        let again = race_outcome(&Arc::new(ScheduleController::replaying(b.clone())), false);
        assert_eq!(out_b.artifact, again.artifact);
    }

    #[test]
    fn identical_payload_race_is_refuted_exhaustively() {
        let report = explore(64, |ctl| race_outcome(ctl, true));
        assert!(!report.any_confirmed(), "identical payloads cannot diverge");
        assert_eq!(report.divergent, 0);
        assert!(report.exhausted_space, "tiny space must drain in budget");
        assert!(report.verdicts.iter().any(|v| matches!(
            v,
            Verdict::Refuted {
                exhaustive: true,
                ..
            }
        )));
    }

    #[test]
    fn budget_of_one_runs_only_canonical() {
        let report = explore(1, |ctl| race_outcome(ctl, false));
        assert_eq!(report.runs, 1);
        assert!(!report.any_confirmed());
        assert!(!report.exhausted_space);
    }

    /// rank 0 does recv(Any) then recv(Rank(2)); ranks 1 and 2 each send
    /// once. Canonically the wildcard eats rank 1's message (sent first);
    /// if it eats rank 2's instead, the second receive waits forever.
    fn deadlock_outcome(ctl: &Arc<ScheduleController>) -> RunOutcome {
        let result = WorldBuilder::new(3)
            .engine(mpisim::Engine::Des)
            .match_controller(ctl.clone() as Arc<dyn mpisim::MatchController>)
            .run(|p| {
                let world = p.world();
                match p.world_rank() {
                    0 => {
                        world.barrier(p);
                        let a = world.recv::<u32>(p, Src::Any, TagSel::Is(7));
                        let b = world.recv::<u32>(p, Src::Rank(2), TagSel::Is(7));
                        a.data[0] + b.data[0]
                    }
                    me => {
                        world.send(p, 0, 7, &[me as u32]);
                        world.barrier(p);
                        0
                    }
                }
            });
        match result {
            Ok(report) => RunOutcome {
                artifact: format!("{:?}", report.results),
                failure: None,
            },
            Err(e) => RunOutcome {
                artifact: String::new(),
                failure: Some(e.to_string()),
            },
        }
    }

    #[test]
    fn deadlock_under_alternate_matching_is_confirmed() {
        let report = explore(16, deadlock_outcome);
        let confirmed: Vec<_> = report
            .verdicts
            .iter()
            .filter_map(|v| match v {
                Verdict::Confirmed { kind, detail, .. } => Some((kind, detail)),
                _ => None,
            })
            .collect();
        assert!(
            confirmed
                .iter()
                .any(|(k, _)| **k == Confirmation::DeadlockUnderAlternate),
            "alternate matching must deadlock, got {:?}",
            report.verdicts
        );
        let (_, detail) = confirmed[0];
        assert!(detail.contains("deadlock"), "detail: {detail}");
    }

    #[test]
    fn single_sender_wildcard_is_trivially_refuted() {
        let report = explore(8, |ctl| {
            let result = WorldBuilder::new(2)
                .engine(mpisim::Engine::Des)
                .match_controller(ctl.clone() as Arc<dyn mpisim::MatchController>)
                .run(|p| {
                    let world = p.world();
                    if p.world_rank() == 0 {
                        world.recv::<u32>(p, Src::Any, TagSel::Is(3)).data[0]
                    } else {
                        world.send(p, 0, 3, &[5u32]);
                        0
                    }
                });
            RunOutcome {
                artifact: format!("{:?}", result.map(|r| r.results)),
                failure: None,
            }
        });
        assert_eq!(report.runs, 1, "nothing to branch on");
        assert!(matches!(
            report.verdicts.as_slice(),
            [Verdict::TriviallyRefuted { site: (0, 0) }]
        ));
    }
}
