//! The recording/replaying [`MatchController`] exploration runs attach to
//! a [`WorldBuilder`](mpisim::WorldBuilder).
//!
//! A [`ScheduleController`] carries a *forced prefix* of decisions. While
//! the run's wildcard receives still fall inside the prefix, each one is
//! resolved to the prefix's chosen sender; past the prefix, the
//! controller answers `0` — the arrival-order default, i.e. exactly what
//! an uncontrolled run would do. Every decision (forced or default) is
//! logged, so after the run completes the controller holds the run's full
//! [`Schedule`], which the explorer mines for un-taken branches.
//!
//! Decisions are matched to prefix entries positionally, in global
//! decision order. That is sound because the DES engine is
//! single-threaded and deterministic: two runs of the same program that
//! agree on their first `k` decisions encounter decision `k + 1` at the
//! same receive site with the same queue contents.

use mpisim::{MatchCandidate, MatchController};
use parking_lot::Mutex;

use crate::schedule::{Decision, Schedule};

struct Inner {
    forced: Vec<Decision>,
    log: Vec<Decision>,
    /// Next wildcard slot per receiver world rank (grown on demand).
    next_slot: Vec<usize>,
    /// Set when a forced chosen sender was absent from the live candidate
    /// set — the replayed world diverged from the recorded one.
    diverged: bool,
}

/// Records the wildcard-match decisions of one run, optionally forcing a
/// prefix of them. See the module docs for the protocol.
pub struct ScheduleController {
    inner: Mutex<Inner>,
}

impl ScheduleController {
    /// A controller with an empty forced prefix: the run behaves exactly
    /// like an uncontrolled one and the controller records its canonical
    /// schedule.
    pub fn recording() -> Self {
        Self::replaying(Schedule::default())
    }

    /// A controller that forces `prefix`'s decisions in order, then
    /// defaults to arrival order.
    pub fn replaying(prefix: Schedule) -> Self {
        ScheduleController {
            inner: Mutex::new(Inner {
                forced: prefix.decisions,
                log: Vec::new(),
                next_slot: Vec::new(),
                diverged: false,
            }),
        }
    }

    /// The full decision log of the (completed) run.
    pub fn schedule(&self) -> Schedule {
        Schedule {
            decisions: self.inner.lock().log.clone(),
        }
    }

    /// Did any forced decision name a sender that was not a live
    /// candidate? A diverged replay is still deterministic but no longer
    /// reproduces the recorded run, so verdicts must not rest on it.
    pub fn diverged(&self) -> bool {
        self.inner.lock().diverged
    }
}

impl MatchController for ScheduleController {
    fn choose(&self, receiver: usize, candidates: &[MatchCandidate]) -> usize {
        let mut inner = self.inner.lock();
        if inner.next_slot.len() <= receiver {
            inner.next_slot.resize(receiver + 1, 0);
        }
        let slot = inner.next_slot[receiver];
        inner.next_slot[receiver] = slot + 1;
        let idx = inner.log.len();
        let choice = if idx < inner.forced.len() {
            let want = inner.forced[idx].chosen;
            match candidates.iter().position(|c| c.src_world == want) {
                Some(i) => i,
                None => {
                    inner.diverged = true;
                    0
                }
            }
        } else {
            0
        };
        inner.log.push(Decision {
            receiver,
            slot,
            candidates: candidates.iter().map(|c| (c.src_world, c.tag)).collect(),
            chosen: candidates[choice].src_world,
        });
        choice
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cands(senders: &[usize]) -> Vec<MatchCandidate> {
        senders
            .iter()
            .map(|&s| MatchCandidate {
                src_world: s,
                src_local: s,
                tag: 7,
                seq: (s as u64) << 40,
            })
            .collect()
    }

    #[test]
    fn recording_defaults_to_arrival_order() {
        let ctl = ScheduleController::recording();
        assert_eq!(ctl.choose(0, &cands(&[2, 1])), 0);
        assert_eq!(ctl.choose(0, &cands(&[1])), 0);
        let s = ctl.schedule();
        assert_eq!(s.decisions.len(), 2);
        assert_eq!(s.decisions[0].chosen, 2);
        assert_eq!(s.decisions[0].slot, 0);
        assert_eq!(s.decisions[1].chosen, 1);
        assert_eq!(s.decisions[1].slot, 1);
        assert!(!ctl.diverged());
    }

    #[test]
    fn replaying_forces_named_sender() {
        let prefix = Schedule {
            decisions: vec![Decision {
                receiver: 0,
                slot: 0,
                candidates: vec![(1, 7), (2, 7)],
                chosen: 2,
            }],
        };
        let ctl = ScheduleController::replaying(prefix);
        assert_eq!(ctl.choose(0, &cands(&[1, 2])), 1);
        // Past the prefix: default.
        assert_eq!(ctl.choose(0, &cands(&[1, 2])), 0);
        assert!(!ctl.diverged());
        assert_eq!(ctl.schedule().decisions[0].chosen, 2);
    }

    #[test]
    fn missing_forced_sender_flags_divergence() {
        let prefix = Schedule {
            decisions: vec![Decision {
                receiver: 0,
                slot: 0,
                candidates: vec![(1, 7), (3, 7)],
                chosen: 3,
            }],
        };
        let ctl = ScheduleController::replaying(prefix);
        assert_eq!(ctl.choose(0, &cands(&[1, 2])), 0);
        assert!(ctl.diverged());
    }

    #[test]
    fn slots_are_per_receiver() {
        let ctl = ScheduleController::recording();
        ctl.choose(0, &cands(&[1]));
        ctl.choose(5, &cands(&[2]));
        ctl.choose(0, &cands(&[3]));
        let s = ctl.schedule();
        assert_eq!((s.decisions[0].receiver, s.decisions[0].slot), (0, 0));
        assert_eq!((s.decisions[1].receiver, s.decisions[1].slot), (5, 0));
        assert_eq!((s.decisions[2].receiver, s.decisions[2].slot), (0, 1));
    }
}
