//! Fitting scaling laws to measurements — how the "sequential fraction"
//! of Amdahl's law is obtained in practice (§2: "sequential fraction being
//! generally measured in practice through speedup limit"), plus
//! weak-scaling efficiency measures for the strong/weak spectrum the paper
//! discusses around Gustafson–Barsis.

/// Least-squares fit of Amdahl's serial fraction from measured speedups.
///
/// Amdahl gives `1/S = fs·(1 - 1/p) + 1/p`, linear in `fs`; the
/// closed-form least-squares solution over the points is
/// `fs = Σ x·y / Σ x²` with `x = 1 - 1/p`, `y = 1/S - 1/p`.
///
/// Points with `p <= 1` or non-positive speedup are ignored. Returns
/// `None` when nothing usable remains. The estimate is clamped to
/// `[0, 1]` (superlinear measurements would otherwise go negative).
pub fn fit_amdahl_serial_fraction(points: &[(usize, f64)]) -> Option<f64> {
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut used = 0;
    for &(p, s) in points {
        if p <= 1 || s <= 0.0 {
            continue;
        }
        let inv_p = 1.0 / p as f64;
        let x = 1.0 - inv_p;
        let y = 1.0 / s - inv_p;
        sxy += x * y;
        sxx += x * x;
        used += 1;
    }
    if used == 0 || sxx == 0.0 {
        return None;
    }
    Some((sxy / sxx).clamp(0.0, 1.0))
}

/// Ordinary least-squares line through `(x, y)` points: returns
/// `(slope, intercept)`, or `None` when fewer than two distinct `x`
/// values remain. The same normal-equation machinery as
/// [`fit_amdahl_serial_fraction`], exposed generically so metric series
/// (e.g. per-window efficiencies in `crate::trend`) can be fitted too.
pub fn linear_fit(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    let n = points.len() as f64;
    if points.len() < 2 {
        return None;
    }
    let sx: f64 = points.iter().map(|&(x, _)| x).sum();
    let sy: f64 = points.iter().map(|&(_, y)| y).sum();
    let sxx: f64 = points.iter().map(|&(x, _)| x * x).sum();
    let sxy: f64 = points.iter().map(|&(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-30 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    Some((slope, intercept))
}

/// Root-mean-square relative error of the Amdahl model with serial
/// fraction `fs` against measured `(p, speedup)` points.
pub fn amdahl_rms_rel_error(fs: f64, points: &[(usize, f64)]) -> f64 {
    let mut acc = 0.0;
    let mut n = 0;
    for &(p, s) in points {
        if s <= 0.0 {
            continue;
        }
        let predicted = crate::laws::amdahl::bound(fs, p);
        let rel = (predicted - s) / s;
        acc += rel * rel;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (acc / n as f64).sqrt()
    }
}

/// Weak-scaling efficiency: `t(1) / t(p)` for a problem grown
/// proportionally with `p` (ideal = 1).
pub fn weak_efficiency(t1_secs: f64, tp_secs: f64) -> f64 {
    if tp_secs <= 0.0 {
        0.0
    } else {
        t1_secs / tp_secs
    }
}

/// Measured scaled (Gustafson-style) speedup for a weak-scaling run:
/// `p · t(1) / t(p)`.
pub fn scaled_speedup_measured(t1_secs: f64, tp_secs: f64, p: usize) -> f64 {
    weak_efficiency(t1_secs, tp_secs) * p as f64
}

/// The serial fraction implied by a measured scaled speedup via
/// Gustafson–Barsis: `fs = (p - S_scaled) / (p - 1)`.
pub fn gustafson_serial_fraction(scaled_speedup: f64, p: usize) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    ((p as f64 - scaled_speedup) / (p as f64 - 1.0)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws;

    #[test]
    fn fit_recovers_exact_amdahl_data() {
        let fs_true = 0.08;
        let points: Vec<(usize, f64)> = [2usize, 4, 8, 16, 64, 256]
            .iter()
            .map(|&p| (p, laws::amdahl::bound(fs_true, p)))
            .collect();
        let fs = fit_amdahl_serial_fraction(&points).unwrap();
        assert!((fs - fs_true).abs() < 1e-12, "{fs}");
        assert!(amdahl_rms_rel_error(fs, &points) < 1e-12);
    }

    #[test]
    fn fit_is_robust_to_mild_noise() {
        let fs_true = 0.05;
        let points: Vec<(usize, f64)> = [2usize, 4, 8, 16, 32, 64]
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let wobble = 1.0 + if i % 2 == 0 { 0.01 } else { -0.01 };
                (p, laws::amdahl::bound(fs_true, p) * wobble)
            })
            .collect();
        let fs = fit_amdahl_serial_fraction(&points).unwrap();
        assert!((fs - fs_true).abs() < 0.01, "{fs}");
    }

    #[test]
    fn linear_fit_recovers_line() {
        let points: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 - 0.25 * i as f64)).collect();
        let (slope, intercept) = linear_fit(&points).unwrap();
        assert!((slope + 0.25).abs() < 1e-12, "{slope}");
        assert!((intercept - 3.0).abs() < 1e-12, "{intercept}");
        assert_eq!(linear_fit(&[]), None);
        assert_eq!(linear_fit(&[(1.0, 2.0)]), None);
        // Vertical data (single x) has no defined slope.
        assert_eq!(linear_fit(&[(2.0, 1.0), (2.0, 5.0)]), None);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(fit_amdahl_serial_fraction(&[]), None);
        assert_eq!(fit_amdahl_serial_fraction(&[(1, 1.0)]), None);
        assert_eq!(fit_amdahl_serial_fraction(&[(8, 0.0)]), None);
        // Superlinear data clamps to zero serial fraction.
        assert_eq!(fit_amdahl_serial_fraction(&[(8, 100.0)]), Some(0.0));
    }

    #[test]
    fn weak_scaling_measures() {
        // Perfect weak scaling: constant time.
        assert_eq!(weak_efficiency(10.0, 10.0), 1.0);
        assert_eq!(scaled_speedup_measured(10.0, 10.0, 64), 64.0);
        // Degrading: 20% slower at scale.
        let eff = weak_efficiency(10.0, 12.5);
        assert!((eff - 0.8).abs() < 1e-12);
        assert!((scaled_speedup_measured(10.0, 12.5, 64) - 51.2).abs() < 1e-9);
        assert_eq!(weak_efficiency(1.0, 0.0), 0.0);
    }

    #[test]
    fn gustafson_fraction_roundtrip() {
        for fs in [0.0, 0.1, 0.5, 1.0] {
            for p in [2usize, 16, 456] {
                let s = crate::laws::gustafson::scaled_speedup(fs, p);
                let back = gustafson_serial_fraction(s, p);
                assert!((back - fs).abs() < 1e-9, "fs={fs} p={p}");
            }
        }
        assert_eq!(gustafson_serial_fraction(5.0, 1), 0.0);
    }

    #[test]
    fn rms_error_detects_model_mismatch() {
        // Data that saturates harder than any Amdahl curve (a hard cap):
        // the best fit still carries visible error.
        let points: Vec<(usize, f64)> = vec![
            (2, 2.0),
            (4, 4.0),
            (8, 8.0),
            (16, 8.0),
            (64, 8.0),
            (256, 8.0),
        ];
        let fs = fit_amdahl_serial_fraction(&points).unwrap();
        let err = amdahl_rms_rel_error(fs, &points);
        assert!(err > 0.05, "err={err}");
    }
}
