//! Classical scaling laws (paper §2, Eqs. 1–2 and related work).

/// The canonical speedup `S(n,p) = seq(n) / par(n,p)` (Eq. 1).
///
/// Returns 0 for a non-positive parallel time to keep downstream plots
/// finite on degenerate measurements.
pub fn speedup(seq_secs: f64, par_secs: f64) -> f64 {
    if par_secs <= 0.0 {
        0.0
    } else {
        seq_secs / par_secs
    }
}

/// Parallel efficiency `S / p`.
pub fn efficiency(seq_secs: f64, par_secs: f64, p: usize) -> f64 {
    if p == 0 {
        0.0
    } else {
        speedup(seq_secs, par_secs) / p as f64
    }
}

/// Amdahl's law (Eq. 2).
pub mod amdahl {
    /// Speedup bound for serial fraction `fs` on `p` units:
    /// `1 / (fs + (1-fs)/p)`.
    pub fn bound(fs: f64, p: usize) -> f64 {
        let fs = fs.clamp(0.0, 1.0);
        let p = p.max(1) as f64;
        1.0 / (fs + (1.0 - fs) / p)
    }

    /// The asymptotic limit `1/fs` for `p -> inf` (infinite when fs = 0).
    pub fn limit(fs: f64) -> f64 {
        if fs <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / fs
        }
    }
}

/// Gustafson–Barsis scaled speedup.
pub mod gustafson {
    /// `S_scaled = p - fs * (p - 1)` for serial fraction `fs`.
    pub fn scaled_speedup(fs: f64, p: usize) -> f64 {
        let fs = fs.clamp(0.0, 1.0);
        let p = p.max(1) as f64;
        p - fs * (p - 1.0)
    }
}

/// The Karp–Flatt experimentally determined serial fraction:
/// `e = (1/S - 1/p) / (1 - 1/p)`.
///
/// The paper notes that in practice the "sequential fraction" of Amdahl's
/// law is measured through the speedup limit — this is that measurement.
///
/// ```
/// // A measured 8.08x on 24 units implies ~8.5% serial fraction.
/// let e = speedup::karp_flatt(8.08, 24);
/// assert!((e - 0.0856).abs() < 1e-3);
/// ```
pub fn karp_flatt(measured_speedup: f64, p: usize) -> f64 {
    if p <= 1 || measured_speedup <= 0.0 {
        return 0.0;
    }
    let p = p as f64;
    ((1.0 / measured_speedup) - (1.0 / p)) / (1.0 - 1.0 / p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_speedup() {
        assert_eq!(speedup(100.0, 25.0), 4.0);
        assert_eq!(speedup(100.0, 0.0), 0.0);
        assert!((efficiency(100.0, 25.0, 8) - 0.5).abs() < 1e-12);
        assert_eq!(efficiency(1.0, 1.0, 0), 0.0);
    }

    #[test]
    fn amdahl_bound_properties() {
        // No serial fraction: perfect scaling.
        assert!((amdahl::bound(0.0, 16) - 16.0).abs() < 1e-12);
        // All serial: no scaling.
        assert!((amdahl::bound(1.0, 16) - 1.0).abs() < 1e-12);
        // 5% serial on 16 units: the textbook ~9.14x.
        let s = amdahl::bound(0.05, 16);
        assert!((s - 9.1428).abs() < 1e-3, "{s}");
        // Monotone in p, bounded by the limit.
        assert!(amdahl::bound(0.05, 1024) > amdahl::bound(0.05, 16));
        assert!(amdahl::bound(0.05, 1 << 20) < amdahl::limit(0.05));
        assert!((amdahl::limit(0.05) - 20.0).abs() < 1e-12);
        assert!(amdahl::limit(0.0).is_infinite());
    }

    #[test]
    fn gustafson_properties() {
        assert!((gustafson::scaled_speedup(0.0, 64) - 64.0).abs() < 1e-12);
        assert!((gustafson::scaled_speedup(1.0, 64) - 1.0).abs() < 1e-12);
        // 10% serial, 32 units: 32 - 0.1*31 = 28.9.
        assert!((gustafson::scaled_speedup(0.1, 32) - 28.9).abs() < 1e-12);
    }

    #[test]
    fn karp_flatt_recovers_amdahl_fraction() {
        // If the measured speedup exactly follows Amdahl with fs = 0.07,
        // Karp-Flatt recovers 0.07.
        for p in [2usize, 8, 64, 456] {
            let s = amdahl::bound(0.07, p);
            let e = karp_flatt(s, p);
            assert!((e - 0.07).abs() < 1e-9, "p={p} e={e}");
        }
        assert_eq!(karp_flatt(10.0, 1), 0.0);
        assert_eq!(karp_flatt(0.0, 8), 0.0);
    }

    #[test]
    fn karp_flatt_detects_superlinear_as_negative() {
        // Superlinear measurement -> negative serial fraction.
        assert!(karp_flatt(10.0, 8) < 0.0);
    }
}
