//! # speedup — scaling-law analysis for section profiles
//!
//! The analysis side of the reproduction: classical scaling laws (the
//! canonical speedup of Eq. 1, Amdahl, Gustafson–Barsis, Karp–Flatt) and
//! the paper's contribution, **partial speedup bounding** (Eq. 6): every
//! program section individually bounds the strong-scaling speedup by
//! `Σ_j f_j(n0,1) / f_i(n0,p)`.
//!
//! Building blocks:
//!
//! * [`laws`] — speedup, efficiency, Amdahl, Gustafson, Karp–Flatt;
//! * [`partial`] — Eq. 6 in both "total across ranks" (Fig. 6) and
//!   per-process (§5.2) forms, including direct evaluation on a
//!   [`mpi_sections::Profile`];
//! * [`series`] — time-vs-parallelism series with inflexion-point
//!   detection (Fig. 10): the first scale at which a section stops
//!   accelerating already caps the whole program's speedup.

pub mod fit;
pub mod iso;
pub mod laws;
pub mod partial;
pub mod series;
pub mod stats;
pub mod study;
pub mod trend;

pub use fit::{
    amdahl_rms_rel_error, fit_amdahl_serial_fraction, gustafson_serial_fraction, linear_fit,
    scaled_speedup_measured, weak_efficiency,
};
pub use iso::{
    efficiency_from_overhead, fit_overhead_power_law, isoefficiency_function, required_work,
    total_overhead,
};
pub use laws::{efficiency, karp_flatt, speedup};
pub use partial::{
    binding_bound, bound_row, bounds_from_profile, partial_bound, partial_bound_per_process,
    PartialBound,
};
pub use series::{crossover, ScalePoint, ScalingSeries};
pub use stats::RepStats;
pub use study::{ScalingStudy, SectionStudy, StoredSectionRow};
pub use trend::{SectionTrend, TrendConfig};

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end: the bound computed at a small scale must hold (be an
    /// upper bound) for the measured speedups at larger scales when the
    /// bounding section's per-process time does not shrink — the paper's
    /// transposition argument under Fig. 6.
    #[test]
    fn bounds_from_small_scales_hold_at_larger_scales() {
        let seq_total = 5000.0;
        // A section whose per-process time is constant with p (like HALO's
        // message size) while compute shrinks as 1/p.
        let section = 2.0; // seconds per process at every p
        let walltime = |p: usize| 4998.0 / p as f64 + section;
        for p_bound in [8usize, 16, 32] {
            let bound = partial_bound_per_process(seq_total, section);
            for p_measure in [64usize, 128, 456] {
                let s = speedup(walltime(1), walltime(p_measure));
                assert!(
                    s <= bound,
                    "bound {bound} from p={p_bound} violated by S={s} at p={p_measure}"
                );
            }
        }
    }
}
