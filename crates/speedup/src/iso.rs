//! Isoefficiency analysis — the scaling lens of Kumar/Grama/Gupta/Karypis
//! (*Introduction to Parallel Computing*, the paper's reference \[1\]): how
//! fast must the problem grow to keep parallel efficiency constant?
//!
//! With `W` the useful (sequential) work and `T_o(W, p)` the *total*
//! overhead summed over processors, efficiency is
//! `E = W / (W + T_o)`, so maintaining a target `E` requires
//! `W = E/(1-E) · T_o(W, p)` — the isoefficiency relation. These helpers
//! derive the measurable pieces from timings and evaluate the relation.

/// Total overhead across processors: `T_o = p·t_par - t_seq` (everything
/// that is not useful work: communication, waiting, runtime costs).
pub fn total_overhead(seq_secs: f64, par_secs: f64, p: usize) -> f64 {
    (p as f64 * par_secs - seq_secs).max(0.0)
}

/// Parallel efficiency from the same measurements:
/// `E = t_seq / (p · t_par) = W / (W + T_o)`.
pub fn efficiency_from_overhead(seq_secs: f64, overhead_secs: f64) -> f64 {
    if seq_secs <= 0.0 {
        return 0.0;
    }
    seq_secs / (seq_secs + overhead_secs)
}

/// The isoefficiency relation: the useful work needed to sustain target
/// efficiency `e` against a total overhead of `overhead_secs`.
/// Returns infinity when `e >= 1` (perfect efficiency needs zero overhead).
///
/// ```
/// // Holding 80% efficiency against 10 s of total overhead needs 40 s
/// // of useful work: E = 40/(40+10) = 0.8.
/// assert!((speedup::required_work(0.8, 10.0) - 40.0).abs() < 1e-9);
/// ```
pub fn required_work(e_target: f64, overhead_secs: f64) -> f64 {
    if e_target >= 1.0 {
        return if overhead_secs > 0.0 {
            f64::INFINITY
        } else {
            0.0
        };
    }
    if e_target <= 0.0 {
        return 0.0;
    }
    e_target / (1.0 - e_target) * overhead_secs
}

/// Fit a power law `T_o(p) ≈ a · p^b` to measured `(p, overhead)` points
/// by least squares in log space, returning `(a, b)`. Points with
/// non-positive overhead are skipped. `None` if fewer than two usable
/// points remain.
pub fn fit_overhead_power_law(points: &[(usize, f64)]) -> Option<(f64, f64)> {
    let usable: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(p, o)| p >= 1 && o > 0.0)
        .map(|&(p, o)| ((p as f64).ln(), o.ln()))
        .collect();
    if usable.len() < 2 {
        return None;
    }
    let n = usable.len() as f64;
    let sx: f64 = usable.iter().map(|(x, _)| x).sum();
    let sy: f64 = usable.iter().map(|(_, y)| y).sum();
    let sxx: f64 = usable.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = usable.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let b = (n * sxy - sx * sy) / denom;
    let a = ((sy - b * sx) / n).exp();
    Some((a, b))
}

/// The isoefficiency *function* implied by a fitted power-law overhead:
/// `W(p) = E/(1-E) · a · p^b`. A `b > 1` means the problem must grow
/// super-linearly with p — weak scaling alone cannot hold efficiency.
pub fn isoefficiency_function(e_target: f64, a: f64, b: f64, p: usize) -> f64 {
    required_work(e_target, a * (p as f64).powf(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_from_timings() {
        // 100 s sequential, 30 s on 4 procs: To = 120 - 100 = 20 s.
        assert!((total_overhead(100.0, 30.0, 4) - 20.0).abs() < 1e-12);
        // Superlinear measurements clamp to zero overhead.
        assert_eq!(total_overhead(100.0, 10.0, 4), 0.0);
    }

    #[test]
    fn efficiency_identities() {
        // E from overhead equals E from timings.
        let (seq, par, p) = (100.0, 30.0, 4usize);
        let to = total_overhead(seq, par, p);
        let e1 = efficiency_from_overhead(seq, to);
        let e2 = crate::efficiency(seq, par, p);
        assert!((e1 - e2).abs() < 1e-12);
        assert_eq!(efficiency_from_overhead(0.0, 5.0), 0.0);
    }

    #[test]
    fn required_work_relation() {
        // 80% efficiency against 10 s overhead needs 40 s of work.
        assert!((required_work(0.8, 10.0) - 40.0).abs() < 1e-12);
        // Check the relation closes: E = W/(W+To).
        let w = required_work(0.8, 10.0);
        assert!((efficiency_from_overhead(w, 10.0) - 0.8).abs() < 1e-12);
        assert!(required_work(1.0, 1.0).is_infinite());
        assert_eq!(required_work(1.0, 0.0), 0.0);
        assert_eq!(required_work(0.0, 10.0), 0.0);
    }

    #[test]
    fn power_law_fit_recovers_exact_data() {
        // To = 3 p^1.5.
        let points: Vec<(usize, f64)> = [2usize, 4, 8, 16, 64]
            .iter()
            .map(|&p| (p, 3.0 * (p as f64).powf(1.5)))
            .collect();
        let (a, b) = fit_overhead_power_law(&points).unwrap();
        assert!((a - 3.0).abs() < 1e-9, "a={a}");
        assert!((b - 1.5).abs() < 1e-9, "b={b}");
    }

    #[test]
    fn power_law_fit_degenerate_inputs() {
        assert_eq!(fit_overhead_power_law(&[]), None);
        assert_eq!(fit_overhead_power_law(&[(4, 1.0)]), None);
        assert_eq!(fit_overhead_power_law(&[(4, 0.0), (8, -1.0)]), None);
        // All points at the same p: singular.
        assert_eq!(fit_overhead_power_law(&[(4, 1.0), (4, 2.0)]), None);
    }

    #[test]
    fn isoefficiency_growth() {
        // Logarithmic-free linear overhead (b=1): W grows linearly — the
        // hallmark of a scalable algorithm; b=2 grows quadratically.
        let w_lin_8 = isoefficiency_function(0.5, 1.0, 1.0, 8);
        let w_lin_64 = isoefficiency_function(0.5, 1.0, 1.0, 64);
        assert!((w_lin_64 / w_lin_8 - 8.0).abs() < 1e-9);
        let w_quad_8 = isoefficiency_function(0.5, 1.0, 2.0, 8);
        let w_quad_64 = isoefficiency_function(0.5, 1.0, 2.0, 64);
        assert!((w_quad_64 / w_quad_8 - 64.0).abs() < 1e-9);
    }
}
