//! Partial speedup bounding — the paper's Eq. 6 and Fig. 6.
//!
//! Modelling the program as a sum of per-section times, every section `i`
//! individually bounds the strong-scaling speedup:
//!
//! ```text
//! S(n0, p)  <=  Σ_j f_j(n0, 1)  /  f_i(n0, p)
//! ```
//!
//! where the numerator is the *total* sequential time and the denominator
//! the section's per-process parallel time. With section measurements in
//! "total across ranks" form (Fig. 6's `Tot. HALO Time`), the bound is
//!
//! ```text
//! B(p) = T_seq_total / (T_section_total(p) / p)
//! ```
//!
//! e.g. the paper's `B(64) = 5589.84 / (3025.44 / 64) = 118.25`.

use mpi_sections::{Profile, SectionStats};

/// A partial speedup bound derived from one section at one scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartialBound {
    /// Number of processes of the parallel measurement.
    pub p: usize,
    /// Total (across ranks) time of the bounding section, in seconds.
    pub section_total_secs: f64,
    /// The resulting upper bound on the strong-scaling speedup.
    pub bound: f64,
}

/// Eq. 6 in "total across ranks" form: `seq_total / (section_total / p)`.
///
/// Returns infinity for a zero-cost section (it does not bound anything).
///
/// ```
/// // The paper's Fig. 6 headline row: B(64) = 5589.84 / (3025.44/64).
/// let b = speedup::partial_bound(5589.84, 3025.44, 64);
/// assert!((b - 118.25).abs() < 0.01);
/// ```
pub fn partial_bound(seq_total_secs: f64, section_total_secs: f64, p: usize) -> f64 {
    if section_total_secs <= 0.0 {
        return f64::INFINITY;
    }
    seq_total_secs / (section_total_secs / p.max(1) as f64)
}

/// Eq. 6 in per-process form: `seq_total / section_per_process`.
pub fn partial_bound_per_process(seq_total_secs: f64, section_secs: f64) -> f64 {
    if section_secs <= 0.0 {
        return f64::INFINITY;
    }
    seq_total_secs / section_secs
}

/// Build the Fig. 6 table row for one section at one scale.
pub fn bound_row(seq_total_secs: f64, p: usize, section_total_secs: f64) -> PartialBound {
    PartialBound {
        p,
        section_total_secs,
        bound: partial_bound(seq_total_secs, section_total_secs, p),
    }
}

/// Compute the per-section bounds for every world section of a parallel
/// profile, given the sequential run's total time. Returns (label, bound)
/// sorted ascending by bound — the first entry is the binding constraint.
pub fn bounds_from_profile(
    seq_total_secs: f64,
    parallel: &Profile,
    p: usize,
) -> Vec<(String, f64)> {
    let mut out: Vec<(String, f64)> = parallel
        .world_labels()
        .iter()
        .filter_map(|label| parallel.get_world(label))
        .map(|s: &SectionStats| {
            (
                s.key.label.clone(),
                partial_bound(seq_total_secs, s.total_own_secs, p),
            )
        })
        .collect();
    out.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    out
}

/// The tightest (smallest) of a set of per-section bounds.
pub fn binding_bound(bounds: &[(String, f64)]) -> Option<&(String, f64)> {
    bounds
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig6_values() {
        // Fig. 6 rows: B = 5589.84 / (Tot.HALO / p). Three of the five
        // printed rows satisfy the paper's own formula to 0.1%:
        let seq = 5589.84;
        for (p, halo, expected) in [
            (64usize, 3025.44, 118.25),
            (112, 1822.38, 343.54),
            (128, 14135.56, 50.61),
        ] {
            let b = partial_bound(seq, halo, p);
            assert!(
                (b - expected).abs() / expected < 0.001,
                "p={p}: computed {b}, paper {expected}"
            );
        }
        // The p=80 (prints 363.96, formula gives 347.02) and p=144 rows
        // (prints 181.17, formula gives 296.37) are internally inconsistent
        // in the paper — presumably transcription slips. We assert the
        // formula, i.e. what the computed values *should* read.
        assert!((partial_bound(seq, 1288.64, 80) - 347.02).abs() < 0.01);
        assert!((partial_bound(seq, 2716.03, 144) - 296.37).abs() < 0.01);
    }

    #[test]
    fn paper_lulesh_bounds() {
        // §5.2: S <= 882.48 / (43.84 + 64.29) = 8.16x, and
        // LagrangeElements alone bounds at 882.48 / 64.29 = 13.72x.
        let combined = partial_bound_per_process(882.48, 43.84 + 64.29);
        assert!((combined - 8.16).abs() < 0.01, "{combined}");
        let elements = partial_bound_per_process(882.48, 64.29);
        assert!((elements - 13.72).abs() < 0.01, "{elements}");
    }

    #[test]
    fn zero_section_never_bounds() {
        assert!(partial_bound(100.0, 0.0, 64).is_infinite());
        assert!(partial_bound_per_process(100.0, 0.0).is_infinite());
    }

    #[test]
    fn bound_row_construction() {
        let row = bound_row(5589.84, 64, 3025.44);
        assert_eq!(row.p, 64);
        assert!((row.bound - 118.25).abs() < 0.01);
    }

    #[test]
    fn binding_bound_picks_smallest() {
        let bounds = vec![
            ("HALO".to_string(), 118.0),
            ("GATHER".to_string(), 500.0),
            ("STORE".to_string(), 87.0),
        ];
        assert_eq!(binding_bound(&bounds).unwrap().0, "STORE");
        assert!(binding_bound(&[]).is_none());
    }

    #[test]
    fn bound_is_anti_monotone_in_section_time() {
        let b1 = partial_bound(100.0, 10.0, 8);
        let b2 = partial_bound(100.0, 20.0, 8);
        assert!(b2 < b1);
    }
}
