//! Repetition statistics for measured times.
//!
//! The paper's convolution numbers are averages of twenty runs ("Runs were
//! done twenty times and averaged"), and its Fig. 5 commentary leans on
//! measurement noise repeatedly. [`RepStats`] summarizes a set of
//! repetitions with mean, sample standard deviation and a Student-t 95%
//! confidence interval, so regenerated tables can state *how* noisy a
//! cell is instead of hiding it.

/// Summary statistics of repeated measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepStats {
    /// Number of repetitions.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub stddev: f64,
    /// Half-width of the 95% confidence interval of the mean
    /// (Student-t; 0 for n < 2).
    pub ci95: f64,
}

impl RepStats {
    /// Summarize a set of measurements. `None` for an empty slice.
    pub fn from_samples(samples: &[f64]) -> Option<RepStats> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        if n < 2 {
            return Some(RepStats {
                n,
                mean,
                stddev: 0.0,
                ci95: 0.0,
            });
        }
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        let stddev = var.sqrt();
        let sem = stddev / (n as f64).sqrt();
        Some(RepStats {
            n,
            mean,
            stddev,
            ci95: t95(n - 1) * sem,
        })
    }

    /// Relative CI half-width (`ci95 / mean`; 0 for a zero mean).
    pub fn rel_ci(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            (self.ci95 / self.mean).abs()
        }
    }

    /// Do two measurements overlap at 95% confidence? (A conservative
    /// "not significantly different" check by interval overlap.)
    pub fn overlaps(&self, other: &RepStats) -> bool {
        (self.mean - other.mean).abs() <= self.ci95 + other.ci95
    }

    /// Format as `mean ± ci95`.
    pub fn display(&self) -> String {
        if self.n < 2 {
            format!("{:.2}", self.mean)
        } else {
            format!("{:.2} ± {:.2}", self.mean, self.ci95)
        }
    }
}

/// Two-sided 95% Student-t critical value for `df` degrees of freedom
/// (table through 30, then the normal limit).
fn t95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::INFINITY
    } else if df <= 30 {
        TABLE[df - 1]
    } else {
        1.960
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let s = RepStats::from_samples(&[2.0, 4.0, 6.0]).unwrap();
        assert_eq!(s.n, 3);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!((s.stddev - 2.0).abs() < 1e-12);
        // df = 2 -> t = 4.303; sem = 2/sqrt(3).
        let expect = 4.303 * 2.0 / 3f64.sqrt();
        assert!((s.ci95 - expect).abs() < 1e-9);
    }

    #[test]
    fn degenerate_sizes() {
        assert!(RepStats::from_samples(&[]).is_none());
        let s = RepStats::from_samples(&[5.0]).unwrap();
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.display(), "5.00");
    }

    #[test]
    fn identical_samples_have_zero_interval() {
        let s = RepStats::from_samples(&[3.0; 20]).unwrap();
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.rel_ci(), 0.0);
    }

    #[test]
    fn interval_shrinks_with_repetitions() {
        // Alternating samples: same stddev estimate, more reps -> tighter.
        let few: Vec<f64> = (0..4)
            .map(|i| if i % 2 == 0 { 9.0 } else { 11.0 })
            .collect();
        let many: Vec<f64> = (0..20)
            .map(|i| if i % 2 == 0 { 9.0 } else { 11.0 })
            .collect();
        let sf = RepStats::from_samples(&few).unwrap();
        let sm = RepStats::from_samples(&many).unwrap();
        assert!(sm.ci95 < sf.ci95);
        assert!((sf.mean - sm.mean).abs() < 1e-12);
    }

    #[test]
    fn overlap_check() {
        let a = RepStats::from_samples(&[10.0, 10.2, 9.8, 10.1]).unwrap();
        let b = RepStats::from_samples(&[10.1, 10.3, 9.9, 10.0]).unwrap();
        let c = RepStats::from_samples(&[20.0, 20.1, 19.9, 20.0]).unwrap();
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn t_table_monotone_and_limits() {
        assert!(t95(0).is_infinite());
        for df in 1..40 {
            assert!(t95(df) >= t95(df + 1) - 1e-9, "df={df}");
        }
        assert_eq!(t95(1000), 1.960);
    }

    #[test]
    fn display_formats() {
        let s = RepStats::from_samples(&[1.0, 3.0]).unwrap();
        assert!(s.display().contains("±"));
    }
}
