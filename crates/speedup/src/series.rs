//! Scaling series and inflexion-point detection.
//!
//! A [`ScalingSeries`] holds the measured time of one quantity (a section,
//! or the whole program) at increasing parallelism. The paper's *inflexion
//! point* (§5.2, Fig. 10) is the parallelism at which the quantity stops
//! accelerating: "any section which duration stops decreasing with the
//! number of threads immediately defines an upper bound on the speedup."

/// One measurement: time at a given parallelism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalePoint {
    /// Number of processing units (processes or threads).
    pub p: usize,
    /// Measured time in seconds.
    pub secs: f64,
}

/// A time-vs-parallelism series, ordered by increasing `p`.
///
/// ```
/// use speedup::ScalingSeries;
/// // A section that stops accelerating at 24 threads (Fig. 10's shape):
/// let s = ScalingSeries::new(vec![(1, 880.0), (8, 130.0), (24, 84.0), (64, 120.0)]);
/// assert_eq!(s.inflexion(0.0).unwrap().p, 24);
/// // Eq. 6: that inflexion caps the program at 880/84 ≈ 10.5x.
/// assert!((s.bound_at_inflexion(880.0, 0.0).unwrap() - 10.476).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScalingSeries {
    points: Vec<ScalePoint>,
}

impl ScalingSeries {
    /// Build from `(p, secs)` pairs; sorts by `p` and rejects duplicates.
    pub fn new(mut points: Vec<(usize, f64)>) -> ScalingSeries {
        points.sort_by_key(|&(p, _)| p);
        for w in points.windows(2) {
            assert_ne!(w[0].0, w[1].0, "duplicate parallelism {}", w[0].0);
        }
        ScalingSeries {
            points: points
                .into_iter()
                .map(|(p, secs)| ScalePoint { p, secs })
                .collect(),
        }
    }

    /// The measurements.
    pub fn points(&self) -> &[ScalePoint] {
        &self.points
    }

    /// True when no measurement is present.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Time at exactly `p`, if measured.
    pub fn at(&self, p: usize) -> Option<f64> {
        self.points.iter().find(|pt| pt.p == p).map(|pt| pt.secs)
    }

    /// The baseline: the time at the smallest `p` (normally `p = 1`).
    pub fn baseline(&self) -> Option<ScalePoint> {
        self.points.first().copied()
    }

    /// Speedup series relative to the baseline measurement.
    pub fn speedups(&self) -> Vec<(usize, f64)> {
        match self.baseline() {
            None => Vec::new(),
            Some(base) => self
                .points
                .iter()
                .map(|pt| (pt.p, crate::laws::speedup(base.secs, pt.secs)))
                .collect(),
        }
    }

    /// The inflexion point: the measurement achieving the minimum time.
    /// Every larger `p` wastes resources (paper §5.2: "an execution
    /// configuration where the main computing section is beyond its
    /// inflexion point should never be ran").
    ///
    /// `tolerance` is a relative slack (e.g. 0.02) so measurement noise on
    /// a flat valley floor does not pick an arbitrary point: the *first*
    /// point within `tolerance` of the global minimum wins.
    pub fn inflexion(&self, tolerance: f64) -> Option<ScalePoint> {
        let min = self
            .points
            .iter()
            .map(|pt| pt.secs)
            .fold(f64::INFINITY, f64::min);
        if !min.is_finite() {
            return None;
        }
        self.points
            .iter()
            .find(|pt| pt.secs <= min * (1.0 + tolerance))
            .copied()
    }

    /// Is the series still strictly improving at its largest `p`? (No
    /// inflexion inside the measured range.)
    pub fn still_scaling(&self, tolerance: f64) -> bool {
        match (self.inflexion(tolerance), self.points.last()) {
            (Some(inf), Some(last)) => inf.p == last.p,
            _ => false,
        }
    }

    /// The speedup bound imposed by this series at its inflexion point,
    /// given the total sequential time (Eq. 6 in per-process form).
    pub fn bound_at_inflexion(&self, seq_total_secs: f64, tolerance: f64) -> Option<f64> {
        self.inflexion(tolerance)
            .map(|pt| crate::partial::partial_bound_per_process(seq_total_secs, pt.secs))
    }
}

/// Find the crossover between two time series (e.g. "MPI scaling" vs
/// "OpenMP scaling" over the same resource counts, the Fig. 8 question):
/// the smallest shared `p` at which the faster-of-the-two flips relative
/// to the first shared point. `None` when one series dominates everywhere
/// or there are fewer than two shared points.
pub fn crossover(a: &ScalingSeries, b: &ScalingSeries) -> Option<usize> {
    let shared: Vec<(usize, f64, f64)> = a
        .points()
        .iter()
        .filter_map(|pa| b.at(pa.p).map(|tb| (pa.p, pa.secs, tb)))
        .collect();
    if shared.len() < 2 {
        return None;
    }
    let initial_a_faster = shared[0].1 <= shared[0].2;
    shared
        .iter()
        .skip(1)
        .find(|(_, ta, tb)| (ta <= tb) != initial_a_faster)
        .map(|&(p, _, _)| p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u_shape() -> ScalingSeries {
        // Classic U: improves to p=24 then degrades (the Fig. 10 shape).
        ScalingSeries::new(vec![
            (1, 882.0),
            (2, 450.0),
            (4, 235.0),
            (8, 130.0),
            (16, 92.0),
            (24, 84.0),
            (32, 90.0),
            (64, 120.0),
            (128, 200.0),
        ])
    }

    #[test]
    fn construction_sorts() {
        let s = ScalingSeries::new(vec![(8, 1.0), (1, 8.0), (4, 2.0)]);
        let ps: Vec<usize> = s.points().iter().map(|pt| pt.p).collect();
        assert_eq!(ps, vec![1, 4, 8]);
        assert_eq!(s.at(4), Some(2.0));
        assert_eq!(s.at(3), None);
    }

    #[test]
    #[should_panic(expected = "duplicate parallelism")]
    fn duplicates_rejected() {
        let _ = ScalingSeries::new(vec![(4, 1.0), (4, 2.0)]);
    }

    #[test]
    fn speedups_relative_to_baseline() {
        let s = u_shape();
        let sp = s.speedups();
        assert_eq!(sp[0], (1, 1.0));
        let (p, v) = sp[5];
        assert_eq!(p, 24);
        assert!((v - 882.0 / 84.0).abs() < 1e-9);
    }

    #[test]
    fn inflexion_at_minimum() {
        let s = u_shape();
        let inf = s.inflexion(0.0).unwrap();
        assert_eq!(inf.p, 24);
        assert!(!s.still_scaling(0.0));
    }

    #[test]
    fn tolerance_picks_earliest_on_flat_valley() {
        let s = ScalingSeries::new(vec![(1, 100.0), (8, 10.1), (16, 10.0), (32, 10.05)]);
        // Strict: 16. With 2% slack: 8 (first within tolerance).
        assert_eq!(s.inflexion(0.0).unwrap().p, 16);
        assert_eq!(s.inflexion(0.02).unwrap().p, 8);
    }

    #[test]
    fn monotone_series_still_scaling() {
        let s = ScalingSeries::new(vec![(1, 100.0), (2, 51.0), (4, 26.0), (8, 14.0)]);
        assert!(s.still_scaling(0.0));
        assert_eq!(s.inflexion(0.0).unwrap().p, 8);
    }

    #[test]
    fn bound_at_inflexion_matches_eq6() {
        let s = u_shape();
        // Bound = 882 / 84 = 10.5 per Eq. 6.
        let b = s.bound_at_inflexion(882.0, 0.0).unwrap();
        assert!((b - 10.5).abs() < 1e-9);
    }

    #[test]
    fn crossover_detection() {
        // a wins early, b wins late: crossover at 16.
        let a = ScalingSeries::new(vec![(1, 10.0), (4, 6.0), (16, 5.0), (64, 5.0)]);
        let b = ScalingSeries::new(vec![(1, 20.0), (4, 8.0), (16, 4.0), (64, 2.0)]);
        assert_eq!(crossover(&a, &b), Some(16));
        // One series dominates: no crossover.
        let c = ScalingSeries::new(vec![(1, 1.0), (4, 1.0), (16, 1.0), (64, 1.0)]);
        assert_eq!(crossover(&c, &a), None);
        // Too few shared points.
        let d = ScalingSeries::new(vec![(3, 1.0)]);
        assert_eq!(crossover(&a, &d), None);
        // Symmetric call finds the same point.
        assert_eq!(crossover(&b, &a), Some(16));
    }

    #[test]
    fn empty_series() {
        let s = ScalingSeries::default();
        assert!(s.is_empty());
        assert!(s.speedups().is_empty());
        assert!(s.inflexion(0.0).is_none());
        assert!(s.bound_at_inflexion(1.0, 0.0).is_none());
        assert!(!s.still_scaling(0.0));
    }
}
