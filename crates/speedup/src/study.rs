//! The full §2 workflow as one object: feed profiles measured at several
//! scales, get back every section's scaling series, inflexion point and
//! Eq. 6 bound trajectory — plus the program-level verdict ("which section
//! binds, and from which scale on").
//!
//! This is the analysis a tool built on `MPI_Section` ships as its main
//! screen; the `figures` harness and the examples assemble it by hand,
//! [`ScalingStudy`] packages it.

use crate::partial::partial_bound_per_process;
use crate::series::ScalingSeries;
use mpi_sections::{Profile, MPI_MAIN};
use std::collections::BTreeMap;

/// One section's view across all measured scales.
#[derive(Debug, Clone)]
pub struct SectionStudy {
    /// The label.
    pub label: String,
    /// Per-process time vs scale.
    pub per_process: ScalingSeries,
    /// Eq. 6 bound at each scale (same order as `per_process`).
    pub bounds: Vec<(usize, f64)>,
    /// The scale at which the section's per-process time stops improving
    /// (its inflexion point), if the series is long enough to tell.
    pub inflexion_p: Option<usize>,
}

/// One persisted per-(scale, section) measurement, as the mpistudy run
/// store serves them: no live [`Profile`] object, just the numbers a
/// stored metrics document carries.
#[derive(Debug, Clone)]
pub struct StoredSectionRow {
    /// Scale (MPI processes, or threads for a thread study).
    pub p: usize,
    /// Section label (world communicator).
    pub label: String,
    /// Inclusive seconds averaged per participating rank.
    pub avg_per_rank_secs: f64,
    /// Exclusive seconds summed over ranks (Eq. 6 numerator material).
    pub total_excl_secs: f64,
}

/// A multi-scale scaling study over section profiles.
#[derive(Debug, Clone)]
pub struct ScalingStudy {
    /// Program walltime (MPI_MAIN per-process) vs scale.
    pub walltime: ScalingSeries,
    /// Sequential program total (sum of leaf sections at the smallest p).
    pub seq_total_secs: f64,
    /// Per-section studies, keyed by label.
    pub sections: BTreeMap<String, SectionStudy>,
}

impl ScalingStudy {
    /// Build from `(p, profile)` measurements. Requires at least one
    /// measurement; the smallest `p` serves as the baseline. Sections
    /// missing from some profiles contribute only where present.
    ///
    /// The Eq. 6 numerator is the baseline's total exclusive section time
    /// summed across its ranks. With a sequential baseline (p = 1, the
    /// normal use) that is exactly `Σ_j f_j(n0, 1)`; with a parallel
    /// baseline it is an *estimate* of the sequential total (exact for
    /// work-conserving sections, inflated by whatever overhead the
    /// baseline itself already pays).
    pub fn new(measurements: &[(usize, Profile)]) -> ScalingStudy {
        // World-communicator sections only: sub-communicator sections
        // can share labels across disjoint comms (two "solver" teams),
        // which cannot be lined up across scales by label.
        let rows: Vec<StoredSectionRow> = measurements
            .iter()
            .flat_map(|(p, profile)| {
                // MPI_MAIN is not a world label (it is the program frame),
                // but the store rows must carry it: it is the walltime row.
                let mut labels = vec![MPI_MAIN];
                labels.extend(profile.world_labels());
                labels
                    .into_iter()
                    .filter_map(|label| profile.get_world(label))
                    .map(|stats| StoredSectionRow {
                        p: *p,
                        label: stats.key.label.clone(),
                        avg_per_rank_secs: stats.avg_per_rank_secs(),
                        total_excl_secs: stats.total_excl_secs,
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        assert!(!measurements.is_empty(), "study needs measurements");
        ScalingStudy::from_rows(&rows)
    }

    /// Build from persisted per-(scale, section) rows — the constructor
    /// the mpistudy run store feeds: it has no [`Profile`] objects, only
    /// the rows its metrics documents recorded. Requires at least one
    /// row; the smallest `p` is the baseline, exactly as in
    /// [`ScalingStudy::new`] (the two constructors agree bit-for-bit on
    /// equal inputs — pinned by a test below).
    pub fn from_rows(rows: &[StoredSectionRow]) -> ScalingStudy {
        assert!(!rows.is_empty(), "study needs measurements");
        let mut ps: Vec<usize> = rows.iter().map(|r| r.p).collect();
        ps.sort_unstable();
        ps.dedup();
        let base_p = ps[0];
        // Eq. 6's numerator is the *total program time* — the sum of
        // exclusive section times (they partition the run). Summing
        // inclusive times would double-count nested sections.
        // The MPI_MAIN row is the program frame: it feeds the walltime
        // series, never the section studies or the numerator (its
        // exclusive time is unattributed glue, not a leaf section).
        let seq_total_secs: f64 = rows
            .iter()
            .filter(|r| r.p == base_p && r.label != MPI_MAIN)
            .map(|r| r.total_excl_secs)
            .sum();

        let mut walltime_points = Vec::new();
        // Per label: (per-process time points, Eq. 6 bound points).
        type LabelPoints = (Vec<(usize, f64)>, Vec<(usize, f64)>);
        let mut per_label: BTreeMap<String, LabelPoints> = BTreeMap::new();
        for &p in &ps {
            for row in rows.iter().filter(|r| r.p == p) {
                if row.label == MPI_MAIN {
                    walltime_points.push((p, row.avg_per_rank_secs));
                    continue;
                }
                let entry = per_label.entry(row.label.clone()).or_default();
                entry.0.push((p, row.avg_per_rank_secs));
                // Eq. 6 in per-process form: correct both for MPI scaling
                // (participants == p) and for thread scaling (one rank,
                // p counts threads).
                entry.1.push((
                    p,
                    partial_bound_per_process(seq_total_secs, row.avg_per_rank_secs),
                ));
            }
        }

        let sections = per_label
            .into_iter()
            .map(|(label, (series_points, bounds))| {
                let per_process = ScalingSeries::new(series_points);
                let inflexion_p = if per_process.points().len() >= 2 {
                    per_process.inflexion(0.02).map(|pt| pt.p)
                } else {
                    None
                };
                (
                    label.clone(),
                    SectionStudy {
                        label,
                        per_process,
                        bounds,
                        inflexion_p,
                    },
                )
            })
            .collect();

        ScalingStudy {
            walltime: ScalingSeries::new(walltime_points),
            seq_total_secs,
            sections,
        }
    }

    /// The binding section at scale `p`: smallest Eq. 6 bound there.
    pub fn binding_at(&self, p: usize) -> Option<(&str, f64)> {
        self.sections
            .values()
            .filter_map(|s| {
                s.bounds
                    .iter()
                    .find(|(bp, _)| *bp == p)
                    .map(|(_, b)| (s.label.as_str(), *b))
            })
            .filter(|(_, b)| b.is_finite())
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Sections that have passed their inflexion point before the largest
    /// measured scale — the paper's "should never be ran" configurations.
    pub fn saturated_sections(&self) -> Vec<&SectionStudy> {
        let max_p = self
            .walltime
            .points()
            .last()
            .map(|pt| pt.p)
            .unwrap_or(usize::MAX);
        self.sections
            .values()
            .filter(|s| s.inflexion_p.map(|p| p < max_p).unwrap_or(false))
            .collect()
    }

    /// Measured program speedups relative to the smallest scale.
    pub fn speedups(&self) -> Vec<(usize, f64)> {
        self.walltime.speedups()
    }

    /// Render the study as an aligned text summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "scaling study: baseline total {:.2} s, scales {:?}\n",
            self.seq_total_secs,
            self.walltime
                .points()
                .iter()
                .map(|pt| pt.p)
                .collect::<Vec<_>>()
        );
        out.push_str(&format!(
            "{:<28} {:>10} {:>14} {:>12}\n",
            "section", "inflexion", "bound@max (x)", "t/proc@max"
        ));
        for s in self.sections.values() {
            let last_bound = s
                .bounds
                .last()
                .map(|(_, b)| {
                    if b.is_finite() {
                        format!("{b:.1}")
                    } else {
                        "inf".into()
                    }
                })
                .unwrap_or_default();
            let last_t = s
                .per_process
                .points()
                .last()
                .map(|pt| format!("{:.4}", pt.secs))
                .unwrap_or_default();
            out.push_str(&format!(
                "{:<28} {:>10} {:>14} {:>12}\n",
                s.label,
                s.inflexion_p
                    .map(|p| p.to_string())
                    .unwrap_or_else(|| "-".into()),
                last_bound,
                last_t,
            ));
        }
        if let Some(last) = self.walltime.points().last() {
            if let Some((label, bound)) = self.binding_at(last.p) {
                let measured = self.speedups().last().map(|(_, s)| *s).unwrap_or(0.0);
                out.push_str(&format!(
                    "\nat p = {}: measured S = {measured:.2}, binding section '{label}' \
                     caps S <= {bound:.2}\n",
                    last.p
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::Work;
    use mpi_sections::{SectionProfiler, SectionRuntime, VerifyMode};
    use mpisim::WorldBuilder;

    /// A program with a perfectly parallel phase and a fixed-cost phase.
    fn profile_at(p: usize) -> Profile {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let profiler = SectionProfiler::new();
        sections.attach(profiler.clone());
        let s = sections.clone();
        WorldBuilder::new(p)
            .tool(sections.clone())
            .run(move |proc| {
                let world = proc.world();
                s.scoped(proc, &world, "work", |proc| {
                    proc.compute(Work::flops(6.4e9 / proc.world_size() as f64));
                });
                s.scoped(proc, &world, "fixed", |proc| {
                    proc.advance_secs(0.2);
                });
            })
            .unwrap();
        profiler.snapshot()
    }

    fn study() -> ScalingStudy {
        let ms: Vec<(usize, Profile)> = [1usize, 2, 4, 8, 16, 32]
            .iter()
            .map(|&p| (p, profile_at(p)))
            .collect();
        ScalingStudy::new(&ms)
    }

    #[test]
    fn baseline_and_series() {
        let st = study();
        assert!((st.seq_total_secs - 6.6).abs() < 1e-9);
        let work = &st.sections["work"];
        // Per-process work halves each doubling.
        let pts = work.per_process.points();
        assert!((pts[0].secs - 6.4).abs() < 1e-9);
        assert!((pts[5].secs - 0.2).abs() < 1e-9);
        // Fixed section never improves: inflexion at the first scale.
        assert_eq!(st.sections["fixed"].inflexion_p, Some(1));
        // Work keeps improving: inflexion (min) is the last scale, which
        // is not *before* max_p, so it is not "saturated".
        assert_eq!(work.inflexion_p, Some(32));
        assert_eq!(st.saturated_sections().len(), 1);
    }

    #[test]
    fn binding_section_shifts_with_scale() {
        let st = study();
        // At p=2 the parallel work still dominates (bound 6.6/3.2 ≈ 2.06
        // vs fixed's 33): work binds.
        assert_eq!(st.binding_at(2).unwrap().0, "work");
        // At p=32 work's per-process time (0.2) equals fixed's: both
        // bound at 33; at any larger scale fixed would win. Check the
        // bound values are equal-ish here.
        let (label, bound) = st.binding_at(32).unwrap();
        assert!((bound - 33.0).abs() < 1e-6, "{label} {bound}");
    }

    #[test]
    fn speedups_and_validity() {
        let st = study();
        for (p, s) in st.speedups() {
            if let Some((_, bound)) = st.binding_at(p) {
                assert!(s <= bound + 1e-9, "S={s} > bound {bound} at p={p}");
            }
        }
    }

    #[test]
    fn render_mentions_binding() {
        let text = study().render();
        assert!(text.contains("binding section"));
        assert!(text.contains("work"));
        assert!(text.contains("fixed"));
    }

    #[test]
    #[should_panic(expected = "needs measurements")]
    fn empty_study_rejected() {
        let _ = ScalingStudy::new(&[]);
    }

    #[test]
    #[should_panic(expected = "needs measurements")]
    fn empty_rows_rejected() {
        let _ = ScalingStudy::from_rows(&[]);
    }

    #[test]
    fn from_rows_matches_profile_constructor_bitwise() {
        // The store-ingestion path must agree with the in-process path
        // bit-for-bit, or regenerated figures drift from harness output.
        let ms: Vec<(usize, Profile)> = [1usize, 4, 16]
            .iter()
            .map(|&p| (p, profile_at(p)))
            .collect();
        let rows: Vec<StoredSectionRow> = ms
            .iter()
            .flat_map(|(p, profile)| {
                let mut labels = vec![mpi_sections::MPI_MAIN];
                labels.extend(profile.world_labels());
                labels.into_iter().map(|label| {
                    let stats = profile.get_world(label).expect("listed label");
                    StoredSectionRow {
                        p: *p,
                        label: stats.key.label.clone(),
                        avg_per_rank_secs: stats.avg_per_rank_secs(),
                        total_excl_secs: stats.total_excl_secs,
                    }
                })
            })
            .collect();
        let a = ScalingStudy::new(&ms);
        let b = ScalingStudy::from_rows(&rows);
        assert_eq!(a.seq_total_secs.to_bits(), b.seq_total_secs.to_bits());
        for (wa, wb) in a.walltime.points().iter().zip(b.walltime.points()) {
            assert_eq!(wa.p, wb.p);
            assert_eq!(wa.secs.to_bits(), wb.secs.to_bits());
        }
        assert_eq!(
            a.sections.keys().collect::<Vec<_>>(),
            b.sections.keys().collect::<Vec<_>>()
        );
        for (label, sa) in &a.sections {
            let sb = &b.sections[label];
            assert_eq!(sa.inflexion_p, sb.inflexion_p, "{label}");
            for (pa, pb) in sa.per_process.points().iter().zip(sb.per_process.points()) {
                assert_eq!(pa.p, pb.p);
                assert_eq!(pa.secs.to_bits(), pb.secs.to_bits(), "{label} p={}", pa.p);
            }
            for (ba, bb) in sa.bounds.iter().zip(&sb.bounds) {
                assert_eq!(ba.0, bb.0);
                assert_eq!(ba.1.to_bits(), bb.1.to_bits(), "{label} bound p={}", ba.0);
            }
        }
    }

    #[test]
    fn nested_sections_do_not_inflate_the_numerator() {
        // A parent section wrapping the work must not double the program
        // total (Eq. 6's numerator sums *exclusive* times).
        let nested_profile = |p: usize| {
            let sections = SectionRuntime::new(VerifyMode::Active);
            let profiler = SectionProfiler::new();
            sections.attach(profiler.clone());
            let s = sections.clone();
            WorldBuilder::new(p)
                .tool(sections.clone())
                .run(move |proc| {
                    let world = proc.world();
                    s.scoped(proc, &world, "loop", |proc| {
                        s.scoped(proc, &world, "work", |proc| {
                            proc.compute(Work::flops(4.0e9 / proc.world_size() as f64));
                        });
                    });
                })
                .unwrap();
            profiler.snapshot()
        };
        let st = ScalingStudy::new(&[(1, nested_profile(1)), (4, nested_profile(4))]);
        // Program total is 4 s, not 8 (loop's exclusive time is ~0).
        assert!(
            (st.seq_total_secs - 4.0).abs() < 1e-9,
            "nested double-count: {}",
            st.seq_total_secs
        );
        // And the measured speedup still respects every bound.
        for (p, s) in st.speedups() {
            if let Some((_, bound)) = st.binding_at(p) {
                assert!(s <= bound + 1e-9);
            }
        }
    }

    #[test]
    fn single_measurement_study() {
        let st = ScalingStudy::new(&[(4, profile_at(4))]);
        assert_eq!(st.walltime.points().len(), 1);
        // One point: no inflexion claims.
        assert!(st.sections["work"].inflexion_p.is_none());
        assert!(st.saturated_sections().is_empty());
    }
}
