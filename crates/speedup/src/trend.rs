//! Trend detection over windowed efficiency series.
//!
//! The paper's Fig. 5b finding — HALO time grows with p because jitter
//! *accumulates* across iterations — is a statement about a *trajectory*,
//! not a total. This module turns the per-window POP metrics of
//! [`mpi_sections::Timeline`] into a machine-readable diagnosis: for each
//! section it fits a least-squares line ([`crate::fit::linear_fit`])
//! through the communication-efficiency series, locates the best
//! two-segment change point, names the dominant wait-state class, and
//! flags the section as *degrading* when both the slope and the total
//! drop clear configurable thresholds. A noise-free machine produces
//! flat series and no flags; with jitter on, idle waves accumulate and
//! the detector names the sliding section and why it slides.

use mpi_sections::timeline::{Timeline, WindowSection};
use mpisim::diag::json_str;
use std::fmt::Write as _;

/// Detection thresholds. The defaults are deliberately conservative:
/// synchronization-free compute phases under jitter wobble by a few
/// percent per run without trending anywhere, so a section is flagged
/// only when its communication efficiency both *slides* (slope) and has
/// *lost ground* overall (drop).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrendConfig {
    /// Minimum windows with data before a fit is attempted.
    pub min_windows: usize,
    /// Flag only slopes steeper than this many efficiency points
    /// (fraction of 1.0) lost per window.
    pub slope_threshold: f64,
    /// Flag only when the fitted line loses at least this much efficiency
    /// end to end.
    pub drop_threshold: f64,
}

impl Default for TrendConfig {
    fn default() -> Self {
        TrendConfig {
            min_windows: 4,
            slope_threshold: 0.002,
            drop_threshold: 0.05,
        }
    }
}

/// The fitted trend of one section's communication efficiency.
#[derive(Debug, Clone, PartialEq)]
pub struct SectionTrend {
    /// Section label.
    pub label: String,
    /// Windows with data (fit sample size).
    pub windows: usize,
    /// Least-squares slope, efficiency per window (negative = degrading).
    pub slope: f64,
    /// Fitted value at the first window with data.
    pub fitted_first: f64,
    /// Fitted value at the last window with data.
    pub fitted_last: f64,
    /// Best two-segment split: the window index where the mean shifts,
    /// if splitting there explains at least half the series variance.
    pub change_point: Option<usize>,
    /// Wait-state class holding the largest share of the section's lost
    /// time: `"late-sender"`, `"coll-wait"` or `"transfer"`.
    pub dominant_wait: &'static str,
    /// True when the fit clears both thresholds — the section's
    /// communication efficiency is sliding, not just noisy.
    pub degrading: bool,
}

impl SectionTrend {
    /// Total efficiency change along the fitted line (negative = loss).
    pub fn fitted_drop(&self) -> f64 {
        self.fitted_last - self.fitted_first
    }

    fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"label\":{},\"windows\":{},\"slope\":{:.6},\"fitted_first\":{:.6},\
             \"fitted_last\":{:.6},\"change_point\":",
            json_str(&self.label),
            self.windows,
            self.slope,
            self.fitted_first,
            self.fitted_last,
        );
        match self.change_point {
            Some(w) => {
                let _ = write!(out, "{w}");
            }
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            ",\"dominant_wait\":{},\"degrading\":{}}}",
            json_str(self.dominant_wait),
            self.degrading
        );
        out
    }
}

/// Best two-segment mean split of `ys`: returns `(index, gain)` where
/// `gain` is the fraction of the one-mean sum of squared errors removed
/// by splitting before `index`.
fn change_point(ys: &[f64]) -> Option<(usize, f64)> {
    let n = ys.len();
    if n < 4 {
        return None;
    }
    let sse = |s: &[f64]| -> f64 {
        let m = s.iter().sum::<f64>() / s.len() as f64;
        s.iter().map(|y| (y - m) * (y - m)).sum()
    };
    let total = sse(ys);
    if total < 1e-18 {
        return None;
    }
    let mut best = (0usize, f64::INFINITY);
    for k in 2..=(n - 2) {
        let split = sse(&ys[..k]) + sse(&ys[k..]);
        if split < best.1 {
            best = (k, split);
        }
    }
    let gain = 1.0 - best.1 / total;
    Some((best.0, gain))
}

fn dominant_wait(totals: &WindowSection) -> &'static str {
    let ls = totals.late_sender_ns;
    let cw = totals.coll_wait_ns;
    let tr = totals.transfer_ns;
    if ls >= cw && ls >= tr {
        "late-sender"
    } else if cw >= tr {
        "coll-wait"
    } else {
        "transfer"
    }
}

/// Fit every section's communication-efficiency series and flag the
/// degrading ones. Results are sorted steepest-degrading first, then by
/// label, so the headline offender leads the report.
pub fn detect(tl: &Timeline, cfg: &TrendConfig) -> Vec<SectionTrend> {
    let totals = tl.section_totals();
    let mut trends = Vec::new();
    for label in tl.labels() {
        let series = tl.series(label, |ws| ws.efficiency().comm);
        let presence = tl.series(label, |ws| ws.time_ns as f64);
        // Support filter: at the run's edges a section is only marginally
        // present in its boundary windows (ramp-in on some ranks, drain-out
        // on others), and its capacity-normalized efficiency there reads
        // near 1 regardless of behaviour — those windows would drown the
        // real trajectory. Fit only windows carrying at least half the
        // section's median presence.
        let mut support: Vec<f64> = presence.iter().filter_map(|v| *v).collect();
        support.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = support.get(support.len() / 2).copied().unwrap_or(0.0);
        let points: Vec<(f64, f64)> = series
            .iter()
            .zip(presence.iter())
            .enumerate()
            .filter_map(|(i, (v, pr))| match (v, pr) {
                (Some(y), Some(pr)) if *pr >= 0.5 * median => Some((i as f64, *y)),
                _ => None,
            })
            .collect();
        if points.len() < cfg.min_windows {
            continue;
        }
        let Some((slope, intercept)) = crate::fit::linear_fit(&points) else {
            continue;
        };
        let first_x = points.first().map(|&(x, _)| x).unwrap_or(0.0);
        let last_x = points.last().map(|&(x, _)| x).unwrap_or(0.0);
        let fitted_first = (intercept + slope * first_x).clamp(0.0, 1.0);
        let fitted_last = (intercept + slope * last_x).clamp(0.0, 1.0);
        let ys: Vec<f64> = points.iter().map(|&(_, y)| y).collect();
        let cp = change_point(&ys)
            .filter(|&(_, gain)| gain > 0.5)
            .map(|(k, _)| points[k].0 as usize);
        let degrading =
            slope <= -cfg.slope_threshold && (fitted_first - fitted_last) >= cfg.drop_threshold;
        trends.push(SectionTrend {
            label: label.to_string(),
            windows: points.len(),
            slope,
            fitted_first,
            fitted_last,
            change_point: cp,
            dominant_wait: dominant_wait(totals.get(label).unwrap_or(&WindowSection::default())),
            degrading,
        });
    }
    trends.sort_by(|a, b| {
        b.degrading
            .cmp(&a.degrading)
            .then(
                a.slope
                    .partial_cmp(&b.slope)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(a.label.cmp(&b.label))
    });
    trends
}

/// Render the trend table. Degrading sections are marked `DEGRADING` and
/// carry the diagnosis (dominant wait class, change point).
pub fn render(trends: &[SectionTrend]) -> String {
    let mut out = String::from("communication-efficiency trends (least-squares over windows):\n");
    let _ = writeln!(
        out,
        "{:<24} {:>4} {:>12} {:>7} {:>7}  diagnosis",
        "section", "wins", "slope/win", "first", "last"
    );
    out.push_str(&"-".repeat(78));
    out.push('\n');
    for t in trends {
        let diagnosis = if t.degrading {
            let cp = t
                .change_point
                .map(|w| format!(", shift at window {w}"))
                .unwrap_or_default();
            format!("DEGRADING: {} wait{}", t.dominant_wait, cp)
        } else {
            "steady".to_string()
        };
        let _ = writeln!(
            out,
            "{:<24} {:>4} {:>12.5} {:>7.3} {:>7.3}  {}",
            mpi_sections::report::truncate_label(&t.label, 24),
            t.windows,
            t.slope,
            t.fitted_first,
            t.fitted_last,
            diagnosis,
        );
    }
    if !trends.iter().any(|t| t.degrading) {
        out.push_str("no degrading sections: all trajectories within thresholds\n");
    }
    out
}

/// JSON array of the trends (deterministic order and field layout).
pub fn to_json(trends: &[SectionTrend]) -> String {
    let mut out = String::from("[");
    for (i, t) in trends.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&t.to_json());
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_sections::timeline::{build, Windowing};
    use mpi_sections::{CommRecorder, SectionRuntime, VerifyMode};
    use mpisim::{Src, TagSel, WorldBuilder};

    /// A two-rank pipeline where the sender falls further behind every
    /// step: the receiver's wait share — and so the section's
    /// communication inefficiency — grows window over window.
    fn degrading_timeline() -> Timeline {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let rec = CommRecorder::new();
        let s = sections.clone();
        WorldBuilder::new(2)
            .tool(sections.clone())
            .tool(rec.clone())
            .run(move |p| {
                let world = p.world();
                for step in 0..8u64 {
                    s.scoped(p, &world, "PIPE", |p| {
                        let world = p.world();
                        if p.world_rank() == 0 {
                            p.advance_secs(1.0 + step as f64 * 0.5);
                            world.send(p, 1, 0, &[1u8; 8]);
                        } else {
                            p.advance_secs(1.0);
                            let _ = world.recv::<u8>(p, Src::Rank(0), TagSel::Any);
                        }
                    });
                }
            })
            .unwrap();
        build(&rec.freeze(), &Windowing::Fixed(8))
    }

    /// Both ranks do identical compute and exchange promptly: flat.
    fn steady_timeline() -> Timeline {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let rec = CommRecorder::new();
        let s = sections.clone();
        WorldBuilder::new(2)
            .tool(sections.clone())
            .tool(rec.clone())
            .run(move |p| {
                let world = p.world();
                for _ in 0..8u64 {
                    s.scoped(p, &world, "STEP", |p| {
                        let world = p.world();
                        p.advance_secs(1.0);
                        let peer = 1 - p.world_rank();
                        if p.world_rank() == 0 {
                            world.send(p, peer, 0, &[1u8; 8]);
                            let _ = world.recv::<u8>(p, Src::Rank(peer), TagSel::Any);
                        } else {
                            let _ = world.recv::<u8>(p, Src::Rank(peer), TagSel::Any);
                            world.send(p, peer, 0, &[1u8; 8]);
                        }
                    });
                }
            })
            .unwrap();
        build(&rec.freeze(), &Windowing::Fixed(8))
    }

    #[test]
    fn growing_imbalance_is_flagged_with_cause() {
        let trends = detect(&degrading_timeline(), &TrendConfig::default());
        let pipe = trends.iter().find(|t| t.label == "PIPE").unwrap();
        assert!(pipe.degrading, "{pipe:?}");
        assert!(pipe.slope < 0.0);
        assert!(pipe.fitted_first > pipe.fitted_last);
        assert_eq!(pipe.dominant_wait, "late-sender");
        // The degrading section sorts first.
        assert_eq!(trends[0].label, "PIPE");
    }

    #[test]
    fn steady_exchange_is_not_flagged() {
        let trends = detect(&steady_timeline(), &TrendConfig::default());
        assert!(
            trends.iter().all(|t| !t.degrading),
            "{:?}",
            trends
                .iter()
                .map(|t| (&t.label, t.slope))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn change_point_finds_a_step() {
        let mut ys = vec![0.9; 6];
        ys.extend(vec![0.4; 6]);
        let (k, gain) = change_point(&ys).unwrap();
        assert_eq!(k, 6);
        assert!(gain > 0.9, "{gain}");
        // Flat series has no change point.
        assert_eq!(change_point(&[0.5; 8]), None);
        assert_eq!(change_point(&[0.1, 0.9]), None);
    }

    #[test]
    fn render_and_json_are_stable() {
        let trends = detect(&degrading_timeline(), &TrendConfig::default());
        let text = render(&trends);
        assert!(text.contains("DEGRADING: late-sender"), "{text}");
        let json = to_json(&trends);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"dominant_wait\":\"late-sender\""), "{json}");
        assert_eq!(to_json(&[]), "[]");
        let empty = render(&[]);
        assert!(empty.contains("no degrading sections"), "{empty}");
    }
}
