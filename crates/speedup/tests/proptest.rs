//! Property tests for the scaling-law layer: algebraic identities and
//! order relations between the classical laws and the partial bounds.

use proptest::prelude::*;
use speedup::ScalingSeries;
use speedup::{efficiency, karp_flatt, laws, partial_bound, partial_bound_per_process, speedup};

proptest! {
    #[test]
    fn speedup_and_efficiency_relations(
        seq in 0.001f64..1e6,
        par in 0.001f64..1e6,
        p in 1usize..4096,
    ) {
        let s = speedup(seq, par);
        prop_assert!(s >= 0.0);
        prop_assert!((efficiency(seq, par, p) - s / p as f64).abs() < 1e-12);
    }

    #[test]
    fn amdahl_bounds_gustafson_relation(fs in 0.0f64..1.0, p in 1usize..4096) {
        let amdahl = laws::amdahl::bound(fs, p);
        let gustafson = laws::gustafson::scaled_speedup(fs, p);
        // Both bounded by p; Gustafson (scaled problem) >= Amdahl (fixed).
        prop_assert!(amdahl <= p as f64 + 1e-9);
        prop_assert!(gustafson <= p as f64 + 1e-9);
        prop_assert!(gustafson + 1e-9 >= amdahl);
        prop_assert!(amdahl <= laws::amdahl::limit(fs) + 1e-9);
    }

    #[test]
    fn karp_flatt_inverts_amdahl(fs in 0.001f64..0.999, p in 2usize..4096) {
        let s = laws::amdahl::bound(fs, p);
        prop_assert!((karp_flatt(s, p) - fs).abs() < 1e-6);
    }

    #[test]
    fn partial_bound_forms_agree(
        seq in 0.001f64..1e6,
        section_total in 0.001f64..1e6,
        p in 1usize..4096,
    ) {
        let total_form = partial_bound(seq, section_total, p);
        let per_process = partial_bound_per_process(seq, section_total / p as f64);
        prop_assert!((total_form - per_process).abs() / total_form < 1e-9);
    }

    #[test]
    fn bound_dominates_any_consistent_walltime(
        section in 0.001f64..100.0,
        other in 0.0f64..100.0,
        seq in 1.0f64..1e5,
        _p in 1usize..1024,
    ) {
        // If a program's per-process walltime is section + other, then the
        // measured speedup can never exceed the section's Eq. 6 bound.
        let wall = section + other;
        let measured = speedup(seq, wall);
        let bound = partial_bound_per_process(seq, section);
        prop_assert!(measured <= bound + 1e-9);
    }

    #[test]
    fn inflexion_is_a_global_minimum(
        times in prop::collection::vec(0.001f64..1e4, 1..32),
    ) {
        let points: Vec<(usize, f64)> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i + 1, t))
            .collect();
        let series = ScalingSeries::new(points);
        let inf = series.inflexion(0.0).unwrap();
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!((inf.secs - min).abs() < 1e-12);
        // Tolerance can only move the inflexion earlier (or keep it).
        let loose = series.inflexion(0.5).unwrap();
        prop_assert!(loose.p <= inf.p);
    }

    #[test]
    fn speedups_are_baseline_relative(
        times in prop::collection::vec(0.001f64..1e4, 1..32),
    ) {
        let points: Vec<(usize, f64)> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i + 1, t))
            .collect();
        let series = ScalingSeries::new(points);
        let speedups = series.speedups();
        prop_assert_eq!(speedups[0].1, 1.0);
        for (i, &(p, s)) in speedups.iter().enumerate() {
            prop_assert_eq!(p, i + 1);
            prop_assert!((s - times[0] / times[i]).abs() < 1e-9);
        }
    }
}
