//! Face-ghost exchange over the cubic process grid.
//!
//! Each exchange swaps one element-field face (`s²` doubles) with each of
//! the up-to-six face neighbours, via combined sendrecv (deadlock-free
//! under the runtime's eager protocol). Timing mode sends virtual payloads
//! of identical logical size.

use crate::config::Fidelity;
use crate::mesh::{face_index, Decomposition, FaceGhosts, Field3};
use mpisim::{Comm, Proc, Src, TagSel};

/// Tag for a face travelling towards the low side of `axis`.
fn tag_low(axis: usize) -> i32 {
    300 + 2 * axis as i32
}

/// Tag for a face travelling towards the high side of `axis`.
fn tag_high(axis: usize) -> i32 {
    301 + 2 * axis as i32
}

/// Exchange the boundary faces of `field` with all face neighbours.
/// Returns the received ghosts (empty at global boundaries).
pub fn exchange_faces(
    p: &mut Proc,
    comm: &Comm,
    decomp: &Decomposition,
    field: &Field3,
    fidelity: Fidelity,
) -> FaceGhosts {
    let mut ghosts = FaceGhosts::default();
    let s2 = decomp.s * decomp.s;
    for axis in 0..3 {
        // Low-side neighbour: my low face travels low; their high face
        // arrives here.
        if let Some(nbr) = decomp.neighbor(axis, 0) {
            match fidelity {
                Fidelity::Full => {
                    let mine = field.face(axis, 0);
                    let got = comm.sendrecv(
                        p,
                        nbr,
                        tag_low(axis),
                        &mine,
                        Src::Rank(nbr),
                        TagSel::Is(tag_high(axis)),
                    );
                    ghosts.faces[face_index(axis, 0)] = Some(got.data);
                }
                Fidelity::Timing => {
                    let _ = comm.sendrecv_virtual::<f64>(
                        p,
                        nbr,
                        tag_low(axis),
                        s2,
                        Src::Rank(nbr),
                        TagSel::Is(tag_high(axis)),
                    );
                }
            }
        }
        // High-side neighbour: my high face travels high; their low face
        // arrives here.
        if let Some(nbr) = decomp.neighbor(axis, 1) {
            match fidelity {
                Fidelity::Full => {
                    let mine = field.face(axis, 1);
                    let got = comm.sendrecv(
                        p,
                        nbr,
                        tag_high(axis),
                        &mine,
                        Src::Rank(nbr),
                        TagSel::Is(tag_low(axis)),
                    );
                    ghosts.faces[face_index(axis, 1)] = Some(got.data);
                }
                Fidelity::Timing => {
                    let _ = comm.sendrecv_virtual::<f64>(
                        p,
                        nbr,
                        tag_high(axis),
                        s2,
                        Src::Rank(nbr),
                        TagSel::Is(tag_low(axis)),
                    );
                }
            }
        }
    }
    ghosts
}

/// Exchange nodal boundary-face values (size `(s+1)²`) for the
/// `CommSyncPosVel` section. In full fidelity the received values are
/// *checked* against the local copies of the shared nodes — duplicated
/// nodes must agree bit-for-bit if the nodal kernels are truly
/// decomposition-independent.
pub fn sync_shared_nodes(
    p: &mut Proc,
    comm: &Comm,
    decomp: &Decomposition,
    nodal: &[f64],
    fidelity: Fidelity,
) {
    let sn = decomp.s + 1;
    let idx = |i: usize, j: usize, k: usize| (k * sn + j) * sn + i;
    let extract = |axis: usize, side: usize| -> Vec<f64> {
        let fixed = if side == 0 { 0 } else { sn - 1 };
        let mut out = Vec::with_capacity(sn * sn);
        for b in 0..sn {
            for a in 0..sn {
                let (i, j, k) = match axis {
                    0 => (fixed, a, b),
                    1 => (a, fixed, b),
                    _ => (a, b, fixed),
                };
                out.push(nodal[idx(i, j, k)]);
            }
        }
        out
    };
    for axis in 0..3 {
        for side in 0..2 {
            if let Some(nbr) = decomp.neighbor(axis, side) {
                let (my_tag, their_tag) = if side == 0 {
                    (tag_low(axis), tag_high(axis))
                } else {
                    (tag_high(axis), tag_low(axis))
                };
                match fidelity {
                    Fidelity::Full => {
                        let mine = extract(axis, side);
                        let got = comm.sendrecv(
                            p,
                            nbr,
                            my_tag,
                            &mine,
                            Src::Rank(nbr),
                            TagSel::Is(their_tag),
                        );
                        // The neighbour's copy of our shared face must be
                        // identical: both ranks integrate the same nodal
                        // formula over the same global coordinates.
                        assert_eq!(
                            got.data, mine,
                            "shared nodal face disagrees with neighbour {nbr} \
                             (axis {axis}, side {side})"
                        );
                    }
                    Fidelity::Timing => {
                        let _ = comm.sendrecv_virtual::<f64>(
                            p,
                            nbr,
                            my_tag,
                            sn * sn,
                            Src::Rank(nbr),
                            TagSel::Is(their_tag),
                        );
                    }
                }
            }
        }
    }
}
