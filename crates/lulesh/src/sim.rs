//! The LULESH-proxy time loop, outlined with the paper's 21 MPI sections.
//!
//! "We added 21 sections in the main source file in order to outline main
//! computation steps" (§5.2). The labels below follow LULESH's own function
//! names. `timeloop` accounts for ≈99% of `MPI_MAIN`, and within it the two
//! mutually exclusive phases `LagrangeNodal` and `LagrangeElements`
//! dominate — the structure Figs. 8–10 measure.

use crate::comm::{exchange_faces, sync_shared_nodes};
use crate::config::{Fidelity, LuleshConfig};
use crate::mesh::{Decomposition, FaceGhosts, Field3};
use crate::physics::{self, State};
use mpi_sections::SectionRuntime;
use mpisim::Proc;
use shmem::Team;

/// The 21 section labels, in first-entry order.
pub const SECTION_LABELS: [&str; 21] = [
    "timeloop",
    "TimeIncrement",
    "LagrangeLeapFrog",
    "LagrangeNodal",
    "CalcForceForNodes",
    "IntegrateStressForElems",
    "CommSBN",
    "CalcHourglassControlForElems",
    "CalcAccelerationForNodes",
    "ApplyAccelerationBC",
    "CalcVelocityForNodes",
    "CalcPositionForNodes",
    "CommSyncPosVel",
    "LagrangeElements",
    "CalcLagrangeElements",
    "CalcQForElems",
    "CommMonoQ",
    "ApplyMaterialPropertiesForElems",
    "UpdateVolumesForElems",
    "CalcTimeConstraintsForElems",
    "CalcCourantHydroConstraint",
];

/// Per-rank outcome of a run.
#[derive(Debug, Clone)]
pub struct LuleshOutcome {
    /// Iterations executed.
    pub iterations: usize,
    /// Final global time step.
    pub final_dt: f64,
    /// Global total energy (`Full` fidelity; identical on every rank).
    pub total_energy: Option<f64>,
    /// The gathered global energy field (rank 0, `Full` + `collect`).
    pub global_energy: Option<Field3>,
}

/// Run an element kernel over the local block under the thread team:
/// prices the loop in both fidelity modes and executes `body` per element
/// in `Full` mode.
fn elem_kernel<F>(
    p: &mut Proc,
    team: &Team,
    s: usize,
    flops: f64,
    state: Option<&mut State>,
    body: F,
) where
    F: FnMut(&mut State, usize, usize, usize),
{
    let n = s * s * s;
    match state {
        Some(st) => {
            let mut body = body;
            team.parallel_for_uniform(p, n, physics::elem_work(flops), |idx| {
                let i = idx % s;
                let j = (idx / s) % s;
                let k = idx / (s * s);
                body(&mut *st, i, j, k);
            });
        }
        None => {
            team.for_cost_uniform(p, n, physics::elem_work(flops));
        }
    }
}

/// Like [`elem_kernel`] but spread over `regions` separate parallel
/// regions (real LULESH functions contain several `omp parallel for` loop
/// nests each): the body executes in the first region; the rest are priced
/// only. Region count drives fork/join overhead.
fn elem_kernel_split<F>(
    p: &mut Proc,
    team: &Team,
    s: usize,
    flops: f64,
    regions: usize,
    state: Option<&mut State>,
    body: F,
) where
    F: FnMut(&mut State, usize, usize, usize),
{
    let per = flops / regions.max(1) as f64;
    elem_kernel(p, team, s, per, state, body);
    for _ in 1..regions {
        team.for_cost_uniform(p, s * s * s, physics::elem_work(per));
    }
}

/// Run the proxy as the SPMD body of one rank. The world size must be a
/// perfect cube (Fig. 7: 1, 8, 27, 64).
pub fn run_lulesh(p: &mut Proc, sections: &SectionRuntime, cfg: &LuleshConfig) -> LuleshOutcome {
    let world = p.world();
    let nranks = world.size();
    let decomp = Decomposition::new(nranks, world.rank(), cfg.s);
    let team = Team::new(cfg.threads).with_schedule(cfg.schedule);
    let s = cfg.s;
    let n_elems = cfg.elems();
    let n_nodes = cfg.nodes();
    let sn = s + 1;
    let dx = 1.0 / decomp.global_elems() as f64;
    let full = cfg.fidelity == Fidelity::Full;

    let owns_origin = (0..3).all(|axis| decomp.coord(axis) == 0);
    let mut state = full.then(|| State::init(s, owns_origin));

    // Which of this rank's node planes sit on the global low boundary
    // (LULESH's symmetry planes); used by ApplyAccelerationBC.
    let at_low = [
        decomp.at_global_boundary(0, 0),
        decomp.at_global_boundary(1, 0),
        decomp.at_global_boundary(2, 0),
    ];
    let boundary_nodes: usize = at_low.iter().filter(|&&b| b).count() * sn * sn;

    // Initial dt guess: identical on all ranks.
    let mut dt_local =
        physics::CFL * dx / ((physics::GAMMA - 1.0) * physics::GAMMA * physics::E_SPIKE).sqrt();
    let mut dt = dt_local;

    sections.scoped(p, &world, "timeloop", |p| {
        for _iter in 0..cfg.iterations {
            // ---- TimeIncrement: the global dt reduction. -----------------
            sections.scoped(p, &world, "TimeIncrement", |p| {
                dt = world.allreduce_min_f64(p, dt_local);
            });

            sections.scoped(p, &world, "LagrangeLeapFrog", |p| {
                // ==== LagrangeNodal =======================================
                sections.scoped(p, &world, "LagrangeNodal", |p| {
                    sections.scoped(p, &world, "CalcForceForNodes", |p| {
                        sections.scoped(p, &world, "IntegrateStressForElems", |p| {
                            elem_kernel(
                                p,
                                &team,
                                s,
                                physics::STRESS_FLOPS,
                                state.as_mut(),
                                physics::integrate_stress,
                            );
                        });
                        let p_ghosts = sections.scoped(p, &world, "CommSBN", |p| match &state {
                            Some(st) => exchange_faces(p, &world, &decomp, &st.p, cfg.fidelity),
                            None => {
                                let dummy = Field3::constant(0, 0.0);
                                let _ =
                                    exchange_faces(p, &world, &decomp, &dummy, Fidelity::Timing);
                                FaceGhosts::default()
                            }
                        });
                        sections.scoped(p, &world, "CalcHourglassControlForElems", |p| {
                            elem_kernel(
                                p,
                                &team,
                                s,
                                physics::HOURGLASS_FLOPS,
                                state.as_mut(),
                                |st, i, j, k| physics::hourglass_control(st, &p_ghosts, i, j, k),
                            );
                        });
                    });

                    sections.scoped(p, &world, "CalcAccelerationForNodes", |p| {
                        let work = physics::node_work(physics::NODE_ACCEL_FLOPS);
                        match state.as_mut() {
                            Some(st) => {
                                let off = [decomp.offset(0), decomp.offset(1), decomp.offset(2)];
                                let u = &mut st.u;
                                team.parallel_for_uniform(p, n_nodes, work, |idx| {
                                    let i = idx % sn;
                                    let j = (idx / sn) % sn;
                                    let k = idx / (sn * sn);
                                    physics::node_accel(
                                        &mut u[idx],
                                        dt,
                                        off[0] + i,
                                        off[1] + j,
                                        off[2] + k,
                                    );
                                });
                            }
                            None => {
                                team.for_cost_uniform(p, n_nodes, work);
                            }
                        }
                    });

                    sections.scoped(p, &world, "ApplyAccelerationBC", |p| {
                        let work = physics::node_work(physics::NODE_BC_FLOPS);
                        team.for_cost_uniform(p, boundary_nodes, work);
                        if let Some(st) = state.as_mut() {
                            // Zero the velocities on the symmetry planes.
                            for k in 0..sn {
                                for j in 0..sn {
                                    for i in 0..sn {
                                        let on_plane = (at_low[0] && i == 0)
                                            || (at_low[1] && j == 0)
                                            || (at_low[2] && k == 0);
                                        if on_plane {
                                            st.u[(k * sn + j) * sn + i] = 0.0;
                                        }
                                    }
                                }
                            }
                        }
                    });

                    sections.scoped(p, &world, "CalcVelocityForNodes", |p| {
                        let work = physics::node_work(physics::NODE_VEL_FLOPS);
                        match state.as_mut() {
                            Some(st) => {
                                let u = &mut st.u;
                                team.parallel_for_uniform(p, n_nodes, work, |idx| {
                                    physics::node_velocity(&mut u[idx], dt);
                                });
                            }
                            None => {
                                team.for_cost_uniform(p, n_nodes, work);
                            }
                        }
                    });

                    sections.scoped(p, &world, "CalcPositionForNodes", |p| {
                        let work = physics::node_work(physics::NODE_POS_FLOPS);
                        match state.as_mut() {
                            Some(st) => {
                                let (u, xd) = (&st.u, &mut st.xd);
                                team.parallel_for_uniform(p, n_nodes, work, |idx| {
                                    physics::node_position(&mut xd[idx], u[idx], dt);
                                });
                            }
                            None => {
                                team.for_cost_uniform(p, n_nodes, work);
                            }
                        }
                    });

                    sections.scoped(p, &world, "CommSyncPosVel", |p| match &state {
                        Some(st) => sync_shared_nodes(p, &world, &decomp, &st.u, cfg.fidelity),
                        None => sync_shared_nodes(p, &world, &decomp, &[], Fidelity::Timing),
                    });
                });

                // ==== LagrangeElements ====================================
                sections.scoped(p, &world, "LagrangeElements", |p| {
                    sections.scoped(p, &world, "CalcLagrangeElements", |p| {
                        elem_kernel_split(
                            p,
                            &team,
                            s,
                            physics::KINEMATICS_FLOPS,
                            physics::KINEMATICS_REGIONS,
                            state.as_mut(),
                            |st, i, j, k| physics::kinematics(st, dt, i, j, k),
                        );
                    });

                    sections.scoped(p, &world, "CalcQForElems", |p| {
                        let e_ghosts = sections.scoped(p, &world, "CommMonoQ", |p| match &state {
                            Some(st) => exchange_faces(p, &world, &decomp, &st.e, cfg.fidelity),
                            None => {
                                let dummy = Field3::constant(0, 0.0);
                                let _ =
                                    exchange_faces(p, &world, &decomp, &dummy, Fidelity::Timing);
                                FaceGhosts::default()
                            }
                        });
                        let q_per =
                            physics::MONOTONIC_Q_FLOPS / physics::MONOTONIC_Q_REGIONS as f64;
                        match state.as_mut() {
                            Some(st) => {
                                let e_prev = st.e.clone();
                                team.parallel_for_uniform(
                                    p,
                                    n_elems,
                                    physics::elem_work(q_per),
                                    |idx| {
                                        let i = idx % s;
                                        let j = (idx / s) % s;
                                        let k = idx / (s * s);
                                        physics::monotonic_q(st, &e_prev, &e_ghosts, dt, i, j, k);
                                    },
                                );
                            }
                            None => {
                                team.for_cost_uniform(p, n_elems, physics::elem_work(q_per));
                            }
                        }
                        for _ in 1..physics::MONOTONIC_Q_REGIONS {
                            team.for_cost_uniform(p, n_elems, physics::elem_work(q_per));
                        }
                    });

                    sections.scoped(p, &world, "ApplyMaterialPropertiesForElems", |p| {
                        match cfg.cost_gradient {
                            None => elem_kernel_split(
                                p,
                                &team,
                                s,
                                physics::EOS_FLOPS,
                                physics::EOS_REGIONS,
                                state.as_mut(),
                                |st, i, j, k| physics::eval_eos(st, dt, i, j, k),
                            ),
                            Some(gradient) => {
                                // Material-cost imbalance: EOS cost per
                                // element ramps along the global x axis,
                                // so the priced loop must be weighted.
                                let per = physics::EOS_FLOPS / physics::EOS_REGIONS as f64;
                                let ox = decomp.offset(0);
                                let gn = decomp.global_elems();
                                let weight = |idx: usize| {
                                    let gx = ox + idx % s;
                                    physics::elem_work(
                                        per * physics::gradient_multiplier(
                                            gx,
                                            gn,
                                            gradient.max_multiplier,
                                        ),
                                    )
                                };
                                match state.as_mut() {
                                    Some(st) => {
                                        team.parallel_for_weighted(p, n_elems, weight, |idx| {
                                            let i = idx % s;
                                            let j = (idx / s) % s;
                                            let k = idx / (s * s);
                                            physics::eval_eos(st, dt, i, j, k);
                                        });
                                    }
                                    None => {
                                        team.parallel_for_weighted(p, n_elems, weight, |_| {});
                                    }
                                }
                                for _ in 1..physics::EOS_REGIONS {
                                    team.parallel_for_weighted(p, n_elems, weight, |_| {});
                                }
                            }
                        }
                    });

                    sections.scoped(p, &world, "UpdateVolumesForElems", |p| {
                        elem_kernel(
                            p,
                            &team,
                            s,
                            physics::VOLUME_FLOPS,
                            state.as_mut(),
                            physics::update_volumes,
                        );
                    });
                });

                // ==== CalcTimeConstraints =================================
                sections.scoped(p, &world, "CalcTimeConstraintsForElems", |p| {
                    sections.scoped(p, &world, "CalcCourantHydroConstraint", |p| {
                        let work = physics::elem_work(physics::CONSTRAINT_FLOPS);
                        dt_local = match &state {
                            Some(st) => team.parallel_reduce_uniform(
                                p,
                                n_elems,
                                work,
                                f64::INFINITY,
                                |acc: f64, idx| {
                                    let i = idx % s;
                                    let j = (idx / s) % s;
                                    let k = idx / (s * s);
                                    acc.min(physics::element_dt(st, dx, i, j, k))
                                },
                            ),
                            None => {
                                team.for_cost_uniform(p, n_elems, work);
                                dt_local
                            }
                        };
                    });
                });
            });
        }
    });

    // Post-loop validation/collection (inside MPI_MAIN, outside timeloop).
    let total_energy = state.as_ref().map(|st| {
        let local = st.total_energy();
        world.allreduce_sum_f64(p, local)
    });
    let global_energy = if cfg.collect && full {
        gather_energy(p, &decomp, state.as_ref().expect("full fidelity"))
    } else {
        None
    };

    LuleshOutcome {
        iterations: cfg.iterations,
        final_dt: dt,
        total_energy,
        global_energy,
    }
}

/// Gather the element energy field onto rank 0, reassembled in global
/// index order.
fn gather_energy(p: &mut Proc, decomp: &Decomposition, state: &State) -> Option<Field3> {
    let world = p.world();
    let all = world.gatherv(p, 0, state.e.data.clone());
    if world.rank() != 0 {
        return None;
    }
    let s = decomp.s;
    let side = decomp.side();
    let gs = side * s;
    let mut global = Field3::constant(gs, 0.0);
    for (rank, chunk) in all.into_iter().enumerate() {
        let d = Decomposition::new(world.size(), rank, s);
        let (ox, oy, oz) = (d.offset(0), d.offset(1), d.offset(2));
        for k in 0..s {
            for j in 0..s {
                for i in 0..s {
                    *global.get_mut(ox + i, oy + j, oz + k) = chunk[(k * s + j) * s + i];
                }
            }
        }
    }
    Some(global)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_21_sections() {
        assert_eq!(SECTION_LABELS.len(), 21);
        let mut unique = SECTION_LABELS.to_vec();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 21, "labels must be distinct");
    }
}
