//! Structured 3-D mesh fields and the cubic domain decomposition.
//!
//! Each MPI process owns an `s × s × s` block of elements (and the
//! `(s+1)³` nodes of its closure) of a globally cubic mesh, placed on a
//! `side × side × side` process grid (Fig. 7: p ∈ {1, 8, 27, 64}).
//! Element-centred fields support face extraction and ghost-face lookup so
//! stencil kernels compute *exactly* what a sequential run computes — the
//! proxy's decomposition-independence test rests on this.

use mpisim::CartGrid;

/// Axis index: 0 = x (fastest), 1 = y, 2 = z (slowest).
pub type Axis = usize;

/// Face side along an axis: 0 = low (coordinate 0), 1 = high.
pub type Side = usize;

/// Index of a face in `[Option<_>; 6]` ghost arrays.
#[inline]
pub fn face_index(axis: Axis, side: Side) -> usize {
    axis * 2 + side
}

/// An element-centred scalar field on the local `s³` block.
/// Layout: `data[(k*s + j)*s + i]` (x fastest).
#[derive(Debug, Clone, PartialEq)]
pub struct Field3 {
    /// Local edge length in elements.
    pub s: usize,
    /// The samples.
    pub data: Vec<f64>,
}

impl Field3 {
    /// A constant field.
    pub fn constant(s: usize, value: f64) -> Field3 {
        Field3 {
            s,
            data: vec![value; s * s * s],
        }
    }

    /// Flat index of `(i, j, k)`.
    #[inline]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        (k * self.s + j) * self.s + i
    }

    /// Value at `(i, j, k)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize) -> f64 {
        self.data[self.idx(i, j, k)]
    }

    /// Mutable access at `(i, j, k)`.
    #[inline]
    pub fn get_mut(&mut self, i: usize, j: usize, k: usize) -> &mut f64 {
        let idx = self.idx(i, j, k);
        &mut self.data[idx]
    }

    /// Extract the boundary face on `(axis, side)` as a contiguous `s²`
    /// vector, iterated in (slow, fast) order of the two remaining axes.
    pub fn face(&self, axis: Axis, side: Side) -> Vec<f64> {
        let s = self.s;
        let fixed = if side == 0 { 0 } else { s - 1 };
        let mut out = Vec::with_capacity(s * s);
        match axis {
            0 => {
                for k in 0..s {
                    for j in 0..s {
                        out.push(self.get(fixed, j, k));
                    }
                }
            }
            1 => {
                for k in 0..s {
                    for i in 0..s {
                        out.push(self.get(i, fixed, k));
                    }
                }
            }
            2 => {
                for j in 0..s {
                    for i in 0..s {
                        out.push(self.get(i, j, fixed));
                    }
                }
            }
            _ => panic!("axis must be 0..3"),
        }
        out
    }

    /// Value of the neighbour of `(i, j, k)` one step along `(axis, side)`:
    /// a local element when the step stays inside the block, the ghost face
    /// when one exists across the boundary, the element itself otherwise
    /// (reflective / zero-flux at the global border).
    #[inline]
    pub fn neighbor(
        &self,
        ghosts: &FaceGhosts,
        i: usize,
        j: usize,
        k: usize,
        axis: Axis,
        side: Side,
    ) -> f64 {
        let s = self.s;
        let coord = [i, j, k][axis];
        let inside = if side == 0 { coord > 0 } else { coord + 1 < s };
        if inside {
            let (mut ni, mut nj, mut nk) = (i, j, k);
            match axis {
                0 => ni = if side == 0 { i - 1 } else { i + 1 },
                1 => nj = if side == 0 { j - 1 } else { j + 1 },
                _ => nk = if side == 0 { k - 1 } else { k + 1 },
            }
            return self.get(ni, nj, nk);
        }
        match &ghosts.faces[face_index(axis, side)] {
            Some(face) => {
                // The face vector uses (slow, fast) order of the two free
                // axes, matching Field3::face.
                let (a, b) = match axis {
                    0 => (j, k), // fast j, slow k
                    1 => (i, k),
                    _ => (i, j),
                };
                face[b * s + a]
            }
            None => self.get(i, j, k), // reflective at the global border
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }
}

/// Ghost faces of one element field, indexed by [`face_index`].
#[derive(Debug, Clone, Default)]
pub struct FaceGhosts {
    /// `None` where no neighbour exists (global boundary).
    pub faces: [Option<Vec<f64>>; 6],
}

/// The cubic process decomposition.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// The process grid (side × side × side).
    pub grid: CartGrid,
    /// This process's rank in the grid.
    pub rank: usize,
    /// Grid coordinates, `[cz, cy, cx]` in the grid's row-major order.
    pub coords: Vec<usize>,
    /// Per-process edge length in elements.
    pub s: usize,
}

impl Decomposition {
    /// Build for `nranks` processes (must be a perfect cube).
    pub fn new(nranks: usize, rank: usize, s: usize) -> Decomposition {
        let grid = CartGrid::cube(nranks);
        let coords = grid.coords_of(rank);
        Decomposition {
            grid,
            rank,
            coords,
            s,
        }
    }

    /// Edge length of the process grid.
    pub fn side(&self) -> usize {
        self.grid.dims()[0]
    }

    /// The grid coordinate along a mesh axis (x = grid dim 2, the fastest).
    #[inline]
    pub fn coord(&self, axis: Axis) -> usize {
        // Mesh axis 0 (x) is the fastest-varying rank dimension (grid dim
        // 2); mesh axis 2 (z) the slowest (grid dim 0).
        self.coords[2 - axis]
    }

    /// Neighbouring rank one step along `(axis, side)`, if any.
    pub fn neighbor(&self, axis: Axis, side: Side) -> Option<usize> {
        let disp = if side == 0 { -1 } else { 1 };
        self.grid.neighbor(self.rank, 2 - axis, disp)
    }

    /// Global element offset of this block along a mesh axis.
    pub fn offset(&self, axis: Axis) -> usize {
        self.coord(axis) * self.s
    }

    /// Is this block's `(axis, side)` face on the global boundary?
    pub fn at_global_boundary(&self, axis: Axis, side: Side) -> bool {
        if side == 0 {
            self.coord(axis) == 0
        } else {
            self.coord(axis) + 1 == self.side()
        }
    }

    /// Global edge length in elements.
    pub fn global_elems(&self) -> usize {
        self.side() * self.s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(s: usize) -> Field3 {
        let mut f = Field3::constant(s, 0.0);
        for k in 0..s {
            for j in 0..s {
                for i in 0..s {
                    *f.get_mut(i, j, k) = (i + 10 * j + 100 * k) as f64;
                }
            }
        }
        f
    }

    #[test]
    fn indexing_layout() {
        let f = ramp(4);
        assert_eq!(f.get(1, 2, 3), 321.0);
        assert_eq!(f.idx(1, 0, 0), 1); // x fastest
        assert_eq!(f.idx(0, 1, 0), 4);
        assert_eq!(f.idx(0, 0, 1), 16);
    }

    #[test]
    fn face_extraction() {
        let f = ramp(3);
        // x-low face: i = 0, values 10j + 100k in (j fast, k slow) order.
        let xlow = f.face(0, 0);
        assert_eq!(xlow.len(), 9);
        assert_eq!(xlow[0], 0.0);
        assert_eq!(xlow[1], 10.0); // j=1, k=0
        assert_eq!(xlow[3], 100.0); // j=0, k=1
                                    // z-high face: k = 2.
        let zhigh = f.face(2, 1);
        assert_eq!(zhigh[0], 200.0);
        assert_eq!(zhigh[1], 201.0); // i=1, j=0
    }

    #[test]
    fn neighbor_interior() {
        let f = ramp(4);
        let ghosts = FaceGhosts::default();
        assert_eq!(f.neighbor(&ghosts, 2, 2, 2, 0, 0), f.get(1, 2, 2));
        assert_eq!(f.neighbor(&ghosts, 2, 2, 2, 1, 1), f.get(2, 3, 2));
    }

    #[test]
    fn neighbor_reflects_without_ghost() {
        let f = ramp(4);
        let ghosts = FaceGhosts::default();
        assert_eq!(f.neighbor(&ghosts, 0, 1, 1, 0, 0), f.get(0, 1, 1));
        assert_eq!(f.neighbor(&ghosts, 3, 1, 1, 0, 1), f.get(3, 1, 1));
    }

    #[test]
    fn neighbor_uses_ghost_face() {
        let f = ramp(3);
        let mut ghosts = FaceGhosts::default();
        // A ghost on the x-low face with recognizable values.
        let ghost: Vec<f64> = (0..9).map(|v| 1000.0 + v as f64).collect();
        ghosts.faces[face_index(0, 0)] = Some(ghost);
        // Element (0, j=1, k=2) -> ghost index b*s + a = k*3 + j = 7.
        assert_eq!(f.neighbor(&ghosts, 0, 1, 2, 0, 0), 1007.0);
    }

    #[test]
    fn ghost_face_matches_neighbor_extraction_order() {
        // The ghost my neighbour sends me (their high face) must line up
        // with my low-face lookups: both use (fast, slow) of the free axes.
        let s = 3;
        let left = ramp(s);
        let ghost = left.face(0, 1); // left block's x-high face
        let right = Field3::constant(s, -1.0);
        let mut ghosts = FaceGhosts::default();
        ghosts.faces[face_index(0, 0)] = Some(ghost);
        for k in 0..s {
            for j in 0..s {
                assert_eq!(
                    right.neighbor(&ghosts, 0, j, k, 0, 0),
                    left.get(s - 1, j, k),
                    "j={j} k={k}"
                );
            }
        }
    }

    #[test]
    fn decomposition_coords_and_neighbors() {
        // 8 ranks: 2x2x2 grid. Rank 0 at the origin corner.
        let d0 = Decomposition::new(8, 0, 4);
        assert_eq!(d0.side(), 2);
        assert!(d0.at_global_boundary(0, 0));
        assert!(!d0.at_global_boundary(0, 1));
        assert_eq!(d0.neighbor(0, 0), None);
        // Its x-high neighbour differs in the fastest grid dim.
        let xplus = d0.neighbor(0, 1).unwrap();
        let dx = Decomposition::new(8, xplus, 4);
        assert_eq!(dx.coord(0), 1);
        assert_eq!(dx.coord(1), 0);
        assert_eq!(dx.coord(2), 0);
        assert_eq!(dx.offset(0), 4);
        assert_eq!(d0.global_elems(), 8);
    }

    #[test]
    fn neighbor_relation_is_symmetric() {
        for rank in 0..27 {
            let d = Decomposition::new(27, rank, 2);
            for axis in 0..3 {
                for side in 0..2 {
                    if let Some(n) = d.neighbor(axis, side) {
                        let dn = Decomposition::new(27, n, 2);
                        assert_eq!(
                            dn.neighbor(axis, 1 - side),
                            Some(rank),
                            "rank {rank} axis {axis} side {side}"
                        );
                    } else {
                        assert!(d.at_global_boundary(axis, side));
                    }
                }
            }
        }
    }
}
