//! Run configurations, including the paper's strong-scaling table (Fig. 7).

use shmem::Schedule;

/// Whether state arrays really exist and kernels really execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Real (simplified) hydro state; decomposition-independent results.
    Full,
    /// Modelled costs only; virtual halo payloads.
    Timing,
}

/// Configuration of one LULESH-proxy run.
#[derive(Debug, Clone)]
pub struct LuleshConfig {
    /// Per-process edge length in elements (`-s` in LULESH).
    pub s: usize,
    /// Number of time-loop iterations.
    pub iterations: usize,
    /// OpenMP-style threads per MPI process.
    pub threads: usize,
    /// Loop schedule of the threaded kernels.
    pub schedule: Schedule,
    /// Data fidelity.
    pub fidelity: Fidelity,
    /// Gather the global energy field on rank 0 at the end (`Full` only;
    /// used by decomposition-independence tests).
    pub collect: bool,
    /// Optional material-cost imbalance (real LULESH's `-b` regions): the
    /// EOS cost of an element ramps linearly along the global x axis from
    /// 1× to `max_multiplier`×. Creates both intra-rank (thread) and
    /// inter-rank (MPI) imbalance.
    pub cost_gradient: Option<CostGradient>,
}

/// Material-cost gradient configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostGradient {
    /// EOS cost multiplier at the far end of the x axis (>= 1).
    pub max_multiplier: f64,
}

impl LuleshConfig {
    /// A full-fidelity configuration for correctness tests.
    pub fn small(s: usize, iterations: usize) -> LuleshConfig {
        LuleshConfig {
            s,
            iterations,
            threads: 1,
            schedule: Schedule::Static,
            fidelity: Fidelity::Full,
            collect: true,
            cost_gradient: None,
        }
    }

    /// A timing-fidelity configuration for scaling studies.
    pub fn timing(s: usize, iterations: usize, threads: usize) -> LuleshConfig {
        LuleshConfig {
            s,
            iterations,
            threads,
            schedule: Schedule::Static,
            fidelity: Fidelity::Timing,
            collect: false,
            cost_gradient: None,
        }
    }

    /// Local element count (`s³`).
    pub fn elems(&self) -> usize {
        self.s * self.s * self.s
    }

    /// Local node count (`(s+1)³`).
    pub fn nodes(&self) -> usize {
        (self.s + 1) * (self.s + 1) * (self.s + 1)
    }
}

/// The paper's iteration count for the §5.2 measurements (LULESH at
/// `-s 48` runs ~2500 time steps). Together with the per-kernel flop
/// weights this calibrates the KNL preset to the 882.48 s sequential
/// walltime of Fig. 10.
pub const PAPER_ITERATIONS: usize = 2500;

/// The total element count all Fig. 7 configurations preserve.
pub const PAPER_TOTAL_ELEMENTS: usize = 110_592;

/// The per-process size `s` keeping `total` elements over a cubic
/// decomposition of `p` processes, if it exists: `s = cbrt(total / p)`.
pub fn size_for(total: usize, p: usize) -> Option<usize> {
    if p == 0 || !total.is_multiple_of(p) {
        return None;
    }
    let local = total / p;
    let s = (local as f64).cbrt().round() as usize;
    (s * s * s == local).then_some(s)
}

/// The strong-scaling table of Fig. 7: `(MPI processes, s, total elements)`.
pub fn table7() -> Vec<(usize, usize, usize)> {
    [1usize, 8, 27, 64]
        .iter()
        .map(|&p| {
            let s = size_for(PAPER_TOTAL_ELEMENTS, p).expect("Fig. 7 sizes are exact cubes");
            (p, s, PAPER_TOTAL_ELEMENTS)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_rows() {
        // The exact Fig. 7 table: 48/24/16/12 all preserving 110 592.
        assert_eq!(
            table7(),
            vec![
                (1, 48, 110_592),
                (8, 24, 110_592),
                (27, 16, 110_592),
                (64, 12, 110_592),
            ]
        );
    }

    #[test]
    fn size_for_rejects_non_cubes() {
        assert_eq!(size_for(110_592, 2), None); // 55296 is not a cube
        assert_eq!(size_for(110_592, 7), None); // not even divisible
        assert_eq!(size_for(0, 0), None);
        assert_eq!(size_for(27, 27), Some(1));
    }

    #[test]
    fn counts() {
        let cfg = LuleshConfig::small(4, 10);
        assert_eq!(cfg.elems(), 64);
        assert_eq!(cfg.nodes(), 125);
    }
}
