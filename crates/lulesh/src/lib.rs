//! # lulesh-proxy — the paper's §5.2 workload
//!
//! A LULESH-like Lagrangian shock-hydrodynamics proxy: a cubic MPI
//! decomposition of a structured 3-D mesh, a time loop with the LULESH
//! phase skeleton (`LagrangeNodal` / `LagrangeElements` / time
//! constraints), OpenMP-style threaded kernels through the `shmem` crate,
//! face-ghost exchanges, a global `dt` reduction — and the paper's 21 MPI
//! sections outlining it all.
//!
//! The physics is a simplified, stable element-centred system (see
//! `physics`): the point of the proxy is to preserve the *measurable
//! structure* the paper's experiment relies on, not hydro fidelity —
//! documented as a substitution in DESIGN.md. In `Full` fidelity the
//! evolution is decomposition-independent (bit-exact across p), which the
//! tests verify; `Timing` fidelity prices the identical call structure for
//! the large scaling sweeps of Figs. 8–10.

pub mod comm;
pub mod config;
pub mod mesh;
pub mod physics;
pub mod sim;

pub use config::{
    size_for, table7, CostGradient, Fidelity, LuleshConfig, PAPER_ITERATIONS, PAPER_TOTAL_ELEMENTS,
};
pub use mesh::{Decomposition, FaceGhosts, Field3};
pub use physics::State;
pub use sim::{run_lulesh, LuleshOutcome, SECTION_LABELS};

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_sections::{Profile, SectionProfiler, SectionRuntime, VerifyMode};
    use mpisim::WorldBuilder;
    use std::sync::Arc;

    fn run(
        nranks: usize,
        cfg: LuleshConfig,
        machine: machine::MachineModel,
    ) -> (Vec<LuleshOutcome>, Profile) {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let profiler = SectionProfiler::new();
        sections.attach(profiler.clone());
        let s = sections.clone();
        let cfg = Arc::new(cfg);
        let report = WorldBuilder::new(nranks)
            .machine(machine)
            .seed(3)
            .tool(sections.clone())
            .run(move |p| run_lulesh(p, &s, &cfg))
            .unwrap();
        (report.results, profiler.snapshot())
    }

    #[test]
    fn energy_field_is_decomposition_independent() {
        // Global mesh of 8³ elements: p=1 (s=8) vs p=8 (s=4) must produce
        // bit-identical energy fields.
        let (out1, _) = run(1, LuleshConfig::small(8, 5), machine::presets::ideal());
        let (out8, _) = run(8, LuleshConfig::small(4, 5), machine::presets::ideal());
        let e1 = out1[0].global_energy.as_ref().unwrap();
        let e8 = out8[0].global_energy.as_ref().unwrap();
        assert_eq!(e1.s, e8.s);
        assert_eq!(
            e1.data, e8.data,
            "p=1 and p=8 evolutions must agree exactly"
        );
        // dt sequences agreed too.
        assert_eq!(out1[0].final_dt, out8[0].final_dt);
    }

    #[test]
    fn energy_is_positive_and_decays() {
        let (outs, _) = run(1, LuleshConfig::small(6, 20), machine::presets::ideal());
        let total = outs[0].total_energy.unwrap();
        let initial = physics::E_SPIKE + (6f64.powi(3) - 1.0) * physics::E_BACKGROUND;
        assert!(total > 0.0);
        assert!(
            total <= initial + 1e-9,
            "no energy created: {total} vs {initial}"
        );
    }

    #[test]
    fn all_21_sections_profiled() {
        let (_, profile) = run(8, LuleshConfig::small(3, 2), machine::presets::ideal());
        for label in SECTION_LABELS {
            let stats = profile
                .get_world(label)
                .unwrap_or_else(|| panic!("section {label} missing"));
            assert!(stats.instances >= 1, "{label}");
            assert_eq!(stats.participants, 8, "{label}");
        }
    }

    #[test]
    fn timeloop_dominates_main() {
        // The paper: "the timeloop section was accounting for 99% of the
        // main function time".
        let (_, profile) = run(1, LuleshConfig::timing(16, 50, 1), machine::presets::knl());
        let main = profile.get_world(mpi_sections::MPI_MAIN).unwrap();
        let timeloop = profile.get_world("timeloop").unwrap();
        let share = timeloop.total_own_secs / main.total_own_secs;
        assert!(share > 0.99, "timeloop share {share}");
    }

    #[test]
    fn lagrange_phases_dominate_timeloop() {
        let (_, profile) = run(1, LuleshConfig::timing(16, 20, 1), machine::presets::knl());
        let timeloop = profile.get_world("timeloop").unwrap().total_own_secs;
        let nodal = profile.get_world("LagrangeNodal").unwrap().total_own_secs;
        let elements = profile
            .get_world("LagrangeElements")
            .unwrap()
            .total_own_secs;
        let share = (nodal + elements) / timeloop;
        assert!(share > 0.85, "Lagrange share {share}");
        // Single-threaded, the nodal phase (stress + hourglass) carries
        // the larger compute share, as in real LULESH; the elements phase
        // only overtakes at high thread counts (Fig. 10's 24-thread
        // readings), which fig10 regenerates.
        assert!(nodal > elements);
    }

    #[test]
    fn timing_and_full_have_same_section_structure() {
        let (_, pf) = run(8, LuleshConfig::small(3, 2), machine::presets::ideal());
        let mut cfg = LuleshConfig::timing(3, 2, 2);
        cfg.collect = false;
        let (_, pt) = run(8, cfg, machine::presets::ideal());
        let labels_f: Vec<&str> = pf.world_labels();
        let labels_t: Vec<&str> = pt.world_labels();
        assert_eq!(labels_f, labels_t);
        for label in SECTION_LABELS {
            assert_eq!(
                pf.get_world(label).unwrap().instances,
                pt.get_world(label).unwrap().instances,
                "{label}"
            );
        }
    }

    #[test]
    fn threads_accelerate_large_problem_on_knl() {
        // p=1, s=48-scale shape (reduced iterations): 8 threads must beat 1
        // thread, the inflexion lying far above 8.
        let time_with = |threads| {
            let (_, profile) = run(
                1,
                LuleshConfig::timing(48, 5, threads),
                machine::presets::knl(),
            );
            profile.get_world("timeloop").unwrap().total_own_secs
        };
        let t1 = time_with(1);
        let t8 = time_with(8);
        assert!(t8 < t1 * 0.3, "t1={t1} t8={t8}");
    }

    #[test]
    fn threads_hurt_small_problem_at_large_p_on_knl() {
        // p=27, s=4 (tiny per-rank work): threads cost more than they save.
        let time_with = |threads| {
            let (_, profile) = run(
                27,
                LuleshConfig::timing(4, 5, threads),
                machine::presets::knl(),
            );
            profile.get_world("timeloop").unwrap().total_own_secs
        };
        let t1 = time_with(1);
        let t8 = time_with(8);
        assert!(t8 > t1, "t1={t1} t8={t8}: extra threads should hurt");
    }

    #[test]
    fn cost_gradient_creates_rank_imbalance() {
        // With the EOS cost ramping along x, ranks at high x coordinates
        // spend more time in ApplyMaterialProperties — visible in the
        // per-rank distribution and the balance report.
        let mut cfg = LuleshConfig::timing(8, 10, 1);
        cfg.cost_gradient = Some(CostGradient {
            max_multiplier: 4.0,
        });
        let (_, profile) = run(8, cfg, machine::presets::ideal());
        let eos = profile
            .get_world("ApplyMaterialPropertiesForElems")
            .unwrap();
        let balance = mpi_sections::BalanceReport::for_section(eos).unwrap();
        assert!(
            balance.imbalance_factor > 1.2,
            "gradient must skew ranks: {}",
            balance.imbalance_factor
        );
        // Without the gradient the section is balanced.
        let (_, profile) = run(8, LuleshConfig::timing(8, 10, 1), machine::presets::ideal());
        let eos = profile
            .get_world("ApplyMaterialPropertiesForElems")
            .unwrap();
        let balance = mpi_sections::BalanceReport::for_section(eos).unwrap();
        assert!(
            balance.imbalance_factor < 1.01,
            "{}",
            balance.imbalance_factor
        );
    }

    #[test]
    fn dynamic_schedule_fixes_intra_rank_imbalance() {
        // Single rank, threads: the x-gradient skews static chunks (x is
        // the fastest index, so contiguous index ranges sweep x), and a
        // dynamic schedule rebalances them.
        let time_with = |schedule| {
            let mut cfg = LuleshConfig::timing(16, 10, 8);
            cfg.schedule = schedule;
            cfg.cost_gradient = Some(CostGradient {
                max_multiplier: 8.0,
            });
            let (_, profile) = run(1, cfg, machine::presets::ideal());
            profile
                .get_world("ApplyMaterialPropertiesForElems")
                .unwrap()
                .total_own_secs
        };
        let _static_time = time_with(shmem::Schedule::Static);
        let dynamic_time = time_with(shmem::Schedule::Dynamic(64));
        // Note: with x fastest, static chunks each sweep whole x ranges,
        // so intra-rank static imbalance is mild; dynamic must not be
        // slower than static by more than the scheduling overhead.
        assert!(dynamic_time <= _static_time * 1.05);
    }

    #[test]
    fn gradient_preserves_decomposition_independence() {
        let mut c1 = LuleshConfig::small(8, 4);
        c1.cost_gradient = Some(CostGradient {
            max_multiplier: 3.0,
        });
        let mut c8 = LuleshConfig::small(4, 4);
        c8.cost_gradient = Some(CostGradient {
            max_multiplier: 3.0,
        });
        let (out1, _) = run(1, c1, machine::presets::ideal());
        let (out8, _) = run(8, c8, machine::presets::ideal());
        assert_eq!(
            out1[0].global_energy.as_ref().unwrap().data,
            out8[0].global_energy.as_ref().unwrap().data
        );
    }

    #[test]
    fn sedov_spike_spreads_from_origin() {
        let (outs, _) = run(8, LuleshConfig::small(4, 30), machine::presets::ideal());
        let e = outs[0].global_energy.as_ref().unwrap();
        // After 30 diffusion steps the spike has reached its neighbours but
        // the far corner is still far below the origin.
        assert!(e.get(0, 0, 0) > e.get(7, 7, 7));
        assert!(e.get(1, 1, 1) > physics::E_BACKGROUND);
    }
}
