//! Simplified Lagrangian-hydro kernels and their cost model.
//!
//! The proxy preserves what the paper's experiment measures — the *phase
//! structure* of LULESH (two dominant, mutually exclusive Lagrange phases
//! inside a time loop that is ≈99% of main) with realistic per-kernel cost
//! ratios — while simplifying the physics to a stable element-centred
//! system: an energy field with Sedov-style initialization diffusing
//! through the mesh (face-neighbour stencil, exact across decompositions),
//! an EOS relating pressure/energy/volume, an artificial-viscosity-like
//! damping term, and nodal kinematics fields integrated locally.
//!
//! The flop weights below are calibrated so the KNL preset reproduces the
//! paper's 882.48 s sequential walltime at s = 48 over
//! [`crate::config::PAPER_ITERATIONS`] iterations, with
//! LagrangeElements : LagrangeNodal ≈ 60 : 40 as in Fig. 10.

use crate::mesh::{FaceGhosts, Field3};
use machine::Work;

// --- Cost weights (flops per element / node, bytes ~ 1 stream each) ------

pub const STRESS_FLOPS: f64 = 240.0;
pub const HOURGLASS_FLOPS: f64 = 467.0;
pub const KINEMATICS_FLOPS: f64 = 95.0;
pub const MONOTONIC_Q_FLOPS: f64 = 140.0;
pub const EOS_FLOPS: f64 = 370.0;
pub const VOLUME_FLOPS: f64 = 41.0;
pub const CONSTRAINT_FLOPS: f64 = 36.0;
pub const NODE_ACCEL_FLOPS: f64 = 80.0;
pub const NODE_VEL_FLOPS: f64 = 55.0;
pub const NODE_POS_FLOPS: f64 = 60.0;
pub const NODE_BC_FLOPS: f64 = 20.0;
pub const BYTES_PER_ITEM: f64 = 48.0;

/// How many OpenMP parallel regions each kernel spans per iteration —
/// matching the loop-nest counts of the corresponding real-LULESH
/// functions (EvalEOSForElems alone contains ~7 `omp parallel for`
/// loops). Region count drives fork/join overhead, which is why the
/// lighter LagrangeElements phase overtakes the heavier LagrangeNodal
/// phase at high thread counts on the KNL (Fig. 10: 64.29 s vs 43.84 s at
/// 24 threads).
pub const KINEMATICS_REGIONS: usize = 2;
pub const MONOTONIC_Q_REGIONS: usize = 3;
pub const EOS_REGIONS: usize = 7;

/// Work of an element kernel over one element.
pub fn elem_work(flops: f64) -> Work {
    Work::new(flops, BYTES_PER_ITEM)
}

/// Work of a nodal kernel over one node.
pub fn node_work(flops: f64) -> Work {
    Work::new(flops, BYTES_PER_ITEM)
}

// --- Physical constants of the simplified system --------------------------

/// Ratio of specific heats.
pub const GAMMA: f64 = 1.4;
/// Reference density.
pub const RHO0: f64 = 1.0;
/// Background specific energy.
pub const E_BACKGROUND: f64 = 1.0e-2;
/// Sedov spike energy (deposited in the global origin element).
pub const E_SPIKE: f64 = 10.0;
/// Diffusion coefficient of the energy stencil (per unit dt).
pub const DIFFUSIVITY: f64 = 0.1;
/// Artificial-viscosity coefficient.
pub const Q_COEF: f64 = 0.05;
/// EOS work-term rate.
pub const WORK_RATE: f64 = 0.02;
/// Energy floor.
pub const E_FLOOR: f64 = 1.0e-9;
/// Courant factor.
pub const CFL: f64 = 0.4;
/// Velocity damping per unit time.
pub const DRAG: f64 = 0.1;
/// Velocity cutoff (LULESH's `u_cut`).
pub const U_CUT: f64 = 1.0e-7;
/// Volume bounds.
pub const V_MIN: f64 = 0.5;
pub const V_MAX: f64 = 1.5;

/// Full hydro state of one rank.
#[derive(Debug, Clone)]
pub struct State {
    /// Specific internal energy per element.
    pub e: Field3,
    /// Pressure per element.
    pub p: Field3,
    /// Artificial viscosity per element.
    pub q: Field3,
    /// Relative volume per element.
    pub v: Field3,
    /// Sound speed per element.
    pub ss: Field3,
    /// Nodal speed field, `(s+1)³`.
    pub u: Vec<f64>,
    /// Nodal displacement field, `(s+1)³`.
    pub xd: Vec<f64>,
}

impl State {
    /// Initialize the Sedov-like problem: background energy everywhere, the
    /// spike in the global origin element (owned by the rank at grid
    /// coordinate (0,0,0)).
    pub fn init(s: usize, owns_origin: bool) -> State {
        let mut e = Field3::constant(s, E_BACKGROUND);
        if owns_origin {
            *e.get_mut(0, 0, 0) = E_SPIKE;
        }
        let nodes = (s + 1) * (s + 1) * (s + 1);
        State {
            p: Field3::constant(s, (GAMMA - 1.0) * RHO0 * E_BACKGROUND),
            q: Field3::constant(s, 0.0),
            v: Field3::constant(s, 1.0),
            ss: Field3::constant(s, ((GAMMA - 1.0) * GAMMA * E_BACKGROUND).sqrt()),
            e,
            u: vec![0.0; nodes],
            xd: vec![0.0; nodes],
        }
    }

    /// Total energy (for conservation checks; weighted by unit volumes).
    pub fn total_energy(&self) -> f64 {
        self.e.sum()
    }
}

// --- Element kernels -------------------------------------------------------

/// `IntegrateStressForElems`: EOS pressure from energy and volume.
pub fn integrate_stress(state: &mut State, i: usize, j: usize, k: usize) {
    let e = state.e.get(i, j, k);
    let v = state.v.get(i, j, k);
    *state.p.get_mut(i, j, k) = (GAMMA - 1.0) * RHO0 * e / v;
}

/// `CalcHourglassControlForElems`: viscosity-like damping from local
/// pressure roughness (face-neighbour stencil over ghosts).
pub fn hourglass_control(state: &mut State, ghosts: &FaceGhosts, i: usize, j: usize, k: usize) {
    let p0 = state.p.get(i, j, k);
    let mut rough = 0.0;
    for axis in 0..3 {
        for side in 0..2 {
            rough += (state.p.neighbor(ghosts, i, j, k, axis, side) - p0).abs();
        }
    }
    *state.q.get_mut(i, j, k) = Q_COEF * rough;
}

/// `CalcLagrangeElements`: volume update from viscosity (kinematics).
pub fn kinematics(state: &mut State, dt: f64, i: usize, j: usize, k: usize) {
    let q = state.q.get(i, j, k);
    let v = state.v.get_mut(i, j, k);
    *v = (*v * (1.0 + dt * 0.01 * q)).clamp(V_MIN, V_MAX);
}

/// The `CalcQForElems` stencil: explicit diffusion of energy through the
/// face neighbours — the only cross-rank dependency of the element phase.
/// Reads `e_prev`, writes `state.e`.
pub fn monotonic_q(
    state: &mut State,
    e_prev: &Field3,
    ghosts: &FaceGhosts,
    dt: f64,
    i: usize,
    j: usize,
    k: usize,
) {
    let e0 = e_prev.get(i, j, k);
    let mut acc = 0.0;
    for axis in 0..3 {
        for side in 0..2 {
            acc += e_prev.neighbor(ghosts, i, j, k, axis, side);
        }
    }
    *state.e.get_mut(i, j, k) = e0 + dt * DIFFUSIVITY * (acc - 6.0 * e0);
}

/// `ApplyMaterialPropertiesForElems` / `EvalEOSForElems`: energy work term
/// and sound speed.
pub fn eval_eos(state: &mut State, dt: f64, i: usize, j: usize, k: usize) {
    let p = state.p.get(i, j, k);
    let q = state.q.get(i, j, k);
    let e = state.e.get_mut(i, j, k);
    *e = (*e - dt * WORK_RATE * (p + q)).max(E_FLOOR);
    let e_now = *e;
    let v = state.v.get(i, j, k);
    *state.ss.get_mut(i, j, k) = ((GAMMA - 1.0) * GAMMA * e_now / v).max(1e-12).sqrt();
}

/// EOS cost multiplier under a material-cost gradient: ramps linearly
/// from 1 at global x = 0 to `max_multiplier` at the far face. Depends
/// only on global coordinates, so it is decomposition-independent.
pub fn gradient_multiplier(gx: usize, global_elems: usize, max_multiplier: f64) -> f64 {
    if global_elems <= 1 {
        return 1.0;
    }
    let t = gx as f64 / (global_elems - 1) as f64;
    1.0 + (max_multiplier.max(1.0) - 1.0) * t
}

/// `UpdateVolumesForElems`: clamp volumes.
pub fn update_volumes(state: &mut State, i: usize, j: usize, k: usize) {
    let v = state.v.get_mut(i, j, k);
    *v = v.clamp(V_MIN, V_MAX);
}

/// Courant + hydro constraint of one element: the stable dt it allows.
pub fn element_dt(state: &State, dx: f64, i: usize, j: usize, k: usize) -> f64 {
    let ss = state.ss.get(i, j, k);
    let q = state.q.get(i, j, k);
    CFL * dx / (ss + q + 1e-12)
}

// --- Nodal kernels ---------------------------------------------------------

/// `CalcAccelerationForNodes`: acceleration from the node's global position
/// (decomposition-independent by construction).
pub fn node_accel(u: &mut f64, dt: f64, gx: usize, gy: usize, gz: usize) {
    let phase = 0.013 * gx as f64 + 0.007 * gy as f64 + 0.003 * gz as f64;
    let a = 0.5 * phase.sin();
    *u += dt * a;
}

/// `CalcVelocityForNodes`: drag and cutoff.
pub fn node_velocity(u: &mut f64, dt: f64) {
    *u *= 1.0 - DRAG * dt;
    if u.abs() < U_CUT {
        *u = 0.0;
    }
}

/// `CalcPositionForNodes`: integrate displacement.
pub fn node_position(xd: &mut f64, u: f64, dt: f64) {
    *xd += dt * u;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_state() -> State {
        State::init(4, true)
    }

    #[test]
    fn init_places_spike_at_origin() {
        let st = single_state();
        assert_eq!(st.e.get(0, 0, 0), E_SPIKE);
        assert_eq!(st.e.get(1, 0, 0), E_BACKGROUND);
        let st2 = State::init(4, false);
        assert_eq!(st2.e.get(0, 0, 0), E_BACKGROUND);
    }

    #[test]
    fn stress_is_ideal_gas() {
        let mut st = single_state();
        integrate_stress(&mut st, 0, 0, 0);
        assert!((st.p.get(0, 0, 0) - (GAMMA - 1.0) * E_SPIKE).abs() < 1e-12);
    }

    #[test]
    fn diffusion_conserves_energy_with_reflective_borders() {
        let mut st = single_state();
        let ghosts = FaceGhosts::default();
        let before = st.total_energy();
        let e_prev = st.e.clone();
        for k in 0..4 {
            for j in 0..4 {
                for i in 0..4 {
                    monotonic_q(&mut st, &e_prev, &ghosts, 0.1, i, j, k);
                }
            }
        }
        let after = st.total_energy();
        assert!(
            (before - after).abs() < 1e-9 * before,
            "diffusion with reflective borders conserves Σe: {before} vs {after}"
        );
        // And it spreads the spike.
        assert!(st.e.get(0, 0, 0) < E_SPIKE);
        assert!(st.e.get(1, 0, 0) > E_BACKGROUND);
    }

    #[test]
    fn eos_keeps_energy_positive_and_updates_sound_speed() {
        let mut st = single_state();
        integrate_stress(&mut st, 0, 0, 0);
        for _ in 0..100_000 {
            eval_eos(&mut st, 1.0, 0, 0, 0);
        }
        assert!(st.e.get(0, 0, 0) >= E_FLOOR);
        assert!(st.ss.get(0, 0, 0) > 0.0);
    }

    #[test]
    fn element_dt_positive_and_cfl_scaled() {
        let st = single_state();
        let dt1 = element_dt(&st, 1.0, 1, 1, 1);
        let dt2 = element_dt(&st, 0.5, 1, 1, 1);
        assert!(dt1 > 0.0);
        assert!((dt1 / dt2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn nodal_kernels_depend_only_on_global_coords() {
        let mut u1 = 0.0;
        let mut u2 = 0.0;
        node_accel(&mut u1, 0.1, 5, 6, 7);
        node_accel(&mut u2, 0.1, 5, 6, 7);
        assert_eq!(u1, u2);
        let mut u3 = 0.0;
        node_accel(&mut u3, 0.1, 5, 6, 8);
        assert_ne!(u1, u3);
    }

    #[test]
    fn velocity_cutoff() {
        let mut u = 5e-8;
        node_velocity(&mut u, 0.1);
        assert_eq!(u, 0.0);
        let mut u = 1.0;
        node_velocity(&mut u, 0.1);
        assert!((u - 0.99).abs() < 1e-12);
    }

    #[test]
    fn kinematics_clamps_volume() {
        let mut st = single_state();
        *st.q.get_mut(0, 0, 0) = 1e9;
        kinematics(&mut st, 1.0, 0, 0, 0);
        assert!(st.v.get(0, 0, 0) <= V_MAX);
    }

    #[test]
    fn nodal_work_heavier_but_elements_more_regions() {
        // The calibration that reproduces Fig. 10's 24-thread readings
        // (nodal 43.84 s < elements 64.29 s despite nodal's larger compute
        // share): LagrangeNodal carries more work in fewer regions;
        // LagrangeElements less work across many regions.
        let nodal = STRESS_FLOPS + HOURGLASS_FLOPS;
        let elements = KINEMATICS_FLOPS + MONOTONIC_Q_FLOPS + EOS_FLOPS + VOLUME_FLOPS;
        assert!(nodal > elements);
        let elem_regions = KINEMATICS_REGIONS + MONOTONIC_Q_REGIONS + EOS_REGIONS + 1;
        assert!(elem_regions > 6, "more regions than the 6 nodal ones");
    }
}
