//! Property tests for the LULESH proxy: decomposition geometry, field/ghost
//! consistency, and decomposition-independence of the evolution.

use lulesh_proxy::{run_lulesh, Decomposition, Field3, LuleshConfig};
use mpi_sections::{SectionRuntime, VerifyMode};
use mpisim::WorldBuilder;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #[test]
    fn decomposition_geometry_is_consistent(side in 1usize..5, s in 1usize..8) {
        let n = side * side * side;
        for rank in 0..n {
            let d = Decomposition::new(n, rank, s);
            prop_assert_eq!(d.side(), side);
            prop_assert_eq!(d.global_elems(), side * s);
            for axis in 0..3 {
                prop_assert!(d.coord(axis) < side);
                prop_assert_eq!(d.offset(axis), d.coord(axis) * s);
                for face in 0..2 {
                    // A face is global-boundary iff there is no neighbour.
                    prop_assert_eq!(
                        d.at_global_boundary(axis, face),
                        d.neighbor(axis, face).is_none()
                    );
                }
            }
        }
    }

    #[test]
    fn faces_have_expected_content(s in 1usize..8, seed in 0u64..1000) {
        // A field whose value encodes its coordinates: every face sample
        // must carry the coordinate of the fixed axis.
        let mut f = Field3::constant(s, 0.0);
        for k in 0..s {
            for j in 0..s {
                for i in 0..s {
                    *f.get_mut(i, j, k) =
                        (i + s * j + s * s * k) as f64 + seed as f64;
                }
            }
        }
        for axis in 0..3 {
            for side in 0..2 {
                let face = f.face(axis, side);
                prop_assert_eq!(face.len(), s * s);
                let fixed = if side == 0 { 0 } else { s - 1 };
                for v in face {
                    let linear = (v - seed as f64) as usize;
                    let coord = match axis {
                        0 => linear % s,
                        1 => (linear / s) % s,
                        _ => linear / (s * s),
                    };
                    prop_assert_eq!(coord, fixed);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn evolution_is_decomposition_independent(
        s8 in 2usize..5,     // per-rank size at p = 8; global = 2 * s8
        iterations in 1usize..6,
    ) {
        let run = |nranks: usize, s: usize| {
            let sections = SectionRuntime::new(VerifyMode::Active);
            let sr = sections.clone();
            let cfg = Arc::new(LuleshConfig::small(s, iterations));
            let report = WorldBuilder::new(nranks)
                .machine(machine::presets::ideal())
                .run(move |p| run_lulesh(p, &sr, &cfg))
                .unwrap();
            report.results.into_iter().next().unwrap()
        };
        let seq = run(1, 2 * s8);
        let par = run(8, s8);
        prop_assert_eq!(
            seq.global_energy.unwrap().data,
            par.global_energy.unwrap().data
        );
        prop_assert_eq!(seq.final_dt, par.final_dt);
        // The total is reduced in a different association order (one local
        // sum vs 8 partial sums), so compare to FP tolerance — the field
        // itself is bit-exact above.
        let (a, b) = (seq.total_energy.unwrap(), par.total_energy.unwrap());
        prop_assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn energy_never_increases_nor_goes_negative(
        s in 2usize..6,
        iterations in 1usize..12,
    ) {
        let sections = SectionRuntime::new(VerifyMode::Off);
        let sr = sections.clone();
        let cfg = Arc::new(LuleshConfig::small(s, iterations));
        let report = WorldBuilder::new(1)
            .machine(machine::presets::ideal())
            .run(move |p| run_lulesh(p, &sr, &cfg))
            .unwrap();
        let out = &report.results[0];
        let total = out.total_energy.unwrap();
        let initial = lulesh_proxy::physics::E_SPIKE
            + ((s * s * s) as f64 - 1.0) * lulesh_proxy::physics::E_BACKGROUND;
        prop_assert!(total > 0.0);
        prop_assert!(total <= initial + 1e-9);
        prop_assert!(out.final_dt > 0.0);
    }
}
