//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s API shape: `lock()`
//! returns the guard directly (no `Result`), `Condvar::wait` takes the
//! guard by `&mut`, and — critically for this workspace — **poisoning is
//! ignored**: the simulator's world-poisoning protocol deliberately panics
//! on threads that hold locks (e.g. a receiver unwinding out of
//! `Mailbox::take_matching`), and surviving threads must still be able to
//! lock. `parking_lot` has no lock poisoning; this stub matches that by
//! unwrapping `PoisonError` into the inner guard.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::{Duration, Instant};

/// A mutual exclusion primitive (poison-free `lock()` API).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard of a [`Mutex`].
///
/// Holds an `Option` internally so [`Condvar::wait`] can temporarily move
/// the underlying std guard out and back without changing the caller's
/// borrow; it is `Some` at every point user code can observe.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never fails: a panic on
    /// another thread while it held the lock does not poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        self.0
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.0
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

/// Timeout outcome of [`Condvar::wait_for`].
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Did the wait end because the timeout elapsed?
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable paired with [`Mutex`] (guard passed by `&mut`).
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified. Spurious wakeups are possible, as with every
    /// condition variable; callers loop on their predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present before wait");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present before wait");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock (poison-free API), for completeness of the facade.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared read guard of an [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
/// Exclusive write guard of an [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Re-export style parity with `parking_lot::const_mutex`.
pub const fn const_mutex<T>(value: T) -> Mutex<T> {
    Mutex::new(value)
}

// Keep Instant imported for future timed APIs without a warning.
#[allow(dead_code)]
fn _instant_is_available() -> Instant {
    Instant::now()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(5i32));
        let m2 = m.clone();
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, lock still usable.
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let h = thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
            true
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        assert!(h.join().unwrap());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
