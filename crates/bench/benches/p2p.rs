//! Host-side point-to-point throughput: how many messages per second the
//! matching queues sustain, by payload mode, size, and pattern — the inner
//! loop of the convolution HALO section.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpisim::{Src, TagSel, WorldBuilder};

fn pingpong(count: usize, elems: usize) {
    WorldBuilder::new(2)
        .run(move |p| {
            let world = p.world();
            let data = vec![0f64; elems];
            if p.world_rank() == 0 {
                for i in 0..count {
                    world.send(p, 1, i as i32, &data);
                    let _ = world.recv::<f64>(p, Src::Rank(1), TagSel::Is(i as i32));
                }
            } else {
                for i in 0..count {
                    let _ = world.recv::<f64>(p, Src::Rank(0), TagSel::Is(i as i32));
                    world.send(p, 0, i as i32, &data);
                }
            }
        })
        .unwrap();
}

fn pingpong_virtual(count: usize, elems: usize) {
    WorldBuilder::new(2)
        .run(move |p| {
            let world = p.world();
            if p.world_rank() == 0 {
                for i in 0..count {
                    world.send_virtual::<f64>(p, 1, i as i32, elems);
                    let _ = world.recv::<f64>(p, Src::Rank(1), TagSel::Is(i as i32));
                }
            } else {
                for i in 0..count {
                    let _ = world.recv::<f64>(p, Src::Rank(0), TagSel::Is(i as i32));
                    world.send_virtual::<f64>(p, 0, i as i32, elems);
                }
            }
        })
        .unwrap();
}

fn ring_sendrecv(nranks: usize, rounds: usize) {
    WorldBuilder::new(nranks)
        .run(move |p| {
            let world = p.world();
            let n = world.size();
            let rank = world.rank();
            let right = (rank + 1) % n;
            let left = (rank + n - 1) % n;
            for i in 0..rounds {
                let _ = world.sendrecv(
                    p,
                    right,
                    i as i32,
                    &[rank as u64],
                    Src::Rank(left),
                    TagSel::Is(i as i32),
                );
            }
        })
        .unwrap();
}

fn bench_p2p(c: &mut Criterion) {
    let count = 2_000;
    let mut group = c.benchmark_group("p2p");
    group.sample_size(15);
    group.throughput(Throughput::Elements(count as u64 * 2));
    for elems in [1usize, 1024, 65_536] {
        group.bench_with_input(BenchmarkId::new("pingpong_real", elems), &elems, |b, &e| {
            b.iter(|| pingpong(count, e));
        });
        group.bench_with_input(
            BenchmarkId::new("pingpong_virtual", elems),
            &elems,
            |b, &e| b.iter(|| pingpong_virtual(count, e)),
        );
    }
    for nranks in [4usize, 16] {
        group.bench_with_input(
            BenchmarkId::new("ring_sendrecv", nranks),
            &nranks,
            |b, &n| b.iter(|| ring_sendrecv(n, 500)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_p2p);
criterion_main!(benches);
