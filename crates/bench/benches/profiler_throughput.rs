//! End-to-end harness throughput: complete profiled mini-runs of both
//! benchmarks (the unit of work behind every figure). Useful for tracking
//! regressions in the full stack — runtime, sections, profiler, workload.

use bench::{conv_profile, lulesh_profile};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("profiled_runs");
    group.sample_size(10);
    let nehalem = machine::presets::nehalem_cluster();
    for p in [8usize, 64] {
        group.bench_with_input(BenchmarkId::new("convolution_20steps", p), &p, |b, &p| {
            b.iter(|| conv_profile(p, 20, &nehalem, 1));
        });
    }
    let knl = machine::presets::knl();
    for p in [1usize, 8] {
        group.bench_with_input(BenchmarkId::new("lulesh_10iters", p), &p, |b, &p| {
            let s = lulesh_proxy::size_for(lulesh_proxy::PAPER_TOTAL_ELEMENTS, p).unwrap();
            b.iter(|| lulesh_profile(p, s, 10, 4, &knl, 1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
