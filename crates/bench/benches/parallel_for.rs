//! Host-side cost of pricing shared-memory parallel regions: uniform
//! (O(threads)) vs weighted (O(n)) loops, and the schedules' relative
//! bookkeeping. Regions are the innermost operation of the LULESH sweeps
//! (dozens per simulated iteration), so their pricing cost dominates the
//! Fig. 8–10 harness runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use machine::Work;
use mpisim::WorldBuilder;
use shmem::{Schedule, Team};

fn uniform_regions(threads: usize, regions: usize, n: usize) {
    WorldBuilder::new(1)
        .machine(machine::presets::knl())
        .run(move |p| {
            let team = Team::new(threads);
            for _ in 0..regions {
                team.for_cost_uniform(p, n, Work::flops(100.0));
            }
        })
        .unwrap();
}

fn weighted_regions(threads: usize, regions: usize, n: usize, schedule: Schedule) {
    WorldBuilder::new(1)
        .machine(machine::presets::knl())
        .run(move |p| {
            let team = Team::new(threads).with_schedule(schedule);
            for _ in 0..regions {
                team.parallel_for_weighted(p, n, |i| Work::flops(100.0 + i as f64), |_| {});
            }
        })
        .unwrap();
}

fn bench_parallel_for(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_for_pricing");
    group.sample_size(20);
    let regions = 1_000;
    for threads in [1usize, 16, 256] {
        group.bench_with_input(
            BenchmarkId::new("uniform_n1e5", threads),
            &threads,
            |b, &t| b.iter(|| uniform_regions(t, regions, 100_000)),
        );
    }
    for (name, schedule) in [
        ("weighted_static", Schedule::Static),
        ("weighted_dynamic", Schedule::Dynamic(16)),
    ] {
        group.bench_with_input(BenchmarkId::new(name, 16), &16usize, |b, &t| {
            b.iter(|| weighted_regions(t, 50, 10_000, schedule));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_for);
criterion_main!(benches);
