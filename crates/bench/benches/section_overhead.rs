//! Ablation A3 (DESIGN.md D3): host-side cost of `MPIX_Section_enter/exit`
//! pairs, with and without the cross-rank verification and with and
//! without an attached profiler.
//!
//! This measures the *instrumentation overhead* of the reference
//! implementation — the quantity a real MPI runtime implementer would care
//! about before adopting the interface (the paper argues it is small
//! enough to enable by default, verification being "selectively enabled").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpi_sections::{SectionProfiler, SectionRuntime, VerifyMode};
use mpisim::WorldBuilder;
use std::sync::Arc;

fn run_sections(nranks: usize, pairs: usize, verify: VerifyMode, with_profiler: bool) {
    let sections = SectionRuntime::new(verify);
    if with_profiler {
        sections.attach(SectionProfiler::new());
    }
    let s = sections.clone();
    WorldBuilder::new(nranks)
        .tool(sections.clone())
        .run(move |p| {
            let world = p.world();
            for _ in 0..pairs {
                s.enter(p, &world, "bench");
                s.exit(p, &world, "bench");
            }
        })
        .unwrap();
    let _ = Arc::strong_count(&sections);
}

fn bench_section_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("section_enter_exit");
    group.sample_size(20);
    let pairs = 2_000;
    for nranks in [1usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("verify_off_no_tool", nranks),
            &nranks,
            |b, &n| b.iter(|| run_sections(n, pairs, VerifyMode::Off, false)),
        );
        group.bench_with_input(
            BenchmarkId::new("verify_on_no_tool", nranks),
            &nranks,
            |b, &n| b.iter(|| run_sections(n, pairs, VerifyMode::Active, false)),
        );
        group.bench_with_input(
            BenchmarkId::new("verify_on_profiler", nranks),
            &nranks,
            |b, &n| b.iter(|| run_sections(n, pairs, VerifyMode::Active, true)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_section_overhead);
criterion_main!(benches);
