//! Host-side throughput of the simulated collectives: how many
//! rendezvous-synchronized operations per second the runtime sustains at
//! various world sizes. This bounds how large a simulated experiment (e.g.
//! the 456-rank convolution sweep) is practical.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpisim::WorldBuilder;

fn barriers(nranks: usize, count: usize) {
    WorldBuilder::new(nranks)
        .run(|p| {
            let world = p.world();
            for _ in 0..count {
                world.barrier(p);
            }
        })
        .unwrap();
}

fn allreduces(nranks: usize, count: usize) {
    WorldBuilder::new(nranks)
        .run(|p| {
            let world = p.world();
            for _ in 0..count {
                let _ = world.allreduce_sum_f64(p, p.world_rank() as f64);
            }
        })
        .unwrap();
}

fn bcasts(nranks: usize, count: usize, elems: usize) {
    WorldBuilder::new(nranks)
        .run(move |p| {
            let world = p.world();
            for _ in 0..count {
                let data = (p.world_rank() == 0).then(|| vec![1.0f64; elems]);
                let _ = world.bcast(p, 0, data);
            }
        })
        .unwrap();
}

fn bench_collectives(c: &mut Criterion) {
    let count = 500;
    let mut group = c.benchmark_group("collectives");
    group.sample_size(15);
    group.throughput(Throughput::Elements(count as u64));
    for nranks in [2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::new("barrier", nranks), &nranks, |b, &n| {
            b.iter(|| barriers(n, count));
        });
        group.bench_with_input(
            BenchmarkId::new("allreduce_f64", nranks),
            &nranks,
            |b, &n| b.iter(|| allreduces(n, count)),
        );
        group.bench_with_input(BenchmarkId::new("bcast_1k", nranks), &nranks, |b, &n| {
            b.iter(|| bcasts(n, count, 1024));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
