//! Engine equivalence: the discrete-event scheduler must be *observably*
//! identical to the thread-per-rank engine. Both engines run the same
//! workload with the full observability stack attached (section profiler,
//! Chrome trace, pvar registry, wait-state recorder, mpicheck analyzer)
//! and every rendered artifact — profile CSV, trace JSON, metrics JSON,
//! diagnostics report — is compared byte for byte.
//!
//! This is the PR-transition safety net the `--engine` selector exists
//! for: virtual-time results are carried on messages and collective
//! records, never on host scheduling, so switching engines must not move
//! a single byte of output.

use mpi_sections::{
    classify, critpath, timeline, CommRecorder, PvarRegistry, SectionProfiler, SectionRuntime,
    SummaryTool, TraceTool, VerifyMode, Windowing,
};
use mpisim::{Engine, Src, TagSel, WorldBuilder};
use mpiverify::ScheduleController;
use std::sync::Arc;

/// Everything a profiling session renders, captured from one run.
#[derive(PartialEq, Eq)]
struct Artifacts {
    profile_csv: String,
    trace_json: String,
    metrics_json: String,
    summary_json: String,
    diagnostics: String,
}

/// Run `body` at scale `p` on `engine` with the whole tool stack attached
/// and render every artifact the `profile` CLI can produce.
fn observe(
    engine: Engine,
    p: usize,
    seed: u64,
    machine: machine::MachineModel,
    body: impl Fn(&mut mpisim::Proc, &SectionRuntime) + Send + Sync + 'static,
) -> Artifacts {
    observe_controlled(engine, p, seed, machine, None, body)
}

/// [`observe`] with an optional match controller attached — the
/// verification-off safety net: a recording controller (which always picks
/// the arrival-order candidate) must not move a byte either.
fn observe_controlled(
    engine: Engine,
    p: usize,
    seed: u64,
    machine: machine::MachineModel,
    controller: Option<Arc<ScheduleController>>,
    body: impl Fn(&mut mpisim::Proc, &SectionRuntime) + Send + Sync + 'static,
) -> Artifacts {
    let sections = SectionRuntime::new(VerifyMode::Active);
    let profiler = SectionProfiler::new();
    let trace = TraceTool::new();
    let pvar = PvarRegistry::new();
    let recorder = CommRecorder::new();
    let summary = SummaryTool::new();
    let checker = mpicheck::Analyzer::new();
    sections.attach(profiler.clone());
    sections.attach(trace.clone());
    let s = sections.clone();
    let mut builder = WorldBuilder::new(p)
        .engine(engine)
        .machine(machine)
        .seed(seed)
        .tool(sections.clone())
        .tool(trace.clone())
        .tool(pvar.clone())
        .tool(recorder.clone())
        .tool(summary.clone())
        .tool(checker.clone());
    if let Some(ctl) = controller {
        builder = builder.match_controller(ctl as Arc<dyn mpisim::MatchController>);
    }
    builder
        .run(move |pr| body(pr, &s))
        .expect("workload run failed");
    let log = recorder.freeze();
    let (waits, cp) = (classify(&log), critpath::extract(&log));
    let tl = timeline::build(&log, &Windowing::Fixed(4));
    Artifacts {
        profile_csv: profiler.snapshot().to_csv(),
        trace_json: trace.to_chrome_trace_with(Some(&tl)),
        metrics_json: format!(
            "{}\n{}\n{}\n{}",
            pvar.snapshot().to_json(),
            waits.to_json(),
            cp.to_json(),
            tl.to_json()
        ),
        summary_json: summary.freeze().to_json(),
        diagnostics: mpisim::diag::report(&checker.diagnostics()),
    }
}

/// Assert all four artifacts match, with a per-artifact message so a
/// divergence names the channel that moved.
fn assert_identical(threads: &Artifacts, des: &Artifacts) {
    assert_eq!(
        threads.profile_csv, des.profile_csv,
        "profile CSV differs between engines"
    );
    assert_eq!(
        threads.trace_json, des.trace_json,
        "Chrome trace differs between engines"
    );
    assert_eq!(
        threads.metrics_json, des.metrics_json,
        "metrics JSON differs between engines"
    );
    assert_eq!(
        threads.summary_json, des.summary_json,
        "streaming summary JSON differs between engines"
    );
    assert_eq!(
        threads.diagnostics, des.diagnostics,
        "mpicheck diagnostics differ between engines"
    );
}

#[test]
fn convolution_is_byte_identical_across_engines() {
    let run = |engine| {
        let cfg = Arc::new(convolution::ConvConfig::paper(12));
        observe(
            engine,
            8,
            7,
            machine::presets::nehalem_cluster(),
            move |pr, s| {
                convolution::run_convolution(pr, s, &cfg);
            },
        )
    };
    let threads = run(Engine::Threads);
    let des = run(Engine::Des);
    assert_identical(&threads, &des);
    // Guard against vacuous equality: the run must have produced data.
    assert!(threads.profile_csv.contains("HALO"));
    assert!(threads
        .summary_json
        .contains("\"schema\":\"mpisim-summary-v1\""));
    assert!(threads.summary_json.contains("\"clusters\""));
    assert!(threads.diagnostics.is_empty() || threads.diagnostics.contains("diagnostic"));
}

#[test]
fn lulesh_is_byte_identical_across_engines() {
    let s = lulesh_proxy::size_for(lulesh_proxy::PAPER_TOTAL_ELEMENTS, 8).expect("8 is a cube");
    let run = move |engine| {
        let cfg = Arc::new(lulesh_proxy::LuleshConfig::timing(s, 10, 2));
        observe(engine, 8, 3, machine::presets::knl(), move |pr, sr| {
            lulesh_proxy::run_lulesh(pr, sr, &cfg);
        })
    };
    let threads = run(Engine::Threads);
    let des = run(Engine::Des);
    assert_identical(&threads, &des);
    assert!(threads.profile_csv.contains("LagrangeNodal"));
}

#[test]
fn wildcard_race_diagnostics_match_across_engines() {
    // The racy-but-live wildcard receive (check_misuse scenario 4): the
    // analyzer's competing-sender warning must name the same candidates
    // under both engines — the barrier makes the candidate set exact.
    let run = |engine| {
        observe(engine, 3, 1, machine::presets::ideal(), |pr, _| {
            let world = pr.world();
            if pr.world_rank() == 0 {
                world.barrier(pr);
                let a = world.recv::<u32>(pr, Src::Any, TagSel::Is(7));
                let b = world.recv::<u32>(pr, Src::Any, TagSel::Is(7));
                assert_eq!(a.data[0] + b.data[0], 3);
            } else {
                world.send(pr, 0, 7, &[pr.world_rank() as u32]);
                world.barrier(pr);
            }
        })
    };
    let threads = run(Engine::Threads);
    let des = run(Engine::Des);
    assert_identical(&threads, &des);
    assert!(
        threads.diagnostics.contains("race") || !threads.diagnostics.is_empty(),
        "the wildcard race should produce a warning"
    );
}

#[test]
fn recording_controller_is_observably_inert() {
    // `--verify` off must be byte-identical to the pre-verifier baseline.
    // The strictest version of that claim: even *with* the controller
    // plumbing engaged (a recording controller that always picks the
    // arrival-order candidate, exactly what exploration's canonical run
    // does), every artifact matches a run with no controller at all — on
    // both engines, including the engine the controller cannot steer.
    let body = |pr: &mut mpisim::Proc, s: &SectionRuntime| {
        let world = pr.world();
        s.scoped(pr, &world, "FOLD", |pr| {
            let world = pr.world();
            if pr.world_rank() == 0 {
                world.barrier(pr);
                let a = world.recv::<u32>(pr, Src::Any, TagSel::Is(7));
                let b = world.recv::<u32>(pr, Src::Any, TagSel::Is(7));
                assert_eq!(a.data[0] + b.data[0], 3);
            } else {
                world.send(pr, 0, 7, &[pr.world_rank() as u32]);
                world.barrier(pr);
            }
        });
    };
    for engine in [Engine::Des, Engine::Threads] {
        let ctl = Arc::new(ScheduleController::recording());
        let bare = observe(engine, 3, 1, machine::presets::nehalem_cluster(), body);
        let recorded = observe_controlled(
            engine,
            3,
            1,
            machine::presets::nehalem_cluster(),
            Some(ctl.clone()),
            body,
        );
        assert_identical(&bare, &recorded);
        // Guard against vacuous equality: the controller really was
        // consulted — it logged both wildcard decisions.
        assert_eq!(
            ctl.schedule().decisions.len(),
            2,
            "recording controller saw both wildcard matches on {engine:?}"
        );
        assert!(!ctl.diverged());
    }
}
