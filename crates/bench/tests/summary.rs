//! Exact-vs-sketch agreement: at small p, every number the bounded
//! streaming summarizer reports must be reproducible from the full
//! recorder's offline analyses — exactly for the additive totals (wait
//! breakdowns, timeline section totals, comm edges) and within the
//! documented relative error for the sketched quantiles. Plus the memory
//! contract the whole PR exists for: summarizer state is independent of
//! the step count and sublinear in p.

use mpi_sections::sketch::QUANTILE_REL_ERR;
use mpi_sections::{classify, critpath, timeline, CommRecorder, PvarRegistry, RunSummary};
use mpi_sections::{SectionRuntime, SummaryTool, VerifyMode, Windowing};
use mpisim::{Engine, WorldBuilder};
use std::sync::Arc;

/// One instrumented convolution run: the summarizer next to the full
/// recorder + pvar registry, so every summarized number has an exact
/// counterpart from the same events.
struct Observed {
    summary: RunSummary,
    log: mpi_sections::CommLog,
    pvar: mpi_sections::PvarSnapshot,
}

fn observe_conv(p: usize, steps: usize, machine: machine::MachineModel, seed: u64) -> Observed {
    let sections = SectionRuntime::new(VerifyMode::Active);
    let summary = SummaryTool::new();
    let recorder = CommRecorder::new();
    let pvar = PvarRegistry::new();
    let s = sections.clone();
    let cfg = Arc::new(convolution::ConvConfig::paper(steps));
    WorldBuilder::new(p)
        .engine(Engine::Des)
        .machine(machine)
        .seed(seed)
        .tool(sections.clone())
        .tool(summary.clone())
        .tool(recorder.clone())
        .tool(pvar.clone())
        .run(move |pr| {
            convolution::run_convolution(pr, &s, &cfg);
        })
        .expect("conv run failed");
    Observed {
        summary: summary.freeze(),
        log: recorder.freeze(),
        pvar: pvar.snapshot(),
    }
}

/// Summarizer state bytes for a conv run on the ideal machine.
fn conv_state_bytes(p: usize, steps: usize) -> usize {
    observe_conv(p, steps, machine::presets::ideal(), 1)
        .summary
        .state_bytes
}

#[test]
fn wait_totals_match_offline_classifier_exactly() {
    for p in [8, 16] {
        let obs = observe_conv(p, 12, machine::presets::nehalem_cluster(), 7);
        let exact = classify(&obs.log);
        for sec in &obs.summary.sections {
            let expect = exact
                .per_section
                .get(&sec.label)
                .copied()
                .unwrap_or_default();
            assert_eq!(
                sec.waits, expect,
                "p={p}: section {} wait breakdown diverged from the classifier",
                sec.label
            );
            // The idle-wait sketch keeps exact aggregates: its sum is the
            // late-sender + collective-wait total to the nanosecond.
            assert_eq!(
                sec.wait_sketch.sum_ns,
                (expect.late_sender_ns + expect.coll_wait_ns) as u128,
                "p={p}: section {} sketch sum diverged",
                sec.label
            );
        }
        // Not vacuous: the noisy machine produces real waits.
        assert!(obs.summary.total_wait_ns() > 0);
    }
}

#[test]
fn checkpoint_timeline_recomposes_full_build_totals() {
    let obs = observe_conv(8, 12, machine::presets::nehalem_cluster(), 7);
    let full = timeline::build(&obs.log, &Windowing::Fixed(4));
    let full_totals = full.section_totals();
    let sum_totals = obs.summary.to_timeline().section_totals();
    assert_eq!(
        full_totals.keys().collect::<Vec<_>>(),
        sum_totals.keys().collect::<Vec<_>>(),
        "section sets differ"
    );
    for (label, f) in &full_totals {
        let s = &sum_totals[label];
        // Every additive field recomposes exactly — windowing differs
        // (fixed windows vs checkpoint cadence) but totals may not.
        assert_eq!(s.time_ns, f.time_ns, "{label}: presence");
        assert_eq!(s.late_sender_ns, f.late_sender_ns, "{label}: late-sender");
        assert_eq!(s.coll_wait_ns, f.coll_wait_ns, "{label}: coll-wait");
        assert_eq!(s.transfer_ns, f.transfer_ns, "{label}: transfer");
        assert_eq!(s.useful_ns, f.useful_ns, "{label}: useful");
        assert_eq!(s.sent_msgs, f.sent_msgs, "{label}: sent msgs");
        assert_eq!(s.sent_bytes, f.sent_bytes, "{label}: sent bytes");
        assert_eq!(s.recv_msgs, f.recv_msgs, "{label}: recv msgs");
        assert_eq!(s.recv_bytes, f.recv_bytes, "{label}: recv bytes");
        assert_eq!(s.coll_exits, f.coll_exits, "{label}: coll exits");
    }
}

#[test]
fn sketch_quantiles_within_documented_error_of_exact_waits() {
    // A barrier straggler chain with a known wait distribution: rank r
    // advances (r+1) * 100 ms, so rank r waits (7 - r) * 100 ms at the
    // barrier (the straggler waits 0).
    let summary = SummaryTool::new();
    WorldBuilder::new(8)
        .tool(summary.clone())
        .run(|p| {
            let world = p.world();
            p.advance_secs(0.1 * (p.world_rank() + 1) as f64);
            world.barrier(p);
        })
        .unwrap();
    let s = summary.freeze();
    let main = &s.sections[0];
    assert_eq!(main.label, mpi_sections::MPI_MAIN);
    let sk = &main.wait_sketch;
    assert_eq!(sk.total, 7, "seven ranks waited");

    let mut exact: Vec<u64> = (1..8).map(|r| (8 - r) as u64 * 100_000_000).collect();
    exact.sort_unstable();
    for q in [0.5, 0.9, 0.99] {
        let idx = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len()) - 1;
        let want = exact[idx] as f64;
        let got = sk.quantile(q) as f64;
        let rel = (got - want).abs() / want;
        assert!(
            rel <= QUANTILE_REL_ERR,
            "q={q}: sketch {got} vs exact {want} (rel {rel:.4} > {QUANTILE_REL_ERR})"
        );
    }
    // Exact aggregates: min/max are the smallest/largest true waits.
    assert_eq!(sk.min_ns, 100_000_000);
    assert_eq!(sk.max_ns, 700_000_000);
}

#[test]
fn cluster_count_equals_distinct_wait_profiles() {
    // Four behavior groups of 16 ranks each, with geometrically spaced
    // barrier waits (90 s, 9 s, 0.9 s, 0 s) — far apart relative to the
    // fingerprint's quantization (4 log-buckets per decade), so each
    // group must land in its own cluster.
    let summary = SummaryTool::new();
    WorldBuilder::new(64)
        .engine(Engine::Des)
        .tool(summary.clone())
        .run(|p| {
            let world = p.world();
            let wait = [90.0, 9.0, 0.9, 0.0][p.world_rank() / 16];
            p.advance_secs(100.0 - wait);
            world.barrier(p);
        })
        .unwrap();
    let s = summary.freeze();
    assert_eq!(s.clusters.len(), 4, "{:?}", s.clusters);
    assert_eq!(s.dropped_clusters, 0);
    assert_eq!(s.other_members, 0);
    for c in &s.clusters {
        assert_eq!(c.members, 16, "every group has 16 ranks");
        assert_eq!(c.exemplar % 16, 0, "exemplar is the group's first rank");
    }
}

#[test]
fn top_edges_equal_exact_comm_matrix_when_under_budget() {
    let obs = observe_conv(8, 12, machine::presets::nehalem_cluster(), 7);
    assert_eq!(obs.summary.dropped_edges, 0, "under budget: no evictions");
    assert_eq!(
        obs.summary.edges.len(),
        obs.pvar.matrix.len(),
        "every exact matrix cell survives"
    );
    for e in &obs.summary.edges {
        let cell = obs
            .pvar
            .matrix
            .get(&(e.src, e.dst))
            .unwrap_or_else(|| panic!("edge ({}, {}) not in the exact matrix", e.src, e.dst));
        assert_eq!(e.bytes, cell.bytes, "({}, {}) bytes", e.src, e.dst);
        assert_eq!(e.msgs, cell.msgs, "({}, {}) msgs", e.src, e.dst);
        assert_eq!(e.err_bytes, 0);
    }
    // Heaviest-first ordering.
    for w in obs.summary.edges.windows(2) {
        assert!(w[0].bytes >= w[1].bytes);
    }
}

#[test]
fn streaming_cpl_bound_is_a_true_lower_bound() {
    for (machine, seed) in [
        (machine::presets::nehalem_cluster(), 7),
        (machine::presets::ideal(), 1),
    ] {
        let obs = observe_conv(8, 12, machine, seed);
        let exact = critpath::extract(&obs.log);
        assert!(
            obs.summary.cpl_lower_bound_ns <= exact.length_ns,
            "streaming bound {} exceeds the exact CPL {}",
            obs.summary.cpl_lower_bound_ns,
            exact.length_ns
        );
        assert!(obs.summary.cpl_lower_bound_ns > 0);
        assert!(obs.summary.cpl_lower_bound_ns <= obs.summary.makespan_ns);
    }
}

#[test]
fn summary_json_is_deterministic_across_equal_seeds() {
    let a = observe_conv(8, 12, machine::presets::nehalem_cluster(), 7);
    let b = observe_conv(8, 12, machine::presets::nehalem_cluster(), 7);
    assert_eq!(a.summary.to_json(), b.summary.to_json());
    mpisim::jsoncheck::assert_json(&a.summary.to_json(), "summary json");
}

#[test]
fn state_is_step_independent_and_sublinear_in_p() {
    // The memory contract: state depends on budgets (sections x buckets +
    // K clusters + k edges + checkpoint rows) plus O(1) per rank — never
    // on how many events flowed through.
    let s8_short = conv_state_bytes(8, 5);
    let s8_long = conv_state_bytes(8, 20);
    assert_eq!(
        s8_short, s8_long,
        "4x the steps must not change the summarizer state"
    );
    let s64 = conv_state_bytes(64, 5);
    let s256 = conv_state_bytes(256, 5);
    assert_eq!(s64, conv_state_bytes(64, 20), "step independence at p=64");
    assert!(
        s64 < 8 * s8_short,
        "8x ranks grew state {}x (fixed budgets should dominate)",
        s64 as f64 / s8_short as f64
    );
    assert!(
        s256 < 4 * s64,
        "4x ranks grew state {}x (fixed budgets should dominate)",
        s256 as f64 / s64 as f64
    );
}
