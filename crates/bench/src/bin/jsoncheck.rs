//! Validate JSON artifacts with the workspace's recursive-descent checker.
//!
//! ```text
//! cargo run --release -p bench --bin jsoncheck -- FILE [FILE...]
//! ```
//!
//! Reads each file and runs [`mpisim::jsoncheck::check_json`] — the exact
//! validator the exporter integration tests use — over its contents.
//! Prints one `ok`/`invalid` line per file; exits non-zero if any file is
//! missing or malformed. `scripts/check.sh` uses this to gate the JSON
//! documents the `profile` CLI emits (metrics, traces, timelines).

use std::process::ExitCode;

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: jsoncheck FILE [FILE...]");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in &files {
        let contents = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{path}: unreadable: {e}");
                failed = true;
                continue;
            }
        };
        match mpisim::jsoncheck::check_json(&contents) {
            Ok(()) => println!("{path}: ok ({} bytes)", contents.len()),
            Err(pos) => {
                let mut lo = pos.saturating_sub(40);
                while !contents.is_char_boundary(lo) {
                    lo -= 1;
                }
                let mut hi = (pos + 40).min(contents.len());
                while !contents.is_char_boundary(hi) {
                    hi += 1;
                }
                eprintln!(
                    "{path}: invalid JSON at byte {pos}: ...{}...",
                    &contents[lo..hi]
                );
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
