//! A MALP-style command-line profiler (§8: "this work and the associated
//! profiling interface are to be released in open-source in the MALP
//! profiling tool"): run either benchmark under the section profiler and
//! print the profile report, the load-balance analysis, the Eq. 6 bound
//! ranking, and optionally a Chrome trace.
//!
//! ```text
//! cargo run --release -p bench --bin profile -- conv   --p 64 --steps 100
//! cargo run --release -p bench --bin profile -- lulesh --p 8 --threads 4 --iters 100
//!
//! options:
//!   --p N          MPI processes                     (default 8)
//!   --threads N    OpenMP-style threads (lulesh)     (default 1)
//!   --steps N      convolution steps                 (default 100)
//!   --iters N      lulesh iterations                 (default 100)
//!   --engine E     threads | des — execution engine   (default: des on
//!                  x86-64, threads elsewhere; also via MPISIM_ENGINE)
//!   --machine M    nehalem | knl | broadwell | ideal (default: per workload)
//!   --machine-file F  load the machine from a `key = value` file (see
//!                  `machine::config`); overrides --machine
//!   --seed N       noise seed                        (default 1)
//!   --trace FILE   write a Chrome trace JSON (open in chrome://tracing;
//!                  rank rows are labeled and message arrows join each
//!                  send to its matching receive)
//!   --csv FILE     write the span trace as CSV
//!   --profile-csv FILE  write the per-section summary as CSV
//!   --metrics      print the pvar communication metrics (per-section
//!                  message/byte counters), the wait-state breakdown
//!                  (late-sender / late-receiver / collective-wait) and
//!                  the critical-path speedup bound next to the Eq. 6
//!                  ranking
//!   --comm-matrix  print the per-(src,dst) communication matrix
//!   --flamegraph FILE   write folded flamegraph stacks weighted by
//!                  exclusive section time (flamegraph.pl / speedscope)
//!   --metrics-json FILE  write the pvar + wait-state + critical-path
//!                  metrics as one JSON document (byte-identical across
//!                  runs with the same seed)
//!   --compare-seq  also run the sequential baseline and print the
//!                  per-section scaling comparison (Eq. 6 bounds vs a real
//!                  baseline instead of the single-run proxy)
//!   --check        attach the mpicheck correctness analyzer: deadlocks,
//!                  collective divergence and wildcard-receive races are
//!                  reported as structured diagnostics (exit code 1 on
//!                  errors); a clean run prints "mpicheck: clean"
//!   --efficiency   print the windowed POP efficiency report (parallel =
//!                  load balance x comm, comm = serialization x transfer;
//!                  one sparkline per metric per section) and the
//!                  trend-detector table naming degrading sections and
//!                  their dominant wait-state class
//!   --timeline FILE  write the per-(window, section) stats and the
//!                  efficiency hierarchy as CSV
//!   --windows N    number of fixed-width virtual-time windows (default 8)
//!   --window-align LABEL  align windows to iterations of the named
//!                  outermost section (one window per entry observed on
//!                  rank 0) instead of fixed widths
//! ```
//!
//! With any of the timeline flags active, `--metrics-json` gains a
//! `timeline` object (windowed stats + per-window wait histograms) and a
//! `trends` array, and `--trace` gains per-window efficiency counter
//! lanes under a synthetic "windowed efficiency" Perfetto process.

use mpi_sections::{
    classify, critpath, render, render_bounds, CommRecorder, PvarRegistry, ReportOptions,
    SectionProfiler, SectionRuntime, TraceTool, VerifyMode, Windowing,
};
use mpisim::WorldBuilder;
use std::sync::Arc;

struct Args {
    workload: String,
    p: usize,
    threads: usize,
    steps: usize,
    iters: usize,
    engine: Option<mpisim::Engine>,
    machine: Option<String>,
    machine_file: Option<String>,
    seed: u64,
    trace: Option<String>,
    csv: Option<String>,
    profile_csv: Option<String>,
    compare_seq: bool,
    check: bool,
    metrics: bool,
    comm_matrix: bool,
    flamegraph: Option<String>,
    metrics_json: Option<String>,
    efficiency: bool,
    timeline: Option<String>,
    windows: usize,
    window_align: Option<String>,
}

const USAGE: &str = "usage: profile <conv|lulesh> [--p N] [--threads N] [--steps N] [--iters N] \
[--engine threads|des] [--machine M] [--machine-file F] [--seed N] [--trace FILE] [--csv FILE] [--profile-csv FILE] \
[--check] [--metrics] [--comm-matrix] [--flamegraph FILE] [--metrics-json FILE] [--compare-seq] \
[--efficiency] [--timeline FILE] [--windows N] [--window-align LABEL]";

/// The operand of flag `argv[i]`, or a usage error if argv ends first.
fn operand(argv: &[String], i: usize) -> &str {
    argv.get(i + 1).map(String::as_str).unwrap_or_else(|| {
        eprintln!("error: {} requires a value\n{USAGE}", argv[i]);
        std::process::exit(2);
    })
}

/// The operand of flag `argv[i]` parsed as a number, or a usage error.
fn numeric_operand<T: std::str::FromStr>(argv: &[String], i: usize) -> T {
    let raw = operand(argv, i);
    raw.parse().unwrap_or_else(|_| {
        eprintln!("error: {} expects a number, got '{raw}'\n{USAGE}", argv[i]);
        std::process::exit(2);
    })
}

fn parse() -> Args {
    let mut args = Args {
        workload: String::new(),
        p: 8,
        threads: 1,
        steps: 100,
        iters: 100,
        engine: None,
        machine: None,
        machine_file: None,
        seed: 1,
        trace: None,
        csv: None,
        profile_csv: None,
        compare_seq: false,
        check: false,
        metrics: false,
        comm_matrix: false,
        flamegraph: None,
        metrics_json: None,
        efficiency: false,
        timeline: None,
        windows: 8,
        window_align: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--p" => {
                args.p = numeric_operand(&argv, i);
                i += 2;
            }
            "--threads" => {
                args.threads = numeric_operand(&argv, i);
                i += 2;
            }
            "--steps" => {
                args.steps = numeric_operand(&argv, i);
                i += 2;
            }
            "--iters" => {
                args.iters = numeric_operand(&argv, i);
                i += 2;
            }
            "--engine" => {
                args.engine = Some(operand(&argv, i).parse().unwrap_or_else(|e| {
                    eprintln!("error: {e}\n{USAGE}");
                    std::process::exit(2);
                }));
                i += 2;
            }
            "--machine" => {
                args.machine = Some(operand(&argv, i).to_string());
                i += 2;
            }
            "--machine-file" => {
                args.machine_file = Some(operand(&argv, i).to_string());
                i += 2;
            }
            "--seed" => {
                args.seed = numeric_operand(&argv, i);
                i += 2;
            }
            "--trace" => {
                args.trace = Some(operand(&argv, i).to_string());
                i += 2;
            }
            "--csv" => {
                args.csv = Some(operand(&argv, i).to_string());
                i += 2;
            }
            "--profile-csv" => {
                args.profile_csv = Some(operand(&argv, i).to_string());
                i += 2;
            }
            "--compare-seq" => {
                args.compare_seq = true;
                i += 1;
            }
            "--check" => {
                args.check = true;
                i += 1;
            }
            "--metrics" => {
                args.metrics = true;
                i += 1;
            }
            "--comm-matrix" => {
                args.comm_matrix = true;
                i += 1;
            }
            "--flamegraph" => {
                args.flamegraph = Some(operand(&argv, i).to_string());
                i += 2;
            }
            "--metrics-json" => {
                args.metrics_json = Some(operand(&argv, i).to_string());
                i += 2;
            }
            "--efficiency" => {
                args.efficiency = true;
                i += 1;
            }
            "--timeline" => {
                args.timeline = Some(operand(&argv, i).to_string());
                i += 2;
            }
            "--windows" => {
                args.windows = numeric_operand(&argv, i);
                i += 2;
            }
            "--window-align" => {
                args.window_align = Some(operand(&argv, i).to_string());
                i += 2;
            }
            w if !w.starts_with("--") && args.workload.is_empty() => {
                args.workload = w.to_string();
                i += 1;
            }
            other => {
                eprintln!("error: unknown argument '{other}'\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if args.workload.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    if args.windows == 0 {
        eprintln!("error: --windows expects N >= 1\n{USAGE}");
        std::process::exit(2);
    }
    args
}

fn resolve_machine(args: &Args, default: &str) -> machine::MachineModel {
    if let Some(path) = &args.machine_file {
        match machine::MachineModel::from_config_file(std::path::Path::new(path)) {
            Ok(m) => return m,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }
    machine_by_name(args.machine.as_deref().unwrap_or(default))
}

fn machine_by_name(name: &str) -> machine::MachineModel {
    match name {
        "nehalem" => machine::presets::nehalem_cluster(),
        "knl" => machine::presets::knl(),
        "broadwell" => machine::presets::dual_broadwell(),
        "ideal" => machine::presets::ideal(),
        other => {
            eprintln!("unknown machine '{other}' (nehalem|knl|broadwell|ideal)");
            std::process::exit(2);
        }
    }
}

/// Unwrap a run result, rendering structured diagnostics (from `--check`
/// or section verification) as a report instead of a panic backtrace.
fn unwrap_run<R>(result: Result<mpisim::RunReport<R>, mpisim::RunError>) -> mpisim::RunReport<R> {
    match result {
        Ok(report) => report,
        Err(mpisim::RunError::Diagnosed(diags)) => {
            eprintln!("{}", mpisim::diag::report(&diags));
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("run failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = parse();
    let checker = args.check.then(mpicheck::Analyzer::new);
    let sections = SectionRuntime::new(VerifyMode::Active);
    let profiler = SectionProfiler::new();
    let trace = TraceTool::new();
    sections.attach(profiler.clone());
    let tracing = args.trace.is_some() || args.csv.is_some() || args.flamegraph.is_some();
    if tracing {
        sections.attach(trace.clone());
    }
    let windowing = args.efficiency || args.timeline.is_some();
    let observing = args.metrics || args.comm_matrix || args.metrics_json.is_some() || windowing;
    let pvar = observing.then(PvarRegistry::new);
    let recorder = observing.then(CommRecorder::new);

    // PMPI-layer tools shared by both workload arms: the correctness
    // checker, the pvar registry and wait-state recorder (--metrics and
    // friends), and the trace tool itself when Chrome output was requested
    // (it records message endpoints for the flow arrows).
    let mut extra: Vec<Arc<dyn mpisim::Tool>> = Vec::new();
    if let Some(checker) = &checker {
        extra.push(checker.clone());
    }
    if let Some(pvar) = &pvar {
        extra.push(pvar.clone());
    }
    if let Some(recorder) = &recorder {
        extra.push(recorder.clone());
    }
    if args.trace.is_some() {
        extra.push(trace.clone());
    }

    match args.workload.as_str() {
        "conv" => {
            let m = resolve_machine(&args, "nehalem");
            let s = sections.clone();
            let cfg = Arc::new(convolution::ConvConfig::paper(args.steps));
            let mut builder = WorldBuilder::new(args.p)
                .machine(m.clone())
                .seed(args.seed)
                .tool(sections.clone());
            if let Some(engine) = args.engine {
                builder = builder.engine(engine);
            }
            for t in &extra {
                builder = builder.tool(t.clone());
            }
            let report = unwrap_run(builder.run(move |p| {
                convolution::run_convolution(p, &s, &cfg);
            }));
            println!(
                "convolution: p={}, {} steps, machine '{}', simulated walltime {:.3} s\n",
                args.p,
                args.steps,
                m.name,
                report.makespan_secs()
            );
        }
        "lulesh" => {
            let m = resolve_machine(&args, "knl");
            let s = lulesh_proxy::size_for(lulesh_proxy::PAPER_TOTAL_ELEMENTS, args.p)
                .unwrap_or_else(|| {
                    eprintln!(
                        "--p must be a perfect cube dividing 110592 (1, 8, 27, 64); got {}",
                        args.p
                    );
                    std::process::exit(2);
                });
            let sr = sections.clone();
            let cfg = Arc::new(lulesh_proxy::LuleshConfig::timing(
                s,
                args.iters,
                args.threads,
            ));
            let mut builder = WorldBuilder::new(args.p)
                .machine(m.clone())
                .seed(args.seed)
                .tool(sections.clone());
            if let Some(engine) = args.engine {
                builder = builder.engine(engine);
            }
            for t in &extra {
                builder = builder.tool(t.clone());
            }
            let report = unwrap_run(builder.run(move |p| {
                lulesh_proxy::run_lulesh(p, &sr, &cfg);
            }));
            println!(
                "lulesh: p={}, s={}, {} iterations, {} threads, machine '{}', simulated walltime {:.3} s\n",
                args.p,
                s,
                args.iters,
                args.threads,
                m.name,
                report.makespan_secs()
            );
        }
        other => {
            eprintln!("unknown workload '{other}' (conv|lulesh)");
            std::process::exit(2);
        }
    }

    if let Some(checker) = &checker {
        let warnings = checker.diagnostics();
        if warnings.is_empty() {
            println!("mpicheck: clean — no diagnostics\n");
        } else {
            println!("{}", mpisim::diag::report(&warnings));
        }
    }

    let profile = profiler.snapshot();
    println!("{}", render(&profile, &ReportOptions::default()));

    // Eq. 6 bound ranking against the run's own aggregate (a proxy for the
    // sequential total when only one scale was run).
    let total: f64 = profile
        .sections()
        .filter(|s| s.key.label != mpi_sections::MPI_MAIN)
        .map(|s| s.total_excl_secs)
        .sum();
    println!("{}", render_bounds(&profile, total, args.p));

    // Communication-aware observability: pvar counters, wait-state
    // classification and the critical-path bound complement the Eq. 6
    // ranking — the former say *why* a section caps speedup, the latter
    // bounds what any p can achieve through the dependency graph.
    let snapshot = pvar.as_ref().map(|pv| pv.snapshot());
    let comm_log = recorder.as_ref().map(|r| r.freeze());
    let analysis = comm_log
        .as_ref()
        .map(|log| (classify(log), critpath::extract(log)));

    // The windowed view: time-resolved POP efficiencies per section, the
    // trend diagnosis on top of them, and the CSV/JSON/counter exports.
    let windowing_mode = match &args.window_align {
        Some(label) => Windowing::Aligned(label.clone()),
        None => Windowing::Fixed(args.windows),
    };
    let tl = comm_log
        .as_ref()
        .map(|log| mpi_sections::timeline::build(log, &windowing_mode));
    let trends = tl
        .as_ref()
        .map(|tl| speedup::trend::detect(tl, &speedup::trend::TrendConfig::default()));
    if args.efficiency {
        let (tl, trends) = (
            tl.as_ref().expect("recorder"),
            trends.as_ref().expect("recorder"),
        );
        println!("{}", mpi_sections::efficiency::render(tl));
        println!("{}", speedup::trend::render(trends));
    }
    if let Some(path) = &args.timeline {
        let tl = tl.as_ref().expect("recorder");
        std::fs::write(path, tl.to_csv()).expect("write timeline csv");
        println!(
            "wrote timeline CSV ({} windows) to {path}",
            tl.windows.len()
        );
    }

    if args.metrics {
        if let Some(snapshot) = &snapshot {
            println!("{}", snapshot.render_metrics());
        }
        if let Some((waits, cp)) = &analysis {
            println!("{}", waits.render());
            println!("{}", cp.render(total, args.p));
        }
    }
    if args.comm_matrix {
        if let Some(snapshot) = &snapshot {
            println!("{}", snapshot.render_matrix(32));
        }
    }
    if let Some(path) = &args.metrics_json {
        let (waits, cp) = analysis.as_ref().expect("recorder attached");
        let snapshot = snapshot.as_ref().expect("registry attached");
        let json = format!(
            "{{\"workload\":\"{}\",\"p\":{},\"seed\":{},\"pvar\":{},\"waitstate\":{},\"critical_path\":{},\"timeline\":{},\"trends\":{}}}\n",
            args.workload,
            args.p,
            args.seed,
            snapshot.to_json(),
            waits.to_json(),
            cp.to_json(),
            tl.as_ref().expect("recorder").to_json(),
            speedup::trend::to_json(trends.as_ref().expect("recorder")),
        );
        std::fs::write(path, json).expect("write metrics json");
        println!("wrote metrics JSON to {path}");
    }

    if args.compare_seq && args.p > 1 {
        // Re-run the same workload sequentially and line the two profiles
        // up (the paper's actual workflow: a sequential reference run).
        let base_sections = SectionRuntime::new(VerifyMode::Off);
        let base_profiler = SectionProfiler::new();
        base_sections.attach(base_profiler.clone());
        match args.workload.as_str() {
            "conv" => {
                let m = resolve_machine(&args, "nehalem");
                let s = base_sections.clone();
                let cfg = Arc::new(convolution::ConvConfig::paper(args.steps));
                WorldBuilder::new(1)
                    .machine(m)
                    .seed(args.seed)
                    .tool(base_sections.clone())
                    .run(move |p| {
                        convolution::run_convolution(p, &s, &cfg);
                    })
                    .expect("baseline run failed");
            }
            _ => {
                let m = resolve_machine(&args, "knl");
                // Same *global* problem sequentially: s_global = s * cbrt(p).
                let s_local = lulesh_proxy::size_for(lulesh_proxy::PAPER_TOTAL_ELEMENTS, args.p)
                    .expect("validated above");
                let side = (args.p as f64).cbrt().round() as usize;
                let sr = base_sections.clone();
                let cfg = Arc::new(lulesh_proxy::LuleshConfig::timing(
                    s_local * side,
                    args.iters,
                    args.threads,
                ));
                WorldBuilder::new(1)
                    .machine(m)
                    .seed(args.seed)
                    .tool(base_sections.clone())
                    .run(move |p| {
                        lulesh_proxy::run_lulesh(p, &sr, &cfg);
                    })
                    .expect("baseline run failed");
            }
        }
        let comparison =
            mpi_sections::ProfileComparison::between(&base_profiler.snapshot(), &profile, args.p);
        println!("{}", comparison.render());
        if let Some(binding) = comparison.binding() {
            println!(
                "binding constraint: '{}' caps the program at S <= {:.2}\n",
                binding.label, binding.program_bound
            );
        }
        let overheads = comparison.pure_overheads();
        if !overheads.is_empty() {
            let names: Vec<&str> = overheads.iter().map(|s| s.label.as_str()).collect();
            println!(
                "pure overheads (zero sequential cost): {}\n",
                names.join(", ")
            );
        }
    }

    if let Some(path) = &args.trace {
        std::fs::write(path, trace.to_chrome_trace_with(tl.as_ref())).expect("write trace");
        println!("wrote Chrome trace ({} spans) to {path}", trace.len());
    }
    if let Some(path) = &args.csv {
        std::fs::write(path, trace.to_csv()).expect("write csv");
        println!("wrote span CSV to {path}");
    }
    if let Some(path) = &args.profile_csv {
        std::fs::write(path, profile.to_csv()).expect("write profile csv");
        println!("wrote profile CSV to {path}");
    }
    if let Some(path) = &args.flamegraph {
        std::fs::write(path, trace.to_folded()).expect("write flamegraph");
        println!("wrote folded flamegraph stacks to {path}");
    }
}
