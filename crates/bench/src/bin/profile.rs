//! A MALP-style command-line profiler (§8: "this work and the associated
//! profiling interface are to be released in open-source in the MALP
//! profiling tool"): run either benchmark under the section profiler and
//! print the profile report, the load-balance analysis, the Eq. 6 bound
//! ranking, and optionally a Chrome trace.
//!
//! ```text
//! cargo run --release -p bench --bin profile -- conv   --p 64 --steps 100
//! cargo run --release -p bench --bin profile -- lulesh --p 8 --threads 4 --iters 100
//! cargo run --release -p bench --bin profile -- race   --p 4 --verify
//!
//! options:
//!   --p N          MPI processes                     (default 8)
//!   --threads N    OpenMP-style threads (lulesh)     (default 1)
//!   --steps N      convolution steps                 (default 100)
//!   --iters N      lulesh iterations                 (default 100)
//!   --engine E     threads | des — execution engine   (default: des on
//!                  x86-64, threads elsewhere; also via MPISIM_ENGINE)
//!   --machine M    nehalem | knl | broadwell | ideal (default: per workload)
//!   --machine-file F  load the machine from a `key = value` file (see
//!                  `machine::config`); overrides --machine
//!   --seed N       noise seed                        (default 1)
//!   --trace FILE   write a Chrome trace JSON (open in chrome://tracing;
//!                  rank rows are labeled and message arrows join each
//!                  send to its matching receive)
//!   --csv FILE     write the span trace as CSV
//!   --profile-csv FILE  write the per-section summary as CSV
//!   --metrics      print the pvar communication metrics (per-section
//!                  message/byte counters), the wait-state breakdown
//!                  (late-sender / late-receiver / collective-wait) and
//!                  the critical-path speedup bound next to the Eq. 6
//!                  ranking
//!   --comm-matrix  print the per-(src,dst) communication matrix
//!   --flamegraph FILE   write folded flamegraph stacks weighted by
//!                  exclusive section time (flamegraph.pl / speedscope)
//!   --metrics-json FILE  write the pvar + wait-state + critical-path
//!                  metrics as one JSON document (byte-identical across
//!                  runs with the same seed)
//!   --compare-seq  also run the sequential baseline and print the
//!                  per-section scaling comparison (Eq. 6 bounds vs a real
//!                  baseline instead of the single-run proxy)
//!   --check        attach the mpicheck correctness analyzer: deadlocks,
//!                  collective divergence and wildcard-receive races are
//!                  reported as structured diagnostics (exit code 1 on
//!                  errors); a clean run prints "mpicheck: clean"
//!   --verify       explore the space of wildcard-receive matchings
//!                  (stateless model checking on the DES engine) and print
//!                  a verdict per wildcard site: CONFIRMED (divergent
//!                  witness pair, or deadlock under an alternative
//!                  matching — exit code 1), REFUTED (all reachable
//!                  matchings byte-identical) or trivially refuted (one
//!                  live sender)
//!   --verify-budget N    schedule budget for --verify (default 64)
//!   --verify-json FILE   write the verdict report as JSON
//!   --verify-witnesses PREFIX  write the first confirmed race's witness
//!                  schedules to PREFIX.a.json / PREFIX.b.json
//!   --replay-schedule FILE  force the run's wildcard matchings from a
//!                  witness schedule (implies the DES engine); combined
//!                  with --metrics-json, replaying each witness of a
//!                  confirmed race reproduces its side of the divergence
//!   --efficiency   print the windowed POP efficiency report (parallel =
//!                  load balance x comm, comm = serialization x transfer;
//!                  one sparkline per metric per section) and the
//!                  trend-detector table naming degrading sections and
//!                  their dominant wait-state class
//!   --timeline FILE  write the per-(window, section) stats and the
//!                  efficiency hierarchy as CSV
//!   --windows N    number of fixed-width virtual-time windows (default 8)
//!   --window-align LABEL  align windows to iterations of the named
//!                  outermost section (one window per entry observed on
//!                  rank 0) instead of fixed widths
//!   --what-if SPEC  counterfactual replay: re-time the recorded trace
//!                  under an altered machine model and report predicted
//!                  makespan/speedup, re-evaluated Eq. 6 and critical-path
//!                  bounds, re-timed wait-state totals and the trend
//!                  verdict. Repeatable (one scenario per flag). SPEC is a
//!                  comma-separated clause list: `net=ideal` (or another
//!                  machine name) re-prices every message and collective,
//!                  `jitter=0` replays noise-free, `null=late-sender`
//!                  (late-receiver | wait-at-collective) nulls one
//!                  wait-state class, `scale:HALO=0.5` scales a section's
//!                  local work
//!   --summary      attach the bounded-memory streaming summarizer and
//!                  print its report: per-section wait/compute quantile
//!                  sketches, rank equivalence clusters with a wait-state
//!                  heatmap, top-k comm edges with the exact eviction
//!                  count, and the Eq. 6 / `S <= T_seq/CPL` bounds — all
//!                  from O(sections x buckets + K clusters + k edges)
//!                  state, independent of the step count
//!   --summary-json FILE  write the summary block as a JSON document
//!                  (jsoncheck-valid, byte-identical across equal seeds
//!                  and across the des/threads engines)
//!   --trace-max-ranks N  cap Chrome-trace rank lanes and flow arrows at
//!                  N ranks (default 512); dropped ranks are counted and
//!                  logged instead of silently inflating the trace
//! ```
//!
//! At p >= 1024 the metrics/efficiency flags automatically switch to
//! **summary-only recording**: the full per-event `CommRecorder` (memory
//! linear in `steps x p`) stays off and every report is served from the
//! streaming summarizer's bounded state. `--what-if`, `--verify` and
//! `--replay-schedule` still force full recording (the event log is their
//! input); a log line states which mode ran.
//!
//! With any of the timeline flags active, `--metrics-json` gains a
//! `timeline` object (windowed stats + per-window wait histograms) and a
//! `trends` array, and `--trace` gains per-window efficiency counter
//! lanes under a synthetic "windowed efficiency" Perfetto process.
//!
//! The `race` workload is a deliberately racy wildcard-receive program
//! (every sender ships a different payload to rank 0's `Src::Any` loop):
//! the demonstration target for `--verify` and `--replay-schedule`.

use mpi_sections::{
    classify, critpath, render, render_bounds, CommRecorder, PvarRegistry, ReportOptions,
    SectionProfiler, SectionRuntime, SummaryTool, TraceTool, VerifyMode, Windowing,
    SUMMARY_AUTO_RANKS,
};
use mpisim::{Src, TagSel, WorldBuilder};
use mpiverify::{RunOutcome, Schedule, ScheduleController};
use std::sync::Arc;

struct Args {
    workload: String,
    p: usize,
    threads: usize,
    steps: usize,
    iters: usize,
    engine: Option<mpisim::Engine>,
    machine: Option<String>,
    machine_file: Option<String>,
    seed: u64,
    trace: Option<String>,
    csv: Option<String>,
    profile_csv: Option<String>,
    compare_seq: bool,
    check: bool,
    verify: bool,
    verify_budget: usize,
    verify_json: Option<String>,
    verify_witnesses: Option<String>,
    replay_schedule: Option<String>,
    metrics: bool,
    comm_matrix: bool,
    flamegraph: Option<String>,
    metrics_json: Option<String>,
    efficiency: bool,
    timeline: Option<String>,
    windows: usize,
    window_align: Option<String>,
    what_if: Vec<String>,
    summary: bool,
    summary_json: Option<String>,
    trace_max_ranks: usize,
}

const USAGE: &str = "usage: profile <conv|lulesh|race> [--p N] [--threads N] [--steps N] [--iters N] \
[--engine threads|des] [--machine M] [--machine-file F] [--seed N] [--trace FILE] [--csv FILE] [--profile-csv FILE] \
[--check] [--verify] [--verify-budget N] [--verify-json FILE] [--verify-witnesses PREFIX] \
[--replay-schedule FILE] [--metrics] [--comm-matrix] [--flamegraph FILE] [--metrics-json FILE] [--compare-seq] \
[--efficiency] [--timeline FILE] [--windows N] [--window-align LABEL] [--what-if SPEC]... \
[--summary] [--summary-json FILE] [--trace-max-ranks N]";

/// The operand of flag `argv[i]`, or a usage error if argv ends first.
fn operand(argv: &[String], i: usize) -> &str {
    argv.get(i + 1).map(String::as_str).unwrap_or_else(|| {
        eprintln!("error: {} requires a value\n{USAGE}", argv[i]);
        std::process::exit(2);
    })
}

/// The operand of flag `argv[i]` parsed as a number, or a usage error.
fn numeric_operand<T: std::str::FromStr>(argv: &[String], i: usize) -> T {
    let raw = operand(argv, i);
    raw.parse().unwrap_or_else(|_| {
        eprintln!("error: {} expects a number, got '{raw}'\n{USAGE}", argv[i]);
        std::process::exit(2);
    })
}

fn parse() -> Args {
    let mut args = Args {
        workload: String::new(),
        p: 8,
        threads: 1,
        steps: 100,
        iters: 100,
        engine: None,
        machine: None,
        machine_file: None,
        seed: 1,
        trace: None,
        csv: None,
        profile_csv: None,
        compare_seq: false,
        check: false,
        verify: false,
        verify_budget: 64,
        verify_json: None,
        verify_witnesses: None,
        replay_schedule: None,
        metrics: false,
        comm_matrix: false,
        flamegraph: None,
        metrics_json: None,
        efficiency: false,
        timeline: None,
        windows: 8,
        window_align: None,
        what_if: Vec::new(),
        summary: false,
        summary_json: None,
        trace_max_ranks: 512,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--p" => {
                args.p = numeric_operand(&argv, i);
                i += 2;
            }
            "--threads" => {
                args.threads = numeric_operand(&argv, i);
                i += 2;
            }
            "--steps" => {
                args.steps = numeric_operand(&argv, i);
                i += 2;
            }
            "--iters" => {
                args.iters = numeric_operand(&argv, i);
                i += 2;
            }
            "--engine" => {
                args.engine = Some(operand(&argv, i).parse().unwrap_or_else(|e| {
                    eprintln!("error: {e}\n{USAGE}");
                    std::process::exit(2);
                }));
                i += 2;
            }
            "--machine" => {
                args.machine = Some(operand(&argv, i).to_string());
                i += 2;
            }
            "--machine-file" => {
                args.machine_file = Some(operand(&argv, i).to_string());
                i += 2;
            }
            "--seed" => {
                args.seed = numeric_operand(&argv, i);
                i += 2;
            }
            "--trace" => {
                args.trace = Some(operand(&argv, i).to_string());
                i += 2;
            }
            "--csv" => {
                args.csv = Some(operand(&argv, i).to_string());
                i += 2;
            }
            "--profile-csv" => {
                args.profile_csv = Some(operand(&argv, i).to_string());
                i += 2;
            }
            "--compare-seq" => {
                args.compare_seq = true;
                i += 1;
            }
            "--check" => {
                args.check = true;
                i += 1;
            }
            "--verify" => {
                args.verify = true;
                i += 1;
            }
            "--verify-budget" => {
                args.verify_budget = numeric_operand(&argv, i);
                i += 2;
            }
            "--verify-json" => {
                args.verify_json = Some(operand(&argv, i).to_string());
                i += 2;
            }
            "--verify-witnesses" => {
                args.verify_witnesses = Some(operand(&argv, i).to_string());
                i += 2;
            }
            "--replay-schedule" => {
                args.replay_schedule = Some(operand(&argv, i).to_string());
                i += 2;
            }
            "--metrics" => {
                args.metrics = true;
                i += 1;
            }
            "--comm-matrix" => {
                args.comm_matrix = true;
                i += 1;
            }
            "--flamegraph" => {
                args.flamegraph = Some(operand(&argv, i).to_string());
                i += 2;
            }
            "--metrics-json" => {
                args.metrics_json = Some(operand(&argv, i).to_string());
                i += 2;
            }
            "--efficiency" => {
                args.efficiency = true;
                i += 1;
            }
            "--timeline" => {
                args.timeline = Some(operand(&argv, i).to_string());
                i += 2;
            }
            "--windows" => {
                args.windows = numeric_operand(&argv, i);
                i += 2;
            }
            "--window-align" => {
                args.window_align = Some(operand(&argv, i).to_string());
                i += 2;
            }
            "--summary" => {
                args.summary = true;
                i += 1;
            }
            "--summary-json" => {
                args.summary_json = Some(operand(&argv, i).to_string());
                i += 2;
            }
            "--trace-max-ranks" => {
                args.trace_max_ranks = numeric_operand(&argv, i);
                i += 2;
            }
            "--what-if" => {
                let raw = operand(&argv, i);
                if let Err(e) = mpi_sections::whatif::parse(raw) {
                    eprintln!("error: --what-if: {e}\n{USAGE}");
                    std::process::exit(2);
                }
                args.what_if.push(raw.to_string());
                i += 2;
            }
            w if !w.starts_with("--") && args.workload.is_empty() => {
                args.workload = w.to_string();
                i += 1;
            }
            other => {
                eprintln!("error: unknown argument '{other}'\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if args.workload.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    if args.windows == 0 {
        eprintln!("error: --windows expects N >= 1\n{USAGE}");
        std::process::exit(2);
    }
    if args.verify_budget == 0 {
        eprintln!("error: --verify-budget expects N >= 1\n{USAGE}");
        std::process::exit(2);
    }
    // Schedule control relies on the DES engine's deterministic global
    // decision order; under the threads engine the forced prefix can
    // interleave differently across receivers and replay is unsound.
    if (args.verify || args.replay_schedule.is_some())
        && args.engine == Some(mpisim::Engine::Threads)
    {
        eprintln!("error: --verify/--replay-schedule require the des engine\n{USAGE}");
        std::process::exit(2);
    }
    args
}

fn resolve_machine(args: &Args, default: &str) -> machine::MachineModel {
    if let Some(path) = &args.machine_file {
        match machine::MachineModel::from_config_file(std::path::Path::new(path)) {
            Ok(m) => return m,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }
    machine_by_name(args.machine.as_deref().unwrap_or(default))
}

fn machine_by_name(name: &str) -> machine::MachineModel {
    match name {
        "nehalem" => machine::presets::nehalem_cluster(),
        "knl" => machine::presets::knl(),
        "broadwell" => machine::presets::dual_broadwell(),
        "ideal" => machine::presets::ideal(),
        other => {
            eprintln!("unknown machine '{other}' (nehalem|knl|broadwell|ideal)");
            std::process::exit(2);
        }
    }
}

/// Unwrap a run result, rendering structured diagnostics (from `--check`
/// or section verification) as a report instead of a panic backtrace.
fn unwrap_run<R>(result: Result<mpisim::RunReport<R>, mpisim::RunError>) -> mpisim::RunReport<R> {
    match result {
        Ok(report) => report,
        Err(mpisim::RunError::Diagnosed(diags)) => {
            eprintln!("{}", mpisim::diag::report(&diags));
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("run failed: {e}");
            std::process::exit(1);
        }
    }
}

/// One run's worth of observer tools. Exploration re-executes the world
/// many times in this process, and every tool here accumulates across
/// runs, so each run gets a **fresh** stack — that is what keeps forced
/// runs silent and keeps pvar/trace snapshots per-run.
struct Stack {
    checker: Option<Arc<mpicheck::Analyzer>>,
    sections: Arc<SectionRuntime>,
    profiler: Arc<SectionProfiler>,
    trace: Arc<TraceTool>,
    pvar: Option<Arc<PvarRegistry>>,
    recorder: Option<Arc<CommRecorder>>,
    summary: Option<Arc<SummaryTool>>,
    /// Attach the trace tool at the PMPI layer too (message-flow arrows).
    trace_pmpi: bool,
}

impl Stack {
    fn build(
        check: bool,
        observing: bool,
        tracing: bool,
        trace_pmpi: bool,
        summarizing: bool,
    ) -> Stack {
        let sections = SectionRuntime::new(VerifyMode::Active);
        let profiler = SectionProfiler::new();
        let trace = TraceTool::new();
        sections.attach(profiler.clone());
        if tracing {
            sections.attach(trace.clone());
        }
        Stack {
            checker: check.then(mpicheck::Analyzer::new),
            sections,
            profiler,
            trace,
            pvar: observing.then(PvarRegistry::new),
            recorder: observing.then(CommRecorder::new),
            summary: summarizing.then(SummaryTool::new),
            trace_pmpi,
        }
    }

    /// The PMPI-layer tools of this stack, in attach order.
    fn world_tools(&self) -> Vec<Arc<dyn mpisim::Tool>> {
        let mut tools: Vec<Arc<dyn mpisim::Tool>> = vec![self.sections.clone()];
        if let Some(checker) = &self.checker {
            tools.push(checker.clone());
        }
        if let Some(pvar) = &self.pvar {
            tools.push(pvar.clone());
        }
        if let Some(recorder) = &self.recorder {
            tools.push(recorder.clone());
        }
        if let Some(summary) = &self.summary {
            tools.push(summary.clone());
        }
        if self.trace_pmpi {
            tools.push(self.trace.clone());
        }
        tools
    }
}

/// The deliberately racy demonstration workload: ranks 1..p each send a
/// *different* payload (value and length scale with the rank) to rank 0,
/// which drains them through an order-sensitive wildcard-receive fold. Any
/// two matchings produce different checksums and different transfer
/// timings, so `--verify` confirms the race; replaying either witness
/// schedule reproduces its checksum exactly.
fn run_race(p: &mut mpisim::Proc, s: &SectionRuntime) -> u64 {
    let world = p.world();
    let me = p.world_rank();
    let n = p.world_size();
    s.scoped(p, &world, "RACE", |p| {
        let world = p.world();
        if me == 0 {
            world.barrier(p);
            let mut acc: u64 = 0;
            for _ in 1..n {
                let m = world.recv::<u64>(p, Src::Any, TagSel::Is(7));
                acc = acc
                    .wrapping_mul(31)
                    .wrapping_add(m.data[0].wrapping_mul(n as u64))
                    .wrapping_add(m.src as u64);
            }
            acc
        } else {
            world.send(p, 0, 7, &vec![me as u64; me]);
            world.barrier(p);
            0
        }
    })
}

/// Execute the selected workload once against `stack`'s tools. With a
/// controller (exploration/replay), the engine is forced to DES so the
/// global wildcard-decision order is deterministic.
fn run_once(
    args: &Args,
    stack: &Stack,
    controller: Option<Arc<ScheduleController>>,
) -> Result<mpisim::RunReport<u64>, mpisim::RunError> {
    let default_machine = match args.workload.as_str() {
        "lulesh" => "knl",
        _ => "nehalem",
    };
    let m = resolve_machine(args, default_machine);
    let mut builder = WorldBuilder::new(args.p).machine(m).seed(args.seed);
    if controller.is_some() {
        builder = builder.engine(mpisim::Engine::Des);
    } else if let Some(engine) = args.engine {
        builder = builder.engine(engine);
    }
    if let Some(ctl) = controller {
        builder = builder.match_controller(ctl as Arc<dyn mpisim::MatchController>);
    }
    for t in stack.world_tools() {
        builder = builder.tool(t);
    }
    match args.workload.as_str() {
        "conv" => {
            let s = stack.sections.clone();
            let cfg = Arc::new(convolution::ConvConfig::paper(args.steps));
            builder.run(move |p| {
                convolution::run_convolution(p, &s, &cfg);
                0
            })
        }
        "lulesh" => {
            let s = lulesh_proxy::size_for(lulesh_proxy::PAPER_TOTAL_ELEMENTS, args.p)
                .unwrap_or_else(|| {
                    eprintln!(
                        "--p must be a perfect cube dividing 110592 (1, 8, 27, 64); got {}",
                        args.p
                    );
                    std::process::exit(2);
                });
            let sr = stack.sections.clone();
            let cfg = Arc::new(lulesh_proxy::LuleshConfig::timing(
                s,
                args.iters,
                args.threads,
            ));
            builder.run(move |p| {
                lulesh_proxy::run_lulesh(p, &sr, &cfg);
                0
            })
        }
        "race" => {
            let s = stack.sections.clone();
            builder.run(move |p| run_race(p, &s))
        }
        other => {
            eprintln!("unknown workload '{other}' (conv|lulesh|race)");
            std::process::exit(2);
        }
    }
}

/// Fold one run's observable artifacts into the fingerprint input the
/// explorer compares: per-rank results, the exact makespan, the section
/// profile, the pvar counters, the wait-state/critical-path analyses and
/// any analyzer diagnostics. Anything omitted here is invisible to the
/// divergence check.
fn artifact_of(stack: &Stack, report: &mpisim::RunReport<u64>) -> String {
    let mut a = format!(
        "results:{:?};makespan_ns:{};",
        report.results, report.makespan.0
    );
    a.push_str(&stack.profiler.snapshot().to_csv());
    if let Some(pvar) = &stack.pvar {
        a.push_str(&pvar.snapshot().to_json());
    }
    if let Some(recorder) = &stack.recorder {
        let log = recorder.freeze();
        a.push_str(&classify(&log).to_json());
        a.push_str(&critpath::extract(&log).to_json());
    }
    if let Some(checker) = &stack.checker {
        for d in checker.diagnostics() {
            a.push_str(&d.to_json());
        }
    }
    a
}

fn main() {
    let args = parse();
    let windowing = args.efficiency || args.timeline.is_some();
    let wants_full = args.metrics
        || args.comm_matrix
        || args.metrics_json.is_some()
        || windowing
        || !args.what_if.is_empty();
    // The event log is the replay/verification input: those flags pin
    // full recording at any p. Everything else is served from the
    // bounded summarizer once p reaches the auto-switch threshold.
    let needs_log = !args.what_if.is_empty() || args.verify || args.replay_schedule.is_some();
    let summary_only = args.p >= SUMMARY_AUTO_RANKS && !needs_log;
    let observing = wants_full && !summary_only;
    let summarizing = args.summary || args.summary_json.is_some() || (wants_full && summary_only);
    if wants_full && summary_only {
        println!(
            "p >= {SUMMARY_AUTO_RANKS}: summary-only recording (bounded streaming sketches; \
             full comm recorder off — pass --what-if or --verify to force full recording)\n"
        );
    } else if args.p >= SUMMARY_AUTO_RANKS && needs_log {
        println!(
            "p >= {SUMMARY_AUTO_RANKS} but full comm recording kept: \
             --what-if/--verify/--replay-schedule require the event log\n"
        );
    }
    let tracing = args.trace.is_some() || args.csv.is_some() || args.flamegraph.is_some();
    let stack = Stack::build(
        args.check,
        observing,
        tracing,
        args.trace.is_some(),
        summarizing,
    );

    // A replayed schedule steers the main run's wildcard matchings; the
    // controller doubles as the witness-fidelity check (divergence means
    // the schedule does not belong to this program/seed/machine).
    let replay = args.replay_schedule.as_ref().map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read schedule '{path}': {e}");
            std::process::exit(2);
        });
        let schedule = Schedule::from_json(&text).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        });
        (
            path.clone(),
            Arc::new(ScheduleController::replaying(schedule)),
        )
    });

    let report = unwrap_run(run_once(
        &args,
        &stack,
        replay.as_ref().map(|(_, ctl)| ctl.clone()),
    ));
    match args.workload.as_str() {
        "conv" => println!(
            "convolution: p={}, {} steps, machine '{}', simulated walltime {:.3} s\n",
            args.p,
            args.steps,
            resolve_machine(&args, "nehalem").name,
            report.makespan_secs()
        ),
        "lulesh" => println!(
            "lulesh: p={}, {} iterations, {} threads, machine '{}', simulated walltime {:.3} s\n",
            args.p,
            args.iters,
            args.threads,
            resolve_machine(&args, "knl").name,
            report.makespan_secs()
        ),
        _ => println!(
            "race: p={}, machine '{}', simulated walltime {:.3} s, wildcard checksum {:#x}\n",
            args.p,
            resolve_machine(&args, "nehalem").name,
            report.makespan_secs(),
            report.results[0]
        ),
    }
    if let Some((path, ctl)) = &replay {
        let replayed = ctl.schedule().decisions.len();
        if ctl.diverged() {
            eprintln!(
                "warning: schedule '{path}' diverged from this program (a forced sender was \
                 not a live candidate) — the replay is deterministic but does not reproduce \
                 the recorded run\n"
            );
        } else {
            println!("replayed schedule '{path}': {replayed} wildcard decision(s) forced\n");
        }
    }

    // The dynamic verifier: re-execute the program under forced wildcard
    // matchings (fresh silent tool stack per run) and upgrade each
    // heuristic race warning to a verdict.
    let verify_report = args.verify.then(|| {
        mpiverify::explore(args.verify_budget, |ctl| {
            let vstack = Stack::build(args.check, true, false, false, false);
            match run_once(&args, &vstack, Some(ctl.clone())) {
                Ok(rep) => RunOutcome {
                    artifact: artifact_of(&vstack, &rep),
                    failure: None,
                },
                Err(e) => RunOutcome {
                    artifact: String::new(),
                    failure: Some(e.to_string()),
                },
            }
        })
    });

    if let Some(checker) = &stack.checker {
        let mut warnings = checker.diagnostics();
        // Verdicts supersede the heuristic warnings they refine: a
        // message-race warning for a receiver the verifier judged is
        // dropped in favor of the verdict line (confirmed races come back
        // below as Error diagnostics).
        if let Some(vreport) = &verify_report {
            let judged: Vec<usize> = vreport.verdicts.iter().map(|v| v.site().0).collect();
            let before = warnings.len();
            warnings.retain(|d| match &d.kind {
                mpisim::DiagnosticKind::MessageRace { receiver, .. } => !judged.contains(receiver),
                _ => true,
            });
            let superseded = before - warnings.len();
            if superseded > 0 {
                println!(
                    "mpicheck: {superseded} message-race warning(s) superseded by verifier verdicts\n"
                );
            }
        }
        if warnings.is_empty() {
            if verify_report.is_none() {
                println!("mpicheck: clean — no diagnostics\n");
            }
        } else {
            println!("{}", mpisim::diag::report(&warnings));
        }
    }

    let profile = stack.profiler.snapshot();
    println!("{}", render(&profile, &ReportOptions::default()));

    // Eq. 6 bound ranking against the run's own aggregate (a proxy for the
    // sequential total when only one scale was run).
    let total: f64 = profile
        .sections()
        .filter(|s| s.key.label != mpi_sections::MPI_MAIN)
        .map(|s| s.total_excl_secs)
        .sum();
    println!("{}", render_bounds(&profile, total, args.p));

    // Communication-aware observability: pvar counters, wait-state
    // classification and the critical-path bound complement the Eq. 6
    // ranking — the former say *why* a section caps speedup, the latter
    // bounds what any p can achieve through the dependency graph.
    let snapshot = stack.pvar.as_ref().map(|pv| pv.snapshot());
    let comm_log = stack.recorder.as_ref().map(|r| r.freeze());
    let run_summary = stack.summary.as_ref().map(|s| s.freeze());
    let analysis = comm_log
        .as_ref()
        .map(|log| (classify(log), critpath::extract(log)));

    // The windowed view: time-resolved POP efficiencies per section, the
    // trend diagnosis on top of them, and the CSV/JSON/counter exports.
    // In summary-only mode the timeline comes from the summarizer's
    // checkpoint rows (cadence-determined windows; --windows and
    // --window-align apply only to full recording).
    let windowing_mode = match &args.window_align {
        Some(label) => Windowing::Aligned(label.clone()),
        None => Windowing::Fixed(args.windows),
    };
    let tl = match (&comm_log, &run_summary) {
        (Some(log), _) => Some(mpi_sections::timeline::build(log, &windowing_mode)),
        (None, Some(rs)) if wants_full || windowing => Some(rs.to_timeline().clone()),
        _ => None,
    };
    let trends = tl
        .as_ref()
        .map(|tl| speedup::trend::detect(tl, &speedup::trend::TrendConfig::default()));
    if args.efficiency {
        let (tl, trends) = (
            tl.as_ref().expect("recorder"),
            trends.as_ref().expect("recorder"),
        );
        println!("{}", mpi_sections::efficiency::render(tl));
        println!("{}", speedup::trend::render(trends));
    }
    if let Some(path) = &args.timeline {
        let tl = tl.as_ref().expect("recorder");
        std::fs::write(path, tl.to_csv()).expect("write timeline csv");
        println!(
            "wrote timeline CSV ({} windows) to {path}",
            tl.windows.len()
        );
    }

    if args.metrics {
        if let Some(snapshot) = &snapshot {
            println!("{}", snapshot.render_metrics());
        }
        if let Some((waits, cp)) = &analysis {
            println!("{}", waits.render());
            println!("{}", cp.render(total, args.p));
        }
    }
    if args.comm_matrix {
        if let Some(snapshot) = &snapshot {
            println!("{}", snapshot.render_matrix(32));
        }
    }
    if let Some(rs) = &run_summary {
        if args.summary || (summary_only && (args.metrics || args.comm_matrix)) {
            println!("{}", rs.render(total));
        }
    }

    // Counterfactual replay: each --what-if spec re-times the recorded
    // trace under its altered model, then the whole analysis stack
    // (bounds, wait states, windowed trends) reruns on the re-timed log.
    let machine_model = resolve_machine(
        &args,
        match args.workload.as_str() {
            "lulesh" => "knl",
            _ => "nehalem",
        },
    );
    let scenarios: Vec<bench::whatif::Scenario> = args
        .what_if
        .iter()
        .map(|raw| {
            let spec = mpi_sections::whatif::parse(raw).expect("validated at parse time");
            let log = comm_log.as_ref().expect("recorder attached");
            bench::whatif::analyze(
                log,
                &machine_model,
                args.seed,
                &spec,
                total,
                args.p,
                &windowing_mode,
            )
            .unwrap_or_else(|e| {
                eprintln!("error: --what-if {raw}: {e}");
                std::process::exit(1);
            })
        })
        .collect();
    if !scenarios.is_empty() {
        println!("{}", bench::whatif::render(&scenarios));
    }

    if let Some(path) = &args.metrics_json {
        let json = if let (Some((waits, cp)), Some(snapshot)) = (&analysis, &snapshot) {
            // Exact makespan and a result fingerprint make the document
            // sensitive to wildcard matching order: replaying each witness
            // of a confirmed race yields observably different metrics JSON.
            format!(
                "{{\"workload\":\"{}\",\"p\":{},\"seed\":{},\"config\":{{\"machine\":{}}},\"makespan_ns\":{},\"results_fingerprint\":\"{:016x}\",\"pvar\":{},\"waitstate\":{},\"critical_path\":{},\"timeline\":{},\"trends\":{},\"whatif\":{}}}\n",
                args.workload,
                args.p,
                args.seed,
                bench::whatif::machine_config_json(&machine_model),
                report.makespan.0,
                mpiverify::fingerprint(&format!("{:?}", report.results)),
                snapshot.to_json(),
                waits.to_json(),
                cp.to_json(),
                tl.as_ref().expect("recorder").to_json(),
                speedup::trend::to_json(trends.as_ref().expect("recorder")),
                bench::whatif::to_json(&scenarios),
            )
        } else {
            // Summary-only mode: the per-event analyses are intentionally
            // absent; the summary block plus the checkpoint-derived
            // timeline and trends replace them.
            let rs = run_summary.as_ref().expect("summarizer attached");
            format!(
                "{{\"workload\":\"{}\",\"p\":{},\"seed\":{},\"config\":{{\"machine\":{}}},\"makespan_ns\":{},\"results_fingerprint\":\"{:016x}\",\"summary\":{},\"timeline\":{},\"trends\":{}}}\n",
                args.workload,
                args.p,
                args.seed,
                bench::whatif::machine_config_json(&machine_model),
                report.makespan.0,
                mpiverify::fingerprint(&format!("{:?}", report.results)),
                rs.to_json(),
                tl.as_ref().expect("summarizer").to_json(),
                speedup::trend::to_json(trends.as_ref().expect("summarizer")),
            )
        };
        std::fs::write(path, json).expect("write metrics json");
        println!("wrote metrics JSON to {path}");
    }

    if let Some(path) = &args.summary_json {
        let rs = run_summary.as_ref().expect("summarizer attached");
        let json = format!(
            "{{\"workload\":\"{}\",\"p\":{},\"seed\":{},\"config\":{{\"machine\":{}}},\"summary\":{}}}\n",
            args.workload,
            args.p,
            args.seed,
            bench::whatif::machine_config_json(&machine_model),
            rs.to_json(),
        );
        std::fs::write(path, json).expect("write summary json");
        println!(
            "wrote summary JSON to {path} (summarizer state {} bytes)",
            rs.state_bytes
        );
    }

    if args.compare_seq && args.p > 1 {
        // Re-run the same workload sequentially and line the two profiles
        // up (the paper's actual workflow: a sequential reference run).
        let base_sections = SectionRuntime::new(VerifyMode::Off);
        let base_profiler = SectionProfiler::new();
        base_sections.attach(base_profiler.clone());
        match args.workload.as_str() {
            "conv" => {
                let m = resolve_machine(&args, "nehalem");
                let s = base_sections.clone();
                let cfg = Arc::new(convolution::ConvConfig::paper(args.steps));
                WorldBuilder::new(1)
                    .machine(m)
                    .seed(args.seed)
                    .tool(base_sections.clone())
                    .run(move |p| {
                        convolution::run_convolution(p, &s, &cfg);
                    })
                    .expect("baseline run failed");
            }
            "lulesh" => {
                let m = resolve_machine(&args, "knl");
                // Same *global* problem sequentially: s_global = s * cbrt(p).
                let s_local = lulesh_proxy::size_for(lulesh_proxy::PAPER_TOTAL_ELEMENTS, args.p)
                    .expect("validated above");
                let side = (args.p as f64).cbrt().round() as usize;
                let sr = base_sections.clone();
                let cfg = Arc::new(lulesh_proxy::LuleshConfig::timing(
                    s_local * side,
                    args.iters,
                    args.threads,
                ));
                WorldBuilder::new(1)
                    .machine(m)
                    .seed(args.seed)
                    .tool(base_sections.clone())
                    .run(move |p| {
                        lulesh_proxy::run_lulesh(p, &sr, &cfg);
                    })
                    .expect("baseline run failed");
            }
            _ => {
                let m = resolve_machine(&args, "nehalem");
                let s = base_sections.clone();
                WorldBuilder::new(1)
                    .machine(m)
                    .seed(args.seed)
                    .tool(base_sections.clone())
                    .run(move |p| {
                        run_race(p, &s);
                    })
                    .expect("baseline run failed");
            }
        }
        let comparison =
            mpi_sections::ProfileComparison::between(&base_profiler.snapshot(), &profile, args.p);
        println!("{}", comparison.render());
        if let Some(binding) = comparison.binding() {
            println!(
                "binding constraint: '{}' caps the program at S <= {:.2}\n",
                binding.label, binding.program_bound
            );
        }
        let overheads = comparison.pure_overheads();
        if !overheads.is_empty() {
            let names: Vec<&str> = overheads.iter().map(|s| s.label.as_str()).collect();
            println!(
                "pure overheads (zero sequential cost): {}\n",
                names.join(", ")
            );
        }
    }

    if let Some(path) = &args.trace {
        let (json, dropped_ranks) = stack
            .trace
            .to_chrome_trace_capped(args.trace_max_ranks, tl.as_ref());
        std::fs::write(path, json).expect("write trace");
        println!("wrote Chrome trace ({} spans) to {path}", stack.trace.len());
        if dropped_ranks > 0 {
            println!(
                "trace capped at {} rank lanes: {} rank(s) dropped (raise with --trace-max-ranks)",
                args.trace_max_ranks, dropped_ranks
            );
        }
    }
    if let Some(path) = &args.csv {
        std::fs::write(path, stack.trace.to_csv()).expect("write csv");
        println!("wrote span CSV to {path}");
    }
    if let Some(path) = &args.profile_csv {
        std::fs::write(path, profile.to_csv()).expect("write profile csv");
        println!("wrote profile CSV to {path}");
    }
    if let Some(path) = &args.flamegraph {
        std::fs::write(path, stack.trace.to_folded()).expect("write flamegraph");
        println!("wrote folded flamegraph stacks to {path}");
    }

    // Verifier output last, after every artifact is on disk, so CI can
    // inspect the files even when a confirmed race makes us exit 1.
    if let Some(vreport) = &verify_report {
        println!("{}", vreport.render_text());
        if let Some(path) = &args.verify_json {
            let mut json = vreport.to_json();
            json.push('\n');
            std::fs::write(path, json).expect("write verify json");
            println!("wrote verify report JSON to {path}");
        }
        if let Some(prefix) = &args.verify_witnesses {
            if let Some((a, b)) = vreport.first_witness_pair() {
                std::fs::write(format!("{prefix}.a.json"), a.to_json()).expect("write witness a");
                std::fs::write(format!("{prefix}.b.json"), b.to_json()).expect("write witness b");
                println!("wrote witness schedules to {prefix}.a.json / {prefix}.b.json");
            } else {
                println!("no confirmed race: no witness schedules to write");
            }
        }
        let diags = vreport.diagnostics();
        if !diags.is_empty() {
            eprintln!("{}", mpisim::diag::report(&diags));
            std::process::exit(1);
        }
    }
}
