//! Regenerate every table and figure of the paper's evaluation section.
//!
//! ```text
//! cargo run --release -p bench --bin figures -- <target> [options]
//!
//! targets:
//!   fig5a  fig5b  fig5c  fig5d  fig6     convolution benchmark (§5.1)
//!   fig7   fig8   fig9   fig10           LULESH proxy (§5.2)
//!   ablation-jitter  ablation-network    DESIGN.md ablations (D2, D1)
//!   ablation-adaptive ablation-balance   §8 / LULESH-`-b` extensions
//!   halo-ratio  weak-scaling             §3 / Gustafson-regime extensions
//!   amdahl-vs-partial  isoefficiency     §2 / Kumar-[1] analyses
//!   decomp-2d  forecast                  decomposition & §7 porting studies
//!   all                                  everything above
//!
//! options:
//!   --steps N   convolution time steps        (default 1000, as the paper)
//!   --reps N    convolution repetitions       (default 3; paper used 20)
//!   --iters N   LULESH iterations for fig8/9  (default 500 = 1/5 scale;
//!               fig10 always runs the full 2500 for absolute comparison)
//!   --out DIR   output directory for CSVs     (default results/)
//! ```
//!
//! Every target prints an aligned table and writes a CSV with the same
//! rows. Where the paper states a number, the table repeats it next to the
//! measured value (see EXPERIMENTS.md for the full comparison).

use bench::{
    conv_profile, f2, measure_convolution, measure_lulesh, render_table, seq_total, write_csv,
    ConvRun, CONV_PS,
};
use lulesh_proxy::PAPER_ITERATIONS;
use std::path::PathBuf;

struct Options {
    steps: usize,
    reps: usize,
    iters: usize,
    out: PathBuf,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            steps: 1000,
            reps: 3,
            iters: PAPER_ITERATIONS / 5,
            out: PathBuf::from("results"),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut targets: Vec<String> = Vec::new();
    let mut opts = Options::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--steps" => {
                opts.steps = args[i + 1].parse().expect("--steps N");
                i += 2;
            }
            "--reps" => {
                opts.reps = args[i + 1].parse().expect("--reps N");
                i += 2;
            }
            "--iters" => {
                opts.iters = args[i + 1].parse().expect("--iters N");
                i += 2;
            }
            "--out" => {
                opts.out = PathBuf::from(&args[i + 1]);
                i += 2;
            }
            t => {
                targets.push(t.to_string());
                i += 1;
            }
        }
    }
    if targets.is_empty() {
        eprintln!(
            "usage: figures <target>... [--steps N] [--reps N] [--iters N] [--out DIR]\n\
             targets: fig5a fig5b fig5c fig5d fig6 fig7 fig8 fig9 fig10\n\
                      ablation-jitter ablation-network ablation-adaptive\n\
                      ablation-balance halo-ratio weak-scaling\n\
                      amdahl-vs-partial isoefficiency decomp-2d forecast all"
        );
        std::process::exit(2);
    }
    if targets.iter().any(|t| t == "all") {
        targets = [
            "fig5a",
            "fig5b",
            "fig5c",
            "fig5d",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "ablation-jitter",
            "ablation-network",
            "ablation-adaptive",
            "ablation-balance",
            "halo-ratio",
            "weak-scaling",
            "amdahl-vs-partial",
            "isoefficiency",
            "decomp-2d",
            "forecast",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    let mut conv_cache: Option<Vec<ConvRun>> = None;
    for target in &targets {
        match target.as_str() {
            "fig5a" => fig5a(&opts, conv_sweep(&opts, &mut conv_cache)),
            "fig5b" => fig5b(&opts, conv_sweep(&opts, &mut conv_cache)),
            "fig5c" => fig5c(&opts, conv_sweep(&opts, &mut conv_cache)),
            "fig5d" => fig5d(&opts, conv_sweep(&opts, &mut conv_cache)),
            "fig6" => fig6(&opts, conv_sweep(&opts, &mut conv_cache)),
            "fig7" => fig7(&opts),
            "fig8" => fig8(&opts),
            "fig9" => fig9(&opts),
            "fig10" => fig10(&opts),
            "ablation-jitter" => ablation_jitter(&opts),
            "ablation-network" => ablation_network(&opts),
            "ablation-adaptive" => ablation_adaptive(&opts),
            "ablation-balance" => ablation_balance(&opts),
            "halo-ratio" => halo_ratio(&opts),
            "weak-scaling" => weak_scaling(&opts),
            "amdahl-vs-partial" => amdahl_vs_partial(&opts, conv_sweep(&opts, &mut conv_cache)),
            "isoefficiency" => isoefficiency(&opts, conv_sweep(&opts, &mut conv_cache)),
            "decomp-2d" => decomp_2d(&opts),
            "forecast" => forecast(&opts),
            other => {
                eprintln!("unknown target: {other}");
                std::process::exit(2);
            }
        }
    }
}

fn conv_sweep<'a>(opts: &Options, cache: &'a mut Option<Vec<ConvRun>>) -> &'a [ConvRun] {
    if cache.is_none() {
        let machine = machine::presets::nehalem_cluster();
        let seeds: Vec<u64> = (0..opts.reps as u64).collect();
        eprintln!(
            "[conv] sweeping p in {CONV_PS:?} ({} steps x {} reps)...",
            opts.steps, opts.reps
        );
        let runs = CONV_PS
            .iter()
            .map(|&p| {
                let run = measure_convolution(p, opts.steps, &machine, &seeds);
                eprintln!("[conv] p={p:3} wall={:.2}s", run.wall);
                run
            })
            .collect();
        *cache = Some(runs);
    }
    cache.as_ref().unwrap()
}

fn fig5a(opts: &Options, runs: &[ConvRun]) {
    let header: Vec<&str> = std::iter::once("p")
        .chain(convolution::SECTIONS.iter().copied())
        .collect();
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            std::iter::once(r.p.to_string())
                .chain(convolution::SECTIONS.iter().map(|l| f2(r.percent(l))))
                .collect()
        })
        .collect();
    emit(
        opts,
        "fig5a",
        "Fig. 5(a) — % of execution time per MPI Section",
        &header,
        &rows,
    );
}

fn fig5b(opts: &Options, runs: &[ConvRun]) {
    let header: Vec<&str> = std::iter::once("p")
        .chain(convolution::SECTIONS.iter().copied())
        .collect();
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            std::iter::once(r.p.to_string())
                .chain(
                    convolution::SECTIONS
                        .iter()
                        .map(|l| f2(r.section_total.get(*l).copied().unwrap_or(0.0))),
                )
                .collect()
        })
        .collect();
    emit(
        opts,
        "fig5b",
        "Fig. 5(b) — total time per MPI Section (s, summed over ranks)",
        &header,
        &rows,
    );
}

fn fig5c(opts: &Options, runs: &[ConvRun]) {
    let header: Vec<&str> = std::iter::once("p")
        .chain(convolution::SECTIONS.iter().copied())
        .collect();
    let rows: Vec<Vec<String>> = runs
        .iter()
        .filter(|r| r.p > 1) // the paper omits the sequential case here
        .map(|r| {
            std::iter::once(r.p.to_string())
                .chain(convolution::SECTIONS.iter().map(|l| f2(r.avg_per_rank(l))))
                .collect()
        })
        .collect();
    emit(
        opts,
        "fig5c",
        "Fig. 5(c) — average time per process per MPI Section (s)",
        &header,
        &rows,
    );
}

fn fig5d(opts: &Options, runs: &[ConvRun]) {
    let seq = seq_total(runs);
    let header = vec!["p", "walltime_s", "speedup", "B_halo"];
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            let s = runs[0].wall / r.wall;
            let halo = r.section_total.get("HALO").copied().unwrap_or(0.0);
            let bound = speedup::partial_bound(seq, halo, r.p);
            vec![r.p.to_string(), f2(r.wall), f2(s), f2(bound)]
        })
        .collect();
    emit(
        opts,
        "fig5d",
        "Fig. 5(d) — measured speedup and predicted partial speedup bounds (HALO)",
        &header,
        &rows,
    );
    // Eq. 6 validity at each scale: S(p) <= B_halo(p) must always hold
    // (the section's per-process time is part of the walltime).
    let same_scale_ok = runs.iter().all(|r| {
        let s = runs[0].wall / r.wall;
        let halo = r.section_total.get("HALO").copied().unwrap_or(0.0);
        s <= speedup::partial_bound(seq, halo, r.p) + 1e-9
    });
    // The Fig. 6 transposition argument: bounds measured at p = 64 remain
    // valid for the speedups observed across the paper's plotted range
    // (p <= 144).
    let b64 = runs
        .iter()
        .find(|r| r.p == 64)
        .map(|r| speedup::partial_bound(seq, r.section_total["HALO"], 64));
    let transposed_ok = match b64 {
        None => true,
        Some(b) => runs
            .iter()
            .filter(|r| r.p <= 144)
            .all(|r| runs[0].wall / r.wall <= b + 1e-9),
    };
    println!(
        "  Eq.6 validity at every scale: {}",
        if same_scale_ok { "ok" } else { "VIOLATED" }
    );
    println!(
        "  B(64) transposition over p <= 144 (paper's plotted range): {}\n",
        if transposed_ok { "ok" } else { "VIOLATED" }
    );
}

fn fig6(opts: &Options, runs: &[ConvRun]) {
    let rows = bench::fig6_rows(runs);
    println!(
        "  (sequential total: measured {:.2} s, paper 5589.84 s)",
        seq_total(runs)
    );
    emit(
        opts,
        "fig6",
        "Fig. 6 — inferred partial speedup bounds from the HALO section",
        &bench::FIG6_HEADER,
        &rows,
    );
}

fn fig7(opts: &Options) {
    let header = vec!["mpi_processes", "lulesh_s", "elements"];
    let rows: Vec<Vec<String>> = lulesh_proxy::table7()
        .into_iter()
        .map(|(p, s, total)| vec![p.to_string(), s.to_string(), total.to_string()])
        .collect();
    emit(
        opts,
        "fig7",
        "Fig. 7 — LULESH strong-scaling configurations (constant 110 592 elements)",
        &header,
        &rows,
    );
}

fn lulesh_sweep(
    opts: &Options,
    name: &str,
    title: &str,
    machine: &machine::MachineModel,
    ps: &[usize],
    threads: &[usize],
    iters: usize,
) {
    let header = vec![
        "p",
        "threads",
        "walltime_s",
        "lagrange_nodal_s",
        "lagrange_elements_s",
    ];
    let mut rows = Vec::new();
    for &p in ps {
        let s = lulesh_proxy::size_for(lulesh_proxy::PAPER_TOTAL_ELEMENTS, p)
            .expect("Fig. 7 process counts");
        for &t in threads {
            let run = measure_lulesh(p, s, iters, t, machine, 5);
            eprintln!(
                "[{name}] p={p:2} t={t:3} wall={:.2}s nodal={:.2}s elems={:.2}s",
                run.walltime, run.nodal, run.elements
            );
            rows.push(vec![
                p.to_string(),
                t.to_string(),
                f2(run.walltime),
                f2(run.nodal),
                f2(run.elements),
            ]);
        }
    }
    emit(opts, name, title, &header, &rows);
}

fn fig8(opts: &Options) {
    lulesh_sweep(
        opts,
        "fig8",
        "Fig. 8 — LULESH MPI sections on dual Broadwell (avg time per process, s)",
        &machine::presets::dual_broadwell(),
        &[1, 8, 27],
        &[1, 2, 4, 8, 16, 32, 64],
        opts.iters,
    );
}

fn fig9(opts: &Options) {
    lulesh_sweep(
        opts,
        "fig9",
        "Fig. 9 — LULESH MPI sections on Intel KNL (avg time per process, s)",
        &machine::presets::knl(),
        &[1, 8, 27, 64],
        &[1, 2, 4, 8, 16, 32, 64, 128, 256],
        opts.iters,
    );
}

fn fig10(opts: &Options) {
    // Full paper scale: the absolute numbers of §5.2 are compared here.
    let machine = machine::presets::knl();
    let threads = [
        1usize, 2, 4, 8, 16, 20, 24, 28, 32, 48, 64, 96, 128, 192, 256,
    ];
    let mut rows = Vec::new();
    let mut series = Vec::new();
    let mut at24 = None;
    let mut seq_wall = 0.0;
    for &t in &threads {
        let run = measure_lulesh(1, 48, PAPER_ITERATIONS, t, &machine, 5);
        if t == 1 {
            seq_wall = run.walltime;
        }
        if t == 24 {
            at24 = Some(run.clone());
        }
        eprintln!(
            "[fig10] t={t:3} wall={:.2}s nodal={:.2}s elems={:.2}s",
            run.walltime, run.nodal, run.elements
        );
        series.push((t, run.walltime));
        rows.push(vec![
            t.to_string(),
            f2(run.walltime),
            f2(run.nodal),
            f2(run.elements),
            f2(seq_wall / run.walltime),
        ]);
    }
    let header = vec![
        "threads",
        "walltime_s",
        "lagrange_nodal_s",
        "lagrange_elements_s",
        "speedup",
    ];
    emit(
        opts,
        "fig10",
        "Fig. 10 — LULESH walltime and speedup, pure OpenMP on KNL (s = 48)",
        &header,
        &rows,
    );
    // The §5.2 analysis: inflexion point and Eq. 6 bounds.
    let scaling = speedup::ScalingSeries::new(series);
    let inflexion = scaling.inflexion(0.02).expect("non-empty series");
    if let Some(run) = at24 {
        let combined = speedup::partial_bound_per_process(seq_wall, run.nodal + run.elements);
        let elements_only = speedup::partial_bound_per_process(seq_wall, run.elements);
        let actual = seq_wall / run.walltime;
        println!("  sequential walltime:          measured {seq_wall:.2} s   (paper 882.48 s)");
        println!(
            "  inflexion point:              measured t={}      (paper: 24 threads)",
            inflexion.p
        );
        println!("  Eq.6 bound from both phases:  measured {combined:.2}x    (paper 8.16x)");
        println!("  actual speedup at 24 threads: measured {actual:.2}x    (paper 8.08x)");
        println!(
            "  LagrangeElements-only bound:  measured {elements_only:.2}x    (paper 13.72x)\n"
        );
    }
}

fn ablation_jitter(opts: &Options) {
    // D2: with noise disabled, the HALO section flattens — demonstrating
    // that jitter accumulation is what makes it grow (the Fig. 5b finding).
    let mut noiseless = machine::presets::nehalem_cluster();
    noiseless.noise = machine::NoiseModel::NONE;
    let noisy = machine::presets::nehalem_cluster();
    let header = vec!["p", "halo_noisy_s", "halo_noiseless_s", "ratio"];
    let mut rows = Vec::new();
    for p in [8usize, 32, 64, 144] {
        let (with, _) = conv_profile(p, opts.steps / 4, &noisy, 1);
        let (without, _) = conv_profile(p, opts.steps / 4, &noiseless, 1);
        let h_with = with
            .get_world("HALO")
            .map(|s| s.total_own_secs)
            .unwrap_or(0.0);
        let h_without = without
            .get_world("HALO")
            .map(|s| s.total_own_secs)
            .unwrap_or(0.0);
        rows.push(vec![
            p.to_string(),
            f2(h_with),
            f2(h_without),
            f2(h_with / h_without.max(1e-12)),
        ]);
    }
    emit(
        opts,
        "ablation_jitter",
        "Ablation D2 — HALO total time with and without compute jitter",
        &header,
        &rows,
    );
}

fn ablation_network(opts: &Options) {
    // D1: with a free network, communication sections vanish and the
    // speedup follows the compute partition — isolating the network
    // model's contribution.
    let mut free = machine::presets::nehalem_cluster();
    free.network = machine::NetworkModel::FREE;
    free.noise = machine::NoiseModel::NONE;
    let real = machine::presets::nehalem_cluster();
    let header = vec![
        "p",
        "wall_real_s",
        "wall_free_s",
        "halo_real_s",
        "halo_free_s",
    ];
    let mut rows = Vec::new();
    for p in [8usize, 64, 144] {
        let (pr, wall_r) = conv_profile(p, opts.steps / 4, &real, 1);
        let (pf, wall_f) = conv_profile(p, opts.steps / 4, &free, 1);
        let halo = |prof: &mpi_sections::Profile| {
            prof.get_world("HALO")
                .map(|s| s.total_own_secs)
                .unwrap_or(0.0)
        };
        rows.push(vec![
            p.to_string(),
            f2(wall_r),
            f2(wall_f),
            f2(halo(&pr)),
            f2(halo(&pf)),
        ]);
    }
    emit(
        opts,
        "ablation_network",
        "Ablation D1 — walltime and HALO with the real vs free network model",
        &header,
        &rows,
    );
}

/// Extension experiments beyond the paper's figures (see DESIGN.md).
fn halo_ratio(opts: &Options) {
    // §3's argument quantified: ghost/owned ratios for slab, pencil and
    // block decompositions of a 96³ domain (the LULESH-scale mesh).
    let rows_data = convolution::halo_table(96, &[8, 64, 512], 3);
    let header = vec!["p", "decomp", "block", "owned", "ghosts", "ratio"];
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.p.to_string(),
                format!("{}D", r.ndims),
                r.extents
                    .iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<_>>()
                    .join("x"),
                r.owned.to_string(),
                r.ghosts.to_string(),
                format!("{:.4}", r.ratio),
            ]
        })
        .collect();
    emit(
        opts,
        "halo_ratio",
        "§3 analysis — ghost/owned cell ratio by decomposition dimensionality",
        &header,
        &rows,
    );
}

fn weak_scaling(opts: &Options) {
    // Weak scaling of the convolution: per-rank image slice held constant
    // (468 rows, 1/8 of the paper's image) while the global image grows
    // with p. Gustafson territory: the scaled speedup should track p.
    let machine = machine::presets::nehalem_cluster();
    let steps = opts.steps / 4;
    let walls: Vec<(usize, f64)> = bench::WEAK_PS
        .iter()
        .map(|&p| {
            let cell = bench::weak_conv_cell(p, bench::WEAK_ROWS_PER_RANK, steps, &machine, 31);
            eprintln!("[weak] p={p:3} wall={:.2}s", cell.wall_secs);
            (p, cell.wall_secs)
        })
        .collect();
    let rows = bench::weak_scaling_rows(bench::WEAK_ROWS_PER_RANK, &walls);
    emit(
        opts,
        "weak_scaling",
        "Weak scaling — constant 468 rows per rank (Gustafson–Barsis regime)",
        &bench::WEAK_HEADER,
        &rows,
    );
}

fn amdahl_vs_partial(opts: &Options, runs: &[ConvRun]) {
    // §2's practicality argument: fit Amdahl's serial fraction on the
    // small scales, check its predictions at large scales, and contrast
    // with the section-level bound that directly names the culprit.
    let seq = seq_total(runs);
    let speedups: Vec<(usize, f64)> = runs.iter().map(|r| (r.p, runs[0].wall / r.wall)).collect();
    let train: Vec<(usize, f64)> = speedups.iter().cloned().filter(|&(p, _)| p <= 64).collect();
    let fs = speedup::fit_amdahl_serial_fraction(&train).unwrap_or(0.0);
    let header = vec!["p", "measured_S", "amdahl_fit_S", "rel_err_%", "B_halo"];
    let rows: Vec<Vec<String>> = speedups
        .iter()
        .map(|&(p, s)| {
            let predicted = speedup::laws::amdahl::bound(fs, p);
            let err = if s > 0.0 {
                100.0 * (predicted - s) / s
            } else {
                0.0
            };
            let halo = runs
                .iter()
                .find(|r| r.p == p)
                .and_then(|r| r.section_total.get("HALO"))
                .copied()
                .unwrap_or(0.0);
            vec![
                p.to_string(),
                f2(s),
                f2(predicted),
                f2(err),
                f2(speedup::partial_bound(seq, halo, p)),
            ]
        })
        .collect();
    println!(
        "  fitted Amdahl serial fraction on p <= 64: fs = {fs:.5} \
         (an aggregate number naming no code region)"
    );
    emit(
        opts,
        "amdahl_vs_partial",
        "§2 comparison — fitted Amdahl predictions vs per-section partial bounds",
        &header,
        &rows,
    );
}

fn ablation_adaptive(opts: &Options) {
    // §8 future work demonstrated: two repeated sections on the KNL — one
    // scalable, one past its inflexion at full thread count. Fixed teams
    // waste the non-scalable section's time; the adaptive controller
    // converges per-section.
    let machine = machine::presets::knl();
    let reps = (opts.iters / 2).max(100);
    let run = |mode: &'static str| -> (f64, usize, usize) {
        mpisim::WorldBuilder::new(1)
            .machine(machine.clone())
            .seed(5)
            .run(move |p| {
                use machine::Work;
                let big = 110_592usize;
                let small = 2_048usize;
                let w = Work::new(500.0, 48.0);
                match mode {
                    "fixed-max" => {
                        let team = shmem::Team::new(128);
                        for _ in 0..reps {
                            team.for_cost_uniform(p, big, w);
                            team.for_cost_uniform(p, small, w);
                        }
                        (p.now().as_secs_f64(), 128, 128)
                    }
                    _ => {
                        let mut team = shmem::AdaptiveTeam::new(128);
                        for _ in 0..reps {
                            team.for_cost_uniform(p, "big", big, w);
                            team.for_cost_uniform(p, "small", small, w);
                        }
                        (
                            p.now().as_secs_f64(),
                            team.threads_for("big"),
                            team.threads_for("small"),
                        )
                    }
                }
            })
            .expect("adaptive run")
            .results
            .remove(0)
    };
    let (fixed_wall, _, _) = run("fixed-max");
    let (adaptive_wall, big_t, small_t) = run("adaptive");
    let header = vec!["policy", "wall_s", "threads_big", "threads_small"];
    let rows = vec![
        vec![
            "fixed-128".into(),
            f2(fixed_wall),
            "128".into(),
            "128".into(),
        ],
        vec![
            "adaptive".into(),
            f2(adaptive_wall),
            big_t.to_string(),
            small_t.to_string(),
        ],
    ];
    emit(
        opts,
        "ablation_adaptive",
        "§8 future work — dynamically restraining parallelism per section (KNL)",
        &header,
        &rows,
    );
}

fn ablation_balance(opts: &Options) {
    // The material-cost gradient (real LULESH's `-b` regions): EOS cost
    // ramps along the global x axis, skewing ranks. The §8 load-balance
    // interface quantifies the skew; a dynamic schedule repairs the
    // intra-rank share of it.
    let machine = machine::presets::knl();
    let iters = (opts.iters / 5).max(20);
    let run = |gradient: Option<f64>, schedule: shmem::Schedule| {
        let sections = mpi_sections::SectionRuntime::new(mpi_sections::VerifyMode::Off);
        let profiler = mpi_sections::SectionProfiler::new();
        sections.attach(profiler.clone());
        let s = sections.clone();
        let mut cfg = lulesh_proxy::LuleshConfig::timing(12, iters, 4);
        cfg.schedule = schedule;
        cfg.cost_gradient = gradient.map(|m| lulesh_proxy::CostGradient { max_multiplier: m });
        let cfg = std::sync::Arc::new(cfg);
        mpisim::WorldBuilder::new(64)
            .machine(machine.clone())
            .seed(13)
            .tool(sections.clone())
            .run(move |p| {
                lulesh_proxy::run_lulesh(p, &s, &cfg);
            })
            .expect("balance run");
        profiler.snapshot()
    };
    let header = vec![
        "gradient",
        "schedule",
        "eos_total_s",
        "imb_factor",
        "pct_imbalance",
        "gini",
    ];
    let mut rows = Vec::new();
    for (gradient, label) in [(None, "1x"), (Some(4.0), "4x")] {
        for (schedule, sname) in [
            (shmem::Schedule::Static, "static"),
            (shmem::Schedule::Dynamic(64), "dynamic"),
        ] {
            let profile = run(gradient, schedule);
            let eos = profile
                .get_world("ApplyMaterialPropertiesForElems")
                .expect("profiled");
            let balance = mpi_sections::BalanceReport::for_section(eos).expect("ranks");
            rows.push(vec![
                label.to_string(),
                sname.to_string(),
                f2(eos.total_own_secs),
                format!("{:.3}", balance.imbalance_factor),
                format!("{:.1}%", balance.percent_imbalance * 100.0),
                format!("{:.3}", balance.gini),
            ]);
        }
    }
    emit(
        opts,
        "ablation_balance",
        "Extension — material-cost gradient: rank imbalance metrics by schedule (p=64, KNL)",
        &header,
        &rows,
    );
}

fn isoefficiency(opts: &Options, runs: &[ConvRun]) {
    // Kumar et al. (the paper's [1]) applied to the measured sweep: fit
    // the total-overhead power law and report the work growth needed to
    // hold 50% and 80% efficiency.
    let seq_wall = runs[0].wall;
    let points: Vec<(usize, f64)> = runs
        .iter()
        .filter(|r| r.p > 1)
        .map(|r| (r.p, speedup::total_overhead(seq_wall, r.wall, r.p)))
        .collect();
    let fitted = speedup::fit_overhead_power_law(&points);
    let header = vec![
        "p",
        "overhead_s",
        "efficiency",
        "W_for_E50_s",
        "W_for_E80_s",
    ];
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            let to = speedup::total_overhead(seq_wall, r.wall, r.p);
            vec![
                r.p.to_string(),
                f2(to),
                format!("{:.3}", speedup::efficiency(seq_wall, r.wall, r.p)),
                f2(speedup::required_work(0.5, to)),
                f2(speedup::required_work(0.8, to)),
            ]
        })
        .collect();
    if let Some((a, b)) = fitted {
        println!(
            "  fitted total overhead: T_o(p) ~ {a:.3} * p^{b:.3} \
             (b > 1 => the problem must grow super-linearly to hold efficiency)"
        );
    }
    emit(
        opts,
        "isoefficiency",
        "Extension — isoefficiency analysis of the convolution benchmark",
        &header,
        &rows,
    );
}

fn decomp_2d(opts: &Options) {
    // 1-D vs 2-D decomposition of the paper's image at scale. The 2-D
    // variant moves far less halo *data* per rank — but it couples each
    // rank to 8 neighbours instead of 2, so under the calibrated noise
    // model (where HALO time is wait-dominated, the Fig. 5b finding) the
    // textbook expectation inverts. Both regimes are shown: the noisy
    // machine and a noise-free one where bandwidth dominates.
    let steps = opts.steps / 4;
    let header = vec![
        "p",
        "decomp",
        "noise",
        "wall_s",
        "halo_total_s",
        "halo_per_rank_s",
    ];
    let mut rows = Vec::new();
    for noisy in [true, false] {
        let mut machine = machine::presets::nehalem_cluster();
        if !noisy {
            machine.noise = machine::NoiseModel::NONE;
        }
        for p in [16usize, 64, 144] {
            for mode in ["1D", "2D"] {
                let sections = mpi_sections::SectionRuntime::new(mpi_sections::VerifyMode::Off);
                let profiler = mpi_sections::SectionProfiler::new();
                sections.attach(profiler.clone());
                let s = sections.clone();
                let cfg = std::sync::Arc::new(convolution::ConvConfig::paper(steps));
                let report = mpisim::WorldBuilder::new(p)
                    .machine(machine.clone())
                    .seed(23)
                    .tool(sections.clone())
                    .run(move |pr| {
                        if mode == "1D" {
                            convolution::run_convolution(pr, &s, &cfg);
                        } else {
                            convolution::run_convolution_2d(pr, &s, &cfg);
                        }
                    })
                    .expect("decomp run");
                let profile = profiler.snapshot();
                let halo = profile
                    .get_world("HALO")
                    .map(|st| st.total_own_secs)
                    .unwrap_or(0.0);
                eprintln!(
                    "[decomp2d] p={p:3} {mode} noise={noisy} wall={:.2}s",
                    report.makespan_secs()
                );
                rows.push(vec![
                    p.to_string(),
                    mode.to_string(),
                    if noisy { "on" } else { "off" }.to_string(),
                    f2(report.makespan_secs()),
                    f2(halo),
                    f2(halo / p as f64),
                ]);
            }
        }
    }
    emit(
        opts,
        "decomp_2d",
        "Extension — 1-D vs 2-D decomposition of the convolution benchmark",
        &header,
        &rows,
    );
}

fn forecast(opts: &Options) {
    // The §1/§7 motivation as a runnable experiment: take the unchanged
    // LULESH proxy to a hypothetical next-generation many-core node and
    // let a ScalingStudy report which sections will cap the port, before
    // anyone buys the machine.
    let machine = machine::presets::future_manycore();
    println!("  target: {}", machine.describe());
    let iters = (opts.iters / 5).max(50);
    let threads = [1usize, 4, 16, 64, 128, 256, 512];
    let measurements: Vec<(usize, mpi_sections::Profile)> = threads
        .iter()
        .map(|&t| {
            let profile = bench::lulesh_profile(1, 48, iters, t, &machine, 19);
            eprintln!(
                "[forecast] t={t:3} timeloop={:.2}s",
                profile.get_world("timeloop").unwrap().avg_per_rank_secs()
            );
            (t, profile)
        })
        .collect();
    let study = speedup::ScalingStudy::new(&measurements);
    println!("{}", study.render());

    let header = vec!["threads", "walltime_s", "speedup"];
    let rows: Vec<Vec<String>> = study
        .speedups()
        .into_iter()
        .zip(study.walltime.points())
        .map(|((t, s), pt)| vec![t.to_string(), f2(pt.secs), f2(s)])
        .collect();
    let saturated: Vec<&str> = study
        .saturated_sections()
        .iter()
        .map(|s| s.label.as_str())
        .collect();
    println!(
        "  sections already past their inflexion on this machine: {}\n",
        if saturated.is_empty() {
            "none".to_string()
        } else {
            saturated.join(", ")
        }
    );
    emit(
        opts,
        "forecast",
        "§7 forecast — LULESH proxy on a hypothetical future many-core node (p=1)",
        &header,
        &rows,
    );
}

fn emit(opts: &Options, name: &str, title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("== {title} ==");
    print!("{}", render_table(header, rows));
    match write_csv(&opts.out, name, header, rows) {
        Ok(path) => println!("  -> {}\n", path.display()),
        Err(e) => eprintln!("  (csv write failed: {e})\n"),
    }
}
