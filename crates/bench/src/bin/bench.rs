//! Host-side performance benchmark: measures what the *tooling itself*
//! costs (the paper's §5 concern — "the instrumentation overhead has to
//! remain negligible") and how fast the simulator churns through the two
//! workloads. Writes `BENCH_profiler.json` at the repository root.
//!
//! ```text
//! cargo run --release -p bench --bin bench
//! ```
//!
//! All numbers are host wall-clock (not virtual time): section enter/exit
//! cost in nanoseconds per pair (bare runtime vs. with the streaming
//! profiler attached) and simulated steps per host second for the
//! convolution and LULESH benchmarks on the `ideal` machine with a fixed
//! seed, so successive runs are comparable.

use mpi_sections::{SectionProfiler, SectionRuntime, VerifyMode};
use mpisim::WorldBuilder;
use std::time::Instant;

/// Run `pairs` section enter/exit pairs on a single rank and return host
/// nanoseconds per pair.
fn section_pair_ns(pairs: usize, with_profiler: bool) -> f64 {
    let sections = SectionRuntime::new(VerifyMode::Off);
    if with_profiler {
        sections.attach(SectionProfiler::new());
    }
    let s = sections.clone();
    let start = Instant::now();
    WorldBuilder::new(1)
        .tool(sections.clone())
        .run(move |p| {
            let world = p.world();
            for _ in 0..pairs {
                s.scoped(p, &world, "BENCH", |_| {});
            }
        })
        .expect("overhead run failed");
    start.elapsed().as_nanos() as f64 / pairs as f64
}

fn main() {
    let warmup = 10_000;
    let pairs = 200_000;
    // Warm up allocators and the thread pool before timing.
    let _ = section_pair_ns(warmup, true);

    let bare_ns = section_pair_ns(pairs, false);
    let profiled_ns = section_pair_ns(pairs, true);

    let ideal = machine::presets::ideal();
    let conv_steps = 50;
    let start = Instant::now();
    let _ = bench::conv_profile(8, conv_steps, &ideal, 1);
    let conv_sps = conv_steps as f64 / start.elapsed().as_secs_f64();

    let lulesh_iters = 20;
    let s = lulesh_proxy::size_for(lulesh_proxy::PAPER_TOTAL_ELEMENTS, 8).expect("8 is a cube");
    let start = Instant::now();
    let _ = bench::lulesh_profile(8, s, lulesh_iters, 1, &ideal, 1);
    let lulesh_sps = lulesh_iters as f64 / start.elapsed().as_secs_f64();

    let json = format!(
        "{{\n  \"section_pair_ns_bare\": {bare_ns:.1},\n  \"section_pair_ns_profiled\": {profiled_ns:.1},\n  \"profiler_overhead_ns\": {:.1},\n  \"conv_steps_per_sec\": {conv_sps:.2},\n  \"lulesh_steps_per_sec\": {lulesh_sps:.2},\n  \"config\": {{\"machine\": \"ideal\", \"seed\": 1, \"p\": 8, \"conv_steps\": {conv_steps}, \"lulesh_iters\": {lulesh_iters}, \"pairs\": {pairs}}}\n}}\n",
        (profiled_ns - bare_ns).max(0.0)
    );

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let path = root.join("BENCH_profiler.json");
    std::fs::write(&path, &json).expect("write BENCH_profiler.json");
    print!("{json}");
    println!("wrote {}", path.display());
}
