//! Host-side performance benchmark: measures what the *tooling itself*
//! costs (the paper's §5 concern — "the instrumentation overhead has to
//! remain negligible") and how fast the simulator churns through the two
//! workloads. Writes `BENCH_profiler.json` at the repository root.
//!
//! ```text
//! cargo run --release -p bench --bin bench
//! ```
//!
//! All numbers are host wall-clock (not virtual time): section enter/exit
//! cost in nanoseconds per pair (bare runtime vs. with the streaming
//! profiler attached) and simulated steps per host second for the
//! convolution and LULESH benchmarks on the `ideal` machine with a fixed
//! seed, so successive runs are comparable.

use mpi_sections::timeline::{build, Windowing};
use mpi_sections::{CommRecorder, SectionProfiler, SectionRuntime, VerifyMode};
use mpisim::WorldBuilder;
use std::sync::Arc;
use std::time::Instant;

/// Run `pairs` section enter/exit pairs on a single rank and return host
/// nanoseconds per pair.
fn section_pair_ns(pairs: usize, with_profiler: bool) -> f64 {
    let sections = SectionRuntime::new(VerifyMode::Off);
    if with_profiler {
        sections.attach(SectionProfiler::new());
    }
    let s = sections.clone();
    let start = Instant::now();
    WorldBuilder::new(1)
        .tool(sections.clone())
        .run(move |p| {
            let world = p.world();
            for _ in 0..pairs {
                s.scoped(p, &world, "BENCH", |_| {});
            }
        })
        .expect("overhead run failed");
    start.elapsed().as_nanos() as f64 / pairs as f64
}

/// Record a convolution run's communication log and return host
/// microseconds per `timeline::build` call over it — the cost of the
/// windowed-efficiency engine, paid once per report after the run.
fn timeline_build_us(p: usize, steps: usize, windows: usize, reps: usize) -> f64 {
    let sections = SectionRuntime::new(VerifyMode::Off);
    let recorder = CommRecorder::new();
    let s = sections.clone();
    let cfg = Arc::new(convolution::ConvConfig::paper(steps));
    WorldBuilder::new(p)
        .machine(machine::presets::ideal())
        .seed(1)
        .tool(sections.clone())
        .tool(recorder.clone())
        .run(move |pr| {
            convolution::run_convolution(pr, &s, &cfg);
        })
        .expect("recorded run failed");
    let log = recorder.freeze();
    let windowing = Windowing::Fixed(windows);
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(build(&log, &windowing));
    }
    start.elapsed().as_nanos() as f64 / 1_000.0 / reps as f64
}

fn main() {
    let warmup = 10_000;
    let pairs = 200_000;
    // Warm up allocators and the thread pool before timing.
    let _ = section_pair_ns(warmup, true);

    let bare_ns = section_pair_ns(pairs, false);
    let profiled_ns = section_pair_ns(pairs, true);

    let ideal = machine::presets::ideal();
    let conv_steps = 50;
    let start = Instant::now();
    let _ = bench::conv_profile(8, conv_steps, &ideal, 1);
    let conv_sps = conv_steps as f64 / start.elapsed().as_secs_f64();

    let lulesh_iters = 20;
    let s = lulesh_proxy::size_for(lulesh_proxy::PAPER_TOTAL_ELEMENTS, 8).expect("8 is a cube");
    let start = Instant::now();
    let _ = bench::lulesh_profile(8, s, lulesh_iters, 1, &ideal, 1);
    let lulesh_sps = lulesh_iters as f64 / start.elapsed().as_secs_f64();

    let tl_windows = 8;
    let tl_us = timeline_build_us(8, conv_steps, tl_windows, 20);

    let json = format!(
        "{{\n  \"section_pair_ns_bare\": {bare_ns:.1},\n  \"section_pair_ns_profiled\": {profiled_ns:.1},\n  \"profiler_overhead_ns\": {:.1},\n  \"conv_steps_per_sec\": {conv_sps:.2},\n  \"lulesh_steps_per_sec\": {lulesh_sps:.2},\n  \"timeline_build_us\": {tl_us:.1},\n  \"config\": {{\"machine\": \"ideal\", \"seed\": 1, \"p\": 8, \"conv_steps\": {conv_steps}, \"lulesh_iters\": {lulesh_iters}, \"pairs\": {pairs}, \"timeline_windows\": {tl_windows}}}\n}}\n",
        (profiled_ns - bare_ns).max(0.0)
    );

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let path = root.join("BENCH_profiler.json");
    std::fs::write(&path, &json).expect("write BENCH_profiler.json");
    print!("{json}");
    println!("wrote {}", path.display());
}
