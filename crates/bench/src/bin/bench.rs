//! Host-side performance benchmark: measures what the *tooling itself*
//! costs (the paper's §5 concern — "the instrumentation overhead has to
//! remain negligible") and how fast the simulator churns through the two
//! workloads. Writes `BENCH_profiler.json` at the repository root.
//!
//! ```text
//! cargo run --release -p bench --bin bench
//! ```
//!
//! All numbers are host wall-clock (not virtual time): section enter/exit
//! cost in nanoseconds per pair (bare runtime vs. with the streaming
//! profiler attached) and simulated steps per host second for the
//! convolution and LULESH benchmarks on the `ideal` machine with a fixed
//! seed, so successive runs are comparable.
//!
//! Since the discrete-event engine landed, the file also pins the scale
//! trajectory: `ranks_max` (largest p exercised, with its wall time),
//! `steps_per_sec_vs_p` (convolution throughput at p = 8…16384 on the
//! DES engine), and the p = 64 DES-vs-threads comparison. The dynamic
//! verifier adds `verify_schedules_per_sec`: full forced re-executions
//! of a 4-rank wildcard world per host second under `mpiverify::explore`.
//!
//! The streaming summarizer contributes three numbers of its own:
//! `summary_overhead_ns_per_event` (wall-time delta of attaching
//! `SummaryTool`, normalized per recorded event) and the frozen
//! `summary_state_bytes_vs_p` / `summary_json_bytes_vs_p` footprints at
//! p = 8…4096 — the memory-boundedness the summarizer exists for, pinned
//! as data.

use mpi_sections::timeline::{build, Windowing};
use mpi_sections::{CommRecorder, SectionProfiler, SectionRuntime, SummaryTool, VerifyMode};
use mpisim::WorldBuilder;
use std::sync::Arc;
use std::time::Instant;

/// Run `pairs` section enter/exit pairs on a single rank and return host
/// nanoseconds per pair.
fn section_pair_ns(pairs: usize, with_profiler: bool) -> f64 {
    let sections = SectionRuntime::new(VerifyMode::Off);
    if with_profiler {
        sections.attach(SectionProfiler::new());
    }
    let s = sections.clone();
    let start = Instant::now();
    WorldBuilder::new(1)
        .tool(sections.clone())
        .run(move |p| {
            let world = p.world();
            for _ in 0..pairs {
                s.scoped(p, &world, "BENCH", |_| {});
            }
        })
        .expect("overhead run failed");
    start.elapsed().as_nanos() as f64 / pairs as f64
}

/// Record a convolution run's communication log and return host
/// microseconds per `timeline::build` call over it — the cost of the
/// windowed-efficiency engine, paid once per report after the run.
fn timeline_build_us(p: usize, steps: usize, windows: usize, reps: usize) -> f64 {
    let sections = SectionRuntime::new(VerifyMode::Off);
    let recorder = CommRecorder::new();
    let s = sections.clone();
    let cfg = Arc::new(convolution::ConvConfig::paper(steps));
    WorldBuilder::new(p)
        .machine(machine::presets::ideal())
        .seed(1)
        .tool(sections.clone())
        .tool(recorder.clone())
        .run(move |pr| {
            convolution::run_convolution(pr, &s, &cfg);
        })
        .expect("recorded run failed");
    let log = recorder.freeze();
    let windowing = Windowing::Fixed(windows);
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(build(&log, &windowing));
    }
    start.elapsed().as_nanos() as f64 / 1_000.0 / reps as f64
}

/// Counterfactual-replay throughput over a recorded convolution log:
/// recorded events re-timed per host second by an identity replay, and
/// full what-if scenario evaluations (replay, wait-state classification,
/// critical path, windowed timeline, trend detection) per host second.
/// Recorded on the nehalem model so the replay also exercises
/// jitter-stream regeneration.
fn replay_throughput(p: usize, steps: usize, reps: usize) -> (f64, f64) {
    let sections = SectionRuntime::new(VerifyMode::Off);
    let recorder = CommRecorder::new();
    let s = sections.clone();
    let cfg = Arc::new(convolution::ConvConfig::paper(steps));
    let m = machine::presets::nehalem_cluster();
    WorldBuilder::new(p)
        .machine(m.clone())
        .seed(1)
        .tool(sections.clone())
        .tool(recorder.clone())
        .run(move |pr| {
            convolution::run_convolution(pr, &s, &cfg);
        })
        .expect("recorded run failed");
    let log = recorder.freeze();
    let events = log.events();
    let identity = mpi_sections::WhatIfSpec::identity();
    let mut best = f64::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(
            mpi_sections::replay(&log, &m, 1, &identity).expect("identity replay"),
        );
        best = best.min(start.elapsed().as_secs_f64());
    }
    let events_per_sec = events as f64 / best;
    let spec = mpi_sections::whatif::parse("jitter=0").expect("valid spec");
    let mut best = f64::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(
            bench::whatif::analyze(&log, &m, 1, &spec, 1.0, p, &Windowing::Fixed(8))
                .expect("scenario"),
        );
        best = best.min(start.elapsed().as_secs_f64());
    }
    (events_per_sec, 1.0 / best)
}

/// Streaming-summarizer cost per delivered event: best-of-`reps` wall
/// time of a convolution run with `SummaryTool` attached minus the bare
/// run, divided by the number of events a `CommRecorder` sees on the same
/// run. Negative deltas (measurement noise at this scale) clamp to zero.
fn summary_overhead_ns_per_event(p: usize, steps: usize, reps: usize) -> f64 {
    let ideal = machine::presets::ideal();
    let events = {
        let sections = SectionRuntime::new(VerifyMode::Off);
        let recorder = CommRecorder::new();
        let s = sections.clone();
        let cfg = Arc::new(convolution::ConvConfig::paper(steps));
        WorldBuilder::new(p)
            .machine(ideal.clone())
            .seed(1)
            .tool(sections.clone())
            .tool(recorder.clone())
            .run(move |pr| {
                convolution::run_convolution(pr, &s, &cfg);
            })
            .expect("recorded run failed");
        recorder.freeze().events()
    };
    let timed = |summarize: bool| -> f64 {
        let mut best = f64::MAX;
        for _ in 0..reps {
            let sections = SectionRuntime::new(VerifyMode::Off);
            let s = sections.clone();
            let cfg = Arc::new(convolution::ConvConfig::paper(steps));
            let mut builder = WorldBuilder::new(p)
                .machine(ideal.clone())
                .seed(1)
                .tool(sections.clone());
            if summarize {
                builder = builder.tool(SummaryTool::new());
            }
            let start = Instant::now();
            builder
                .run(move |pr| {
                    convolution::run_convolution(pr, &s, &cfg);
                })
                .expect("overhead run failed");
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };
    let bare = timed(false);
    let summarized = timed(true);
    ((summarized - bare).max(0.0) * 1e9) / events as f64
}

/// Frozen summarizer footprint for a convolution run at scale `p`:
/// `(state_bytes, json_bytes)`. The step count is irrelevant by design
/// (state is step-independent, test-asserted), so a short run suffices.
fn summary_footprint(p: usize) -> (usize, usize) {
    let sections = SectionRuntime::new(VerifyMode::Off);
    let summary = SummaryTool::new();
    let s = sections.clone();
    let cfg = Arc::new(convolution::ConvConfig::paper(MIN_STEPS));
    WorldBuilder::new(p)
        .machine(machine::presets::ideal())
        .seed(1)
        .tool(sections.clone())
        .tool(summary.clone())
        .run(move |pr| {
            convolution::run_convolution(pr, &s, &cfg);
        })
        .expect("footprint run failed");
    let frozen = summary.freeze();
    (frozen.state_bytes, frozen.to_json().len())
}

/// Verifier throughput: explored schedules (full forced re-executions of
/// a 4-rank wildcard-fold world) per host second, best of `reps`.
fn verify_schedules_per_sec(reps: usize) -> f64 {
    let run = |ctl: &std::sync::Arc<mpiverify::ScheduleController>| {
        let result = mpisim::WorldBuilder::new(4)
            .seed(1)
            .match_controller(ctl.clone() as std::sync::Arc<dyn mpisim::MatchController>)
            .run(|p| {
                let world = p.world();
                let me = p.world_rank();
                if me == 0 {
                    world.barrier(p);
                    let mut acc: u64 = 0;
                    for _ in 1..4 {
                        let m = world.recv::<u64>(p, mpisim::Src::Any, mpisim::TagSel::Is(7));
                        acc = acc.wrapping_mul(31).wrapping_add(m.data[0]);
                    }
                    acc
                } else {
                    world.send(p, 0, 7, &[me as u64]);
                    world.barrier(p);
                    0
                }
            });
        match result {
            Ok(rep) => mpiverify::RunOutcome {
                artifact: format!("{:?}", rep.results),
                failure: None,
            },
            Err(e) => mpiverify::RunOutcome {
                artifact: String::new(),
                failure: Some(e.to_string()),
            },
        }
    };
    let mut best = f64::MAX;
    let mut runs = 0;
    for _ in 0..reps {
        let start = Instant::now();
        let report = mpiverify::explore(64, run);
        best = best.min(start.elapsed().as_secs_f64());
        runs = report.runs;
    }
    runs as f64 / best
}

/// Total step×rank budget one large-p sweep sample may spend. 400 steps
/// at p = 256 was the historical sweet spot; holding the product constant
/// keeps every sweep point at comparable host cost as p grows.
const STEP_BUDGET: usize = 400 * 256;

/// Fewest steps that still amortize the fixed load/scatter/gather phases.
const MIN_STEPS: usize = 25;

/// Step count for a sweep point: fixed 400 below p = 1024 (where steps
/// are cheap), budget-scaled above (recorded in the JSON config block).
fn adaptive_steps(p: usize) -> usize {
    if p < 1024 {
        400
    } else {
        (STEP_BUDGET / p).clamp(MIN_STEPS, 400)
    }
}

/// Best-of-`reps` convolution throughput (simulated steps per host
/// second) at scale `p` on the given engine.
fn conv_steps_per_sec(engine: mpisim::Engine, p: usize, steps: usize, reps: usize) -> f64 {
    let ideal = machine::presets::ideal();
    let mut best = f64::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        let _ = bench::conv_profile_on(Some(engine), p, steps, &ideal, 1);
        best = best.min(start.elapsed().as_secs_f64());
    }
    steps as f64 / best
}

fn main() {
    let warmup = 10_000;
    let pairs = 200_000;
    // Warm up allocators before timing the section micro-benchmarks.
    let _ = section_pair_ns(warmup, true);

    let bare_ns = section_pair_ns(pairs, false);
    let profiled_ns = section_pair_ns(pairs, true);

    let ideal = machine::presets::ideal();
    let conv_steps = 50;
    let start = Instant::now();
    let _ = bench::conv_profile(8, conv_steps, &ideal, 1);
    let conv_sps = conv_steps as f64 / start.elapsed().as_secs_f64();

    let lulesh_iters = 20;
    let s = lulesh_proxy::size_for(lulesh_proxy::PAPER_TOTAL_ELEMENTS, 8).expect("8 is a cube");
    let start = Instant::now();
    let _ = bench::lulesh_profile(8, s, lulesh_iters, 1, &ideal, 1);
    let lulesh_sps = lulesh_iters as f64 / start.elapsed().as_secs_f64();

    let tl_windows = 8;
    let tl_us = timeline_build_us(8, conv_steps, tl_windows, 20);

    let verify_sps = verify_schedules_per_sec(5);

    let (replay_eps, whatif_sps) = replay_throughput(8, conv_steps, 10);

    let summary_ns_per_event = summary_overhead_ns_per_event(8, conv_steps, 10);
    let summary_ps = [8usize, 64, 1024, 4096];
    let footprints: Vec<(usize, usize, usize)> = summary_ps
        .iter()
        .map(|&p| {
            let (state, json) = summary_footprint(p);
            (p, state, json)
        })
        .collect();

    // Scale sweep on the DES engine. Order matters twice over: the
    // 16384-rank run fragments the heap enough to distort the section
    // micro-benchmarks, so it runs after them; and a 64-thread run leaves
    // the OS scheduler and caches in a state that degrades everything
    // after it, so the threaded comparison point runs dead last.
    let ranks_max = 16384;
    let vs_p: Vec<(usize, usize, usize)> = vec![
        // (p, steps, reps) — more steps at small p to amortize the fixed
        // load/scatter/gather phases out of the per-step rate.
        // Best-of-many short samples at p = 64: the per-sample wall time
        // is ~20 ms, so a large rep count estimates the noise-free rate
        // on a shared machine far better than a few long samples.
        // At p >= 1024 the step count adapts to a fixed step*rank budget.
        (8, adaptive_steps(8), 5),
        (64, adaptive_steps(64), 25),
        (1024, adaptive_steps(1024), 2),
        (ranks_max, adaptive_steps(ranks_max), 1),
    ];
    let mut sweep: Vec<(usize, usize, f64)> = Vec::new();
    for &(p, steps, reps) in &vs_p {
        sweep.push((
            p,
            steps,
            conv_steps_per_sec(mpisim::Engine::Des, p, steps, reps),
        ));
    }
    let ranks_max_steps = adaptive_steps(ranks_max);
    let start = Instant::now();
    let _ = bench::conv_profile_on(
        Some(mpisim::Engine::Des),
        ranks_max,
        ranks_max_steps,
        &ideal,
        1,
    );
    let ranks_max_wall = start.elapsed().as_secs_f64();
    let des_p64 = sweep
        .iter()
        .find(|(p, _, _)| *p == 64)
        .map(|(_, _, sps)| *sps)
        .expect("sweep covers p=64");
    let threads_p64 = conv_steps_per_sec(mpisim::Engine::Threads, 64, 400, 5);

    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|(p, steps, sps)| {
            format!("{{\"p\": {p}, \"steps\": {steps}, \"steps_per_sec\": {sps:.2}}}")
        })
        .collect();
    let state_json: Vec<String> = footprints
        .iter()
        .map(|(p, state, _)| format!("{{\"p\": {p}, \"bytes\": {state}}}"))
        .collect();
    let sjson_json: Vec<String> = footprints
        .iter()
        .map(|(p, _, json)| format!("{{\"p\": {p}, \"bytes\": {json}}}"))
        .collect();
    let json = format!(
        "{{\n  \"engine\": \"des\",\n  \"section_pair_ns_bare\": {bare_ns:.1},\n  \"section_pair_ns_profiled\": {profiled_ns:.1},\n  \"profiler_overhead_ns\": {:.1},\n  \"conv_steps_per_sec\": {conv_sps:.2},\n  \"lulesh_steps_per_sec\": {lulesh_sps:.2},\n  \"timeline_build_us\": {tl_us:.1},\n  \"verify_schedules_per_sec\": {verify_sps:.2},\n  \"replay_events_per_sec\": {replay_eps:.2},\n  \"whatif_scenarios_per_sec\": {whatif_sps:.2},\n  \"summary_overhead_ns_per_event\": {summary_ns_per_event:.1},\n  \"summary_state_bytes_vs_p\": [{}],\n  \"summary_json_bytes_vs_p\": [{}],\n  \"ranks_max\": {ranks_max},\n  \"ranks_max_wall_secs\": {ranks_max_wall:.2},\n  \"steps_per_sec_vs_p\": [{}],\n  \"conv_p64_des_steps_per_sec\": {des_p64:.2},\n  \"conv_p64_threads_steps_per_sec\": {threads_p64:.2},\n  \"engine_speedup_p64\": {:.2},\n  \"config\": {{\"machine\": \"ideal\", \"seed\": 1, \"p\": 8, \"conv_steps\": {conv_steps}, \"lulesh_iters\": {lulesh_iters}, \"pairs\": {pairs}, \"timeline_windows\": {tl_windows}, \"p64_steps\": 400, \"vs_p_step_budget\": {STEP_BUDGET}, \"vs_p_min_steps\": {MIN_STEPS}}}\n}}\n",
        (profiled_ns - bare_ns).max(0.0),
        state_json.join(", "),
        sjson_json.join(", "),
        sweep_json.join(", "),
        des_p64 / threads_p64
    );

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let path = root.join("BENCH_profiler.json");
    std::fs::write(&path, &json).expect("write BENCH_profiler.json");
    print!("{json}");
    println!("wrote {}", path.display());
}
