//! What-if scenario reports: run the counterfactual replay over a
//! recorded log and package the result the way the profiler reports it —
//! predicted makespan and speedup next to the measured run, the Eq. 6 and
//! critical-path bounds re-evaluated on the re-timed trace, the re-timed
//! wait-state totals, and the windowed trend diagnosis.
//!
//! Lives in `bench` (not `mpi-sections`) because the report spans layers:
//! the replay and timeline are core, the trend detector is `speedup`, and
//! the table/JSON conventions are the profiler's.

use machine::MachineModel;
use mpi_sections::whatif::WhatIfSpec;
use mpi_sections::{classify, critpath, replay, CommLog, Windowing, MPI_MAIN};
use speedup::trend::{self, SectionTrend, TrendConfig};

/// One evaluated scenario: the replay's headline numbers plus the full
/// re-timed diagnosis.
pub struct Scenario {
    /// The spec text (scenario label everywhere).
    pub spec: String,
    /// Recorded makespan, ns.
    pub baseline_ns: u64,
    /// Re-timed makespan, ns.
    pub predicted_ns: u64,
    /// Speedup of the recorded run against the sequential total.
    pub measured_speedup: f64,
    /// Speedup the scenario predicts.
    pub predicted_speedup: f64,
    /// Eq. 6 program bound re-evaluated on the re-timed section presence
    /// (infinite when no section has presence).
    pub eq6_bound: f64,
    /// Critical-path length of the re-timed trace, ns.
    pub critical_path_ns: u64,
    /// Critical-path speedup bound of the re-timed trace.
    pub critical_path_bound: f64,
    /// Re-timed wait-state totals.
    pub waits: mpi_sections::waitstate::WaitBreakdown,
    /// Trend diagnosis over the re-timed windowed timeline.
    pub trends: Vec<SectionTrend>,
}

impl Scenario {
    /// One-line trend verdict: the first degrading section, or steady.
    pub fn verdict(&self) -> String {
        match self.trends.iter().find(|t| t.degrading) {
            Some(t) => format!("{} DEGRADING ({} wait)", t.label, t.dominant_wait),
            None => "all steady".to_string(),
        }
    }

    /// Predicted-over-baseline makespan change in percent (negative =
    /// the scenario is faster).
    pub fn delta_pct(&self) -> f64 {
        if self.baseline_ns == 0 {
            return 0.0;
        }
        100.0 * (self.predicted_ns as f64 - self.baseline_ns as f64) / self.baseline_ns as f64
    }

    /// The scenario as one JSON object (jsoncheck-valid: non-finite
    /// bounds become null).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"spec\":{},\"baseline_makespan_ns\":{},\"predicted_makespan_ns\":{},\
             \"delta_pct\":{},\"measured_speedup\":{},\"predicted_speedup\":{},\
             \"eq6_bound\":{},\"critical_path_ns\":{},\"critical_path_bound\":{},\
             \"waits\":{{\"late_sender_ns\":{},\"late_receiver_ns\":{},\"coll_wait_ns\":{}}},\
             \"verdict\":{},\"trends\":{}}}",
            json_str(&self.spec),
            self.baseline_ns,
            self.predicted_ns,
            json_num(self.delta_pct()),
            json_num(self.measured_speedup),
            json_num(self.predicted_speedup),
            json_num(self.eq6_bound),
            self.critical_path_ns,
            json_num(self.critical_path_bound),
            self.waits.late_sender_ns,
            self.waits.late_receiver_ns,
            self.waits.coll_wait_ns,
            json_str(&self.verdict()),
            trend::to_json(&self.trends),
        )
    }
}

/// Evaluate one scenario against a recorded log.
///
/// `seq_total_secs` is the sequential-total reference both speedups and
/// both bounds are normalized by (the profiler's non-`MPI_MAIN` exclusive
/// aggregate); `windowing` selects the timeline the trend detector sees.
pub fn analyze(
    log: &CommLog,
    machine: &MachineModel,
    seed: u64,
    spec: &WhatIfSpec,
    seq_total_secs: f64,
    p: usize,
    windowing: &Windowing,
) -> Result<Scenario, String> {
    let re = replay(log, machine, seed, spec)?;
    let baseline_ns = log.makespan_ns();
    let predicted_ns = re.makespan_ns();
    let cp = critpath::extract(&re);
    let tl = mpi_sections::timeline::build(&re, windowing);
    let trends = trend::detect(&tl, &TrendConfig::default());
    // Eq. 6 on the re-timed trace: every section's presence caps the
    // program at seq_total / (presence / p); the program takes the min.
    let eq6_bound = tl
        .section_totals()
        .iter()
        .filter(|(label, ws)| label.as_str() != MPI_MAIN && ws.time_ns > 0)
        .map(|(_, ws)| seq_total_secs / (ws.time_ns as f64 / 1e9 / p as f64))
        .fold(f64::INFINITY, f64::min);
    Ok(Scenario {
        spec: spec.raw.clone(),
        baseline_ns,
        predicted_ns,
        measured_speedup: speedup_of(seq_total_secs, baseline_ns),
        predicted_speedup: speedup_of(seq_total_secs, predicted_ns),
        eq6_bound,
        critical_path_ns: cp.length_ns,
        critical_path_bound: cp.bound(seq_total_secs),
        waits: classify(&re).totals(),
        trends,
    })
}

fn speedup_of(seq_total_secs: f64, makespan_ns: u64) -> f64 {
    if makespan_ns == 0 {
        f64::INFINITY
    } else {
        seq_total_secs / (makespan_ns as f64 / 1e9)
    }
}

/// The scenario delta table: measured run first, one row per scenario.
pub fn render(scenarios: &[Scenario]) -> String {
    let mut rows: Vec<Vec<String>> = Vec::new();
    if let Some(first) = scenarios.first() {
        rows.push(vec![
            "measured".to_string(),
            crate::f2(first.baseline_ns as f64 / 1e9),
            "-".to_string(),
            crate::f2(first.measured_speedup),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);
    }
    for s in scenarios {
        rows.push(vec![
            s.spec.clone(),
            crate::f2(s.predicted_ns as f64 / 1e9),
            format!("{:+.1}%", s.delta_pct()),
            crate::f2(s.predicted_speedup),
            bound_cell(s.eq6_bound),
            crate::f2(s.critical_path_ns as f64 / 1e9),
            s.verdict(),
        ]);
    }
    let mut out = String::from("what-if replay (re-timed recorded trace)\n");
    out.push_str(&crate::render_table(
        &[
            "scenario",
            "makespan s",
            "delta",
            "speedup",
            "Eq.6 bound",
            "critpath s",
            "trend verdict",
        ],
        &rows,
    ));
    out
}

fn bound_cell(b: f64) -> String {
    if b.is_finite() {
        crate::f2(b)
    } else {
        "unbounded".to_string()
    }
}

/// All scenarios as a JSON array (the `whatif` object of
/// `--metrics-json`).
pub fn to_json(scenarios: &[Scenario]) -> String {
    let items: Vec<String> = scenarios.iter().map(|s| s.to_json()).collect();
    format!("[{}]", items.join(","))
}

/// The full machine-model parameter block for the `--metrics-json`
/// config object: LogGP link parameters, placement, noise configuration
/// and a fingerprint of the lossless config round-trip (so two documents
/// disagree whenever any model parameter does).
pub fn machine_config_json(m: &MachineModel) -> String {
    let link = |l: &machine::LinkModel| {
        format!(
            "{{\"latency_s\":{},\"bandwidth_bytes_per_s\":{},\"overhead_s\":{}}}",
            json_num(l.latency),
            json_num(l.bandwidth),
            json_num(l.overhead)
        )
    };
    format!(
        "{{\"name\":{},\"cores_per_node\":{},\"hw_threads_per_core\":{},\
         \"ranks_per_node\":{},\"intra_node\":{},\"inter_node\":{},\
         \"noise\":{{\"compute_sigma\":{},\"net_latency_jitter_mean_s\":{}}},\
         \"fingerprint\":\"{:016x}\"}}",
        json_str(&m.name),
        m.cores_per_node,
        m.hw_threads_per_core,
        json_usize(m.topology.ranks_per_node),
        link(&m.network.intra_node),
        link(&m.network.inter_node),
        json_num(m.noise.compute_sigma),
        json_num(m.noise.net_latency_jitter_mean),
        mpiverify::fingerprint(&m.to_config_str()),
    )
}

/// A float as a JSON number, or null when not finite (JSON has no
/// inf/nan and an ideal machine has infinite bandwidth).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".to_string()
    }
}

/// A usize as a JSON number, with the `usize::MAX` "unbounded" sentinel
/// (single-node topology) mapped to null.
fn json_usize(v: usize) -> String {
    if v == usize::MAX {
        "null".to_string()
    } else {
        v.to_string()
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpi_sections::whatif;

    fn demo() -> (CommLog, MachineModel) {
        let m = machine::presets::nehalem_cluster();
        let sections = mpi_sections::SectionRuntime::new(mpi_sections::VerifyMode::Active);
        let rec = mpi_sections::CommRecorder::new();
        let s = sections.clone();
        mpisim::WorldBuilder::new(4)
            .machine(m.clone())
            .seed(9)
            .tool(sections.clone())
            .tool(rec.clone())
            .run(move |p| {
                let world = p.world();
                for _ in 0..6 {
                    s.scoped(p, &world, "HALO", |p| {
                        let world = p.world();
                        p.compute(machine::Work::new(5e6, 5e5));
                        let next = (p.world_rank() + 1) % p.world_size();
                        let prev = (p.world_rank() + p.world_size() - 1) % p.world_size();
                        world.send(p, next, 1, &[3u8; 512]);
                        let _ = world.recv::<u8>(p, mpisim::Src::Rank(prev), mpisim::TagSel::Any);
                    });
                }
            })
            .unwrap();
        (rec.freeze(), m)
    }

    #[test]
    fn scenario_json_is_valid_and_deterministic() {
        let (log, m) = demo();
        let spec = whatif::parse("jitter=0").unwrap();
        let a = analyze(&log, &m, 9, &spec, 1.0, 4, &Windowing::Fixed(4)).unwrap();
        let b = analyze(&log, &m, 9, &spec, 1.0, 4, &Windowing::Fixed(4)).unwrap();
        assert_eq!(a.to_json(), b.to_json());
        assert!(!a.to_json().contains("inf"), "{}", a.to_json());
        assert!(a.predicted_ns > 0);
        assert!(a.predicted_ns <= a.baseline_ns);
    }

    #[test]
    fn identity_scenario_predicts_the_measurement() {
        let (log, m) = demo();
        let s = analyze(
            &log,
            &m,
            9,
            &WhatIfSpec::identity(),
            1.0,
            4,
            &Windowing::Fixed(4),
        )
        .unwrap();
        assert_eq!(s.baseline_ns, s.predicted_ns);
        assert_eq!(s.delta_pct(), 0.0);
        assert_eq!(s.measured_speedup, s.predicted_speedup);
    }

    #[test]
    fn render_has_measured_row_and_every_scenario() {
        let (log, m) = demo();
        let specs = ["net=ideal", "jitter=0"];
        let scenarios: Vec<Scenario> = specs
            .iter()
            .map(|raw| {
                let spec = whatif::parse(raw).unwrap();
                analyze(&log, &m, 9, &spec, 1.0, 4, &Windowing::Fixed(4)).unwrap()
            })
            .collect();
        let table = render(&scenarios);
        assert!(table.contains("measured"));
        for raw in specs {
            assert!(table.contains(raw), "{table}");
        }
    }

    #[test]
    fn machine_config_json_guards_non_finite_floats() {
        let ideal = machine_config_json(&machine::presets::ideal());
        assert!(!ideal.contains("inf"), "{ideal}");
        assert!(ideal.contains("\"fingerprint\""));
        let nehalem = machine_config_json(&machine::presets::nehalem_cluster());
        assert_ne!(ideal, nehalem);
    }
}
