//! Shared experiment harness: configured runs of the two benchmarks with
//! section profiling, result rows for every figure, and CSV/table output.
//!
//! The `figures` binary (this crate's `src/bin/figures.rs`) drives these
//! runners to regenerate every table and figure of the paper; the Criterion
//! benches reuse them for the microbenchmark ablations.

pub mod whatif;

use convolution::{run_convolution, ConvConfig};
use lulesh_proxy::{run_lulesh, LuleshConfig};
use machine::MachineModel;
use mpi_sections::{Profile, SectionProfiler, SectionRuntime, VerifyMode};
use mpisim::WorldBuilder;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

/// One profiled run of the convolution benchmark.
#[derive(Debug, Clone)]
pub struct ConvRun {
    /// Number of MPI processes.
    pub p: usize,
    /// Simulated wall time (makespan) in seconds.
    pub wall: f64,
    /// Total time per section, summed across ranks (Fig. 5b), in seconds.
    pub section_total: BTreeMap<String, f64>,
}

impl ConvRun {
    /// Average time per process for a section (Fig. 5c).
    pub fn avg_per_rank(&self, label: &str) -> f64 {
        self.section_total.get(label).copied().unwrap_or(0.0) / self.p as f64
    }

    /// Percentage of execution spent in a section (Fig. 5a): its share of
    /// the sum of all leaf-section totals.
    pub fn percent(&self, label: &str) -> f64 {
        let denom: f64 = self.section_total.values().sum();
        if denom == 0.0 {
            return 0.0;
        }
        100.0 * self.section_total.get(label).copied().unwrap_or(0.0) / denom
    }
}

/// One world-communicator section of a simulated grid cell, as a sweep
/// store persists it: plain numbers, no live [`Profile`].
#[derive(Debug, Clone, PartialEq)]
pub struct CellSection {
    /// Section label.
    pub label: String,
    /// Ranks that traversed the section.
    pub participants: usize,
    /// Inclusive seconds summed over ranks.
    pub total_own_secs: f64,
    /// Exclusive seconds summed over ranks.
    pub total_excl_secs: f64,
    /// Inclusive seconds averaged per participating rank.
    pub avg_per_rank_secs: f64,
}

/// The outcome of one simulated grid cell — a single `(workload, machine,
/// p, seed)` run. This is the unit the mpistudy run store persists; every
/// cross-run figure is rebuilt from these (see [`conv_run_from_cells`]),
/// so the same row builders serve the ad-hoc harness and the store.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// Simulated wall time (makespan) in seconds.
    pub wall_secs: f64,
    /// World-communicator sections in label order (including `MPI_MAIN`).
    pub sections: Vec<CellSection>,
}

impl CellOutcome {
    /// Extract the world-communicator sections of `profile`.
    pub fn from_profile(profile: &Profile, wall_secs: f64) -> CellOutcome {
        let sections = profile
            .sections()
            .filter(|s| s.key.comm == mpisim::CommId::WORLD)
            .map(|s| CellSection {
                label: s.key.label.clone(),
                participants: s.participants,
                total_own_secs: s.total_own_secs,
                total_excl_secs: s.total_excl_secs,
                avg_per_rank_secs: s.avg_per_rank_secs(),
            })
            .collect();
        CellOutcome {
            wall_secs,
            sections,
        }
    }

    /// Look up a section by label.
    pub fn section(&self, label: &str) -> Option<&CellSection> {
        self.sections.iter().find(|s| s.label == label)
    }
}

/// Run one convolution grid cell: scale `p`, one `seed`.
pub fn conv_cell(p: usize, steps: usize, machine: &MachineModel, seed: u64) -> CellOutcome {
    let (profile, wall) = conv_profile(p, steps, machine, seed);
    CellOutcome::from_profile(&profile, wall)
}

/// Average per-seed cell outcomes into the [`ConvRun`] the figures
/// consume. The accumulation order (seeds outer, [`convolution::SECTIONS`]
/// inner, divide once at the end) is the contract: it matches
/// [`measure_convolution`] bit-for-bit, so figures regenerated from a
/// store of cells are byte-identical to the ad-hoc harness output.
pub fn conv_run_from_cells(p: usize, cells: &[CellOutcome]) -> ConvRun {
    assert!(!cells.is_empty());
    let mut acc: BTreeMap<String, f64> = BTreeMap::new();
    let mut wall = 0.0;
    for cell in cells {
        wall += cell.wall_secs;
        for label in convolution::SECTIONS {
            let t = cell.section(label).map(|s| s.total_own_secs).unwrap_or(0.0);
            *acc.entry(label.to_string()).or_insert(0.0) += t;
        }
    }
    let n = cells.len() as f64;
    acc.values_mut().for_each(|v| *v /= n);
    ConvRun {
        p,
        wall: wall / n,
        section_total: acc,
    }
}

/// Run the convolution benchmark once at scale `p`, returning averaged
/// section totals over `seeds` repetitions (the paper averages 20 runs).
pub fn measure_convolution(
    p: usize,
    steps: usize,
    machine: &MachineModel,
    seeds: &[u64],
) -> ConvRun {
    assert!(!seeds.is_empty());
    let cells: Vec<CellOutcome> = seeds
        .iter()
        .map(|&seed| conv_cell(p, steps, machine, seed))
        .collect();
    conv_run_from_cells(p, &cells)
}

/// Run one weak-scaling convolution cell: the per-rank image slice is held
/// constant (`rows_per_rank` rows of the paper's 5616-wide image) while
/// the global image grows with `p` — the Gustafson-regime workload.
pub fn weak_conv_cell(
    p: usize,
    rows_per_rank: usize,
    steps: usize,
    machine: &MachineModel,
    seed: u64,
) -> CellOutcome {
    let sections = SectionRuntime::new(VerifyMode::Off);
    let profiler = SectionProfiler::new();
    sections.attach(profiler.clone());
    let s = sections.clone();
    let cfg = Arc::new(ConvConfig {
        width: 5616,
        height: rows_per_rank * p,
        steps,
        fidelity: convolution::Fidelity::Timing,
        store_path: None,
    });
    let report = WorldBuilder::new(p)
        .machine(machine.clone())
        .seed(seed)
        .tool(sections.clone())
        .run(move |pr| {
            run_convolution(pr, &s, &cfg);
        })
        .expect("weak-scaling run failed");
    CellOutcome::from_profile(&profiler.snapshot(), report.makespan_secs())
}

/// One convolution run, returning the full section profile.
pub fn conv_profile(p: usize, steps: usize, machine: &MachineModel, seed: u64) -> (Profile, f64) {
    conv_profile_on(None, p, steps, machine, seed)
}

/// [`conv_profile`] with an explicit execution engine (`None` keeps the
/// builder default: DES on x86-64, honoring `MPISIM_ENGINE`). The bench
/// bin uses this to pin each engine when comparing them.
pub fn conv_profile_on(
    engine: Option<mpisim::Engine>,
    p: usize,
    steps: usize,
    machine: &MachineModel,
    seed: u64,
) -> (Profile, f64) {
    let sections = SectionRuntime::new(VerifyMode::Off);
    let profiler = SectionProfiler::new();
    sections.attach(profiler.clone());
    let s = sections.clone();
    let cfg = Arc::new(ConvConfig::paper(steps));
    let mut builder = WorldBuilder::new(p)
        .machine(machine.clone())
        .seed(seed)
        .tool(sections.clone());
    if let Some(engine) = engine {
        builder = builder.engine(engine);
    }
    let report = builder
        .run(move |pr| {
            run_convolution(pr, &s, &cfg);
        })
        .expect("convolution run failed");
    (profiler.snapshot(), report.makespan_secs())
}

/// One profiled run of the LULESH proxy.
#[derive(Debug, Clone)]
pub struct LuleshRun {
    pub p: usize,
    pub threads: usize,
    /// `timeloop` average time per process (the "Walltime" series of
    /// Figs. 8–10), in seconds.
    pub walltime: f64,
    /// `LagrangeNodal` average time per process.
    pub nodal: f64,
    /// `LagrangeElements` average time per process.
    pub elements: f64,
}

/// Run the LULESH proxy in the given hybrid configuration (timing
/// fidelity) and extract the Fig. 8–10 series.
pub fn measure_lulesh(
    p: usize,
    s: usize,
    iterations: usize,
    threads: usize,
    machine: &MachineModel,
    seed: u64,
) -> LuleshRun {
    let profile = lulesh_profile(p, s, iterations, threads, machine, seed);
    let avg = |label: &str| {
        profile
            .get_world(label)
            .map(|st| st.avg_per_rank_secs())
            .unwrap_or(0.0)
    };
    LuleshRun {
        p,
        threads,
        walltime: avg("timeloop"),
        nodal: avg("LagrangeNodal"),
        elements: avg("LagrangeElements"),
    }
}

/// One LULESH-proxy run, returning the full section profile.
pub fn lulesh_profile(
    p: usize,
    s: usize,
    iterations: usize,
    threads: usize,
    machine: &MachineModel,
    seed: u64,
) -> Profile {
    lulesh_profile_with_wall(p, s, iterations, threads, machine, seed).0
}

/// [`lulesh_profile`] plus the run's makespan in seconds.
pub fn lulesh_profile_with_wall(
    p: usize,
    s: usize,
    iterations: usize,
    threads: usize,
    machine: &MachineModel,
    seed: u64,
) -> (Profile, f64) {
    let sections = SectionRuntime::new(VerifyMode::Off);
    let profiler = SectionProfiler::new();
    sections.attach(profiler.clone());
    let sh = sections.clone();
    let cfg = Arc::new(LuleshConfig::timing(s, iterations, threads));
    let report = WorldBuilder::new(p)
        .machine(machine.clone())
        .seed(seed)
        .tool(sections.clone())
        .run(move |pr| {
            run_lulesh(pr, &sh, &cfg);
        })
        .expect("lulesh run failed");
    (profiler.snapshot(), report.makespan_secs())
}

/// Run one LULESH grid cell in the hybrid configuration.
pub fn lulesh_cell(
    p: usize,
    s: usize,
    iterations: usize,
    threads: usize,
    machine: &MachineModel,
    seed: u64,
) -> CellOutcome {
    let (profile, wall) = lulesh_profile_with_wall(p, s, iterations, threads, machine, seed);
    CellOutcome::from_profile(&profile, wall)
}

// ---------------------------------------------------------------------
// Shared figure row builders
//
// Both the ad-hoc `figures` harness and the mpistudy `report` command
// build these CSVs; routing both through one function is what makes the
// regenerated files byte-identical (same float summation order, same
// formatting) — the property the study smoke test pins.
// ---------------------------------------------------------------------

/// The process counts of the §5.1 convolution study ("up to 456 cores").
pub const CONV_PS: [usize; 13] = [1, 8, 16, 32, 64, 80, 96, 112, 128, 144, 192, 256, 456];

/// Header of `results/fig6.csv`.
pub const FIG6_HEADER: [&str; 5] = ["p", "halo_total_s", "B", "paper_halo_s", "paper_B"];

/// The paper's Fig. 6 numbers: `p -> (HALO total s, bound B)`.
pub fn fig6_paper() -> BTreeMap<usize, (f64, f64)> {
    [
        (64, (3025.44, 118.25)),
        (80, (1288.64, 363.96)),
        (112, (1822.38, 343.54)),
        (128, (14135.56, 50.61)),
        (144, (2716.03, 181.17)),
    ]
    .into_iter()
    .collect()
}

/// The paper's 5589.84 s: the total section time of the sequential run
/// (`runs` must start with the smallest scale).
pub fn seq_total(runs: &[ConvRun]) -> f64 {
    runs[0].section_total.values().sum()
}

/// Fig. 6 rows — inferred partial speedup bounds from the HALO section,
/// next to the paper's values.
pub fn fig6_rows(runs: &[ConvRun]) -> Vec<Vec<String>> {
    let seq = seq_total(runs);
    let paper = fig6_paper();
    runs.iter()
        .filter(|r| paper.contains_key(&r.p))
        .map(|r| {
            let halo = r.section_total["HALO"];
            let b = speedup::partial_bound(seq, halo, r.p);
            let (ph, pb) = paper[&r.p];
            vec![r.p.to_string(), f2(halo), f2(b), f2(ph), f2(pb)]
        })
        .collect()
}

/// The process counts of the weak-scaling study.
pub const WEAK_PS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Rows of image kept per rank in the weak-scaling study (1/8 of the
/// paper's 3744-row image).
pub const WEAK_ROWS_PER_RANK: usize = 468;

/// Header of `results/weak_scaling.csv`.
pub const WEAK_HEADER: [&str; 6] = [
    "p",
    "height",
    "wall_s",
    "weak_eff",
    "scaled_speedup",
    "gustafson_fs",
];

/// Weak-scaling rows from `(p, wall_secs)` points in ascending-`p` order
/// (the `p = 1` point is the Gustafson baseline).
pub fn weak_scaling_rows(rows_per_rank: usize, walls: &[(usize, f64)]) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let mut t1 = 0.0;
    for &(p, wall) in walls {
        if p == 1 {
            t1 = wall;
        }
        let eff = speedup::weak_efficiency(t1, wall);
        let scaled = speedup::scaled_speedup_measured(t1, wall, p);
        let fs = speedup::gustafson_serial_fraction(scaled, p);
        rows.push(vec![
            p.to_string(),
            (rows_per_rank * p).to_string(),
            f2(wall),
            format!("{eff:.3}"),
            f2(scaled),
            format!("{fs:.4}"),
        ]);
    }
    rows
}

// ---------------------------------------------------------------------
// Output helpers
// ---------------------------------------------------------------------

/// Write rows as CSV under `results/` (creating the directory), returning
/// the path written.
pub fn write_csv(
    dir: &Path,
    name: &str,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{}", header.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(path)
}

/// Render an aligned text table (header + rows) to a string.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(header.to_vec(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(|s| s.as_str()).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Format a float with 2 decimals (table cells).
pub fn f2(x: f64) -> String {
    if x.is_infinite() {
        "inf".to_string()
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_measurement_smoke() {
        let m = machine::presets::nehalem_cluster();
        let run = measure_convolution(4, 5, &m, &[1, 2]);
        assert_eq!(run.p, 4);
        assert!(run.wall > 0.0);
        assert!(run.section_total["CONVOLVE"] > 0.0);
        let pct_sum: f64 = convolution::SECTIONS.iter().map(|l| run.percent(l)).sum();
        assert!((pct_sum - 100.0).abs() < 1e-6, "{pct_sum}");
    }

    #[test]
    fn lulesh_measurement_smoke() {
        let m = machine::presets::knl();
        let run = measure_lulesh(1, 8, 3, 2, &m, 1);
        assert!(run.walltime > 0.0);
        assert!(run.nodal > 0.0 && run.elements > 0.0);
        assert!(run.nodal + run.elements < run.walltime * 1.01);
    }

    #[test]
    fn table_rendering() {
        let t = render_table(
            &["p", "time"],
            &[
                vec!["1".into(), "10.00".into()],
                vec!["64".into(), "0.50".into()],
            ],
        );
        assert!(t.contains(" p   time"));
        assert!(t.contains("64   0.50"));
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("bench-csv-test");
        let path = write_csv(&dir, "test", &["a", "b"], &[vec!["1".into(), "2".into()]]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        std::fs::remove_file(path).ok();
    }
}
