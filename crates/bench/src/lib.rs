//! Shared experiment harness: configured runs of the two benchmarks with
//! section profiling, result rows for every figure, and CSV/table output.
//!
//! The `figures` binary (this crate's `src/bin/figures.rs`) drives these
//! runners to regenerate every table and figure of the paper; the Criterion
//! benches reuse them for the microbenchmark ablations.

use convolution::{run_convolution, ConvConfig};
use lulesh_proxy::{run_lulesh, LuleshConfig};
use machine::MachineModel;
use mpi_sections::{Profile, SectionProfiler, SectionRuntime, VerifyMode};
use mpisim::WorldBuilder;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

/// One profiled run of the convolution benchmark.
#[derive(Debug, Clone)]
pub struct ConvRun {
    /// Number of MPI processes.
    pub p: usize,
    /// Simulated wall time (makespan) in seconds.
    pub wall: f64,
    /// Total time per section, summed across ranks (Fig. 5b), in seconds.
    pub section_total: BTreeMap<String, f64>,
}

impl ConvRun {
    /// Average time per process for a section (Fig. 5c).
    pub fn avg_per_rank(&self, label: &str) -> f64 {
        self.section_total.get(label).copied().unwrap_or(0.0) / self.p as f64
    }

    /// Percentage of execution spent in a section (Fig. 5a): its share of
    /// the sum of all leaf-section totals.
    pub fn percent(&self, label: &str) -> f64 {
        let denom: f64 = self.section_total.values().sum();
        if denom == 0.0 {
            return 0.0;
        }
        100.0 * self.section_total.get(label).copied().unwrap_or(0.0) / denom
    }
}

/// Run the convolution benchmark once at scale `p`, returning averaged
/// section totals over `seeds` repetitions (the paper averages 20 runs).
pub fn measure_convolution(
    p: usize,
    steps: usize,
    machine: &MachineModel,
    seeds: &[u64],
) -> ConvRun {
    assert!(!seeds.is_empty());
    let mut acc: BTreeMap<String, f64> = BTreeMap::new();
    let mut wall = 0.0;
    for &seed in seeds {
        let (profile, makespan) = conv_profile(p, steps, machine, seed);
        wall += makespan;
        for label in convolution::SECTIONS {
            let t = profile
                .get_world(label)
                .map(|s| s.total_own_secs)
                .unwrap_or(0.0);
            *acc.entry(label.to_string()).or_insert(0.0) += t;
        }
    }
    let n = seeds.len() as f64;
    acc.values_mut().for_each(|v| *v /= n);
    ConvRun {
        p,
        wall: wall / n,
        section_total: acc,
    }
}

/// One convolution run, returning the full section profile.
pub fn conv_profile(p: usize, steps: usize, machine: &MachineModel, seed: u64) -> (Profile, f64) {
    conv_profile_on(None, p, steps, machine, seed)
}

/// [`conv_profile`] with an explicit execution engine (`None` keeps the
/// builder default: DES on x86-64, honoring `MPISIM_ENGINE`). The bench
/// bin uses this to pin each engine when comparing them.
pub fn conv_profile_on(
    engine: Option<mpisim::Engine>,
    p: usize,
    steps: usize,
    machine: &MachineModel,
    seed: u64,
) -> (Profile, f64) {
    let sections = SectionRuntime::new(VerifyMode::Off);
    let profiler = SectionProfiler::new();
    sections.attach(profiler.clone());
    let s = sections.clone();
    let cfg = Arc::new(ConvConfig::paper(steps));
    let mut builder = WorldBuilder::new(p)
        .machine(machine.clone())
        .seed(seed)
        .tool(sections.clone());
    if let Some(engine) = engine {
        builder = builder.engine(engine);
    }
    let report = builder
        .run(move |pr| {
            run_convolution(pr, &s, &cfg);
        })
        .expect("convolution run failed");
    (profiler.snapshot(), report.makespan_secs())
}

/// One profiled run of the LULESH proxy.
#[derive(Debug, Clone)]
pub struct LuleshRun {
    pub p: usize,
    pub threads: usize,
    /// `timeloop` average time per process (the "Walltime" series of
    /// Figs. 8–10), in seconds.
    pub walltime: f64,
    /// `LagrangeNodal` average time per process.
    pub nodal: f64,
    /// `LagrangeElements` average time per process.
    pub elements: f64,
}

/// Run the LULESH proxy in the given hybrid configuration (timing
/// fidelity) and extract the Fig. 8–10 series.
pub fn measure_lulesh(
    p: usize,
    s: usize,
    iterations: usize,
    threads: usize,
    machine: &MachineModel,
    seed: u64,
) -> LuleshRun {
    let profile = lulesh_profile(p, s, iterations, threads, machine, seed);
    let avg = |label: &str| {
        profile
            .get_world(label)
            .map(|st| st.avg_per_rank_secs())
            .unwrap_or(0.0)
    };
    LuleshRun {
        p,
        threads,
        walltime: avg("timeloop"),
        nodal: avg("LagrangeNodal"),
        elements: avg("LagrangeElements"),
    }
}

/// One LULESH-proxy run, returning the full section profile.
pub fn lulesh_profile(
    p: usize,
    s: usize,
    iterations: usize,
    threads: usize,
    machine: &MachineModel,
    seed: u64,
) -> Profile {
    let sections = SectionRuntime::new(VerifyMode::Off);
    let profiler = SectionProfiler::new();
    sections.attach(profiler.clone());
    let sh = sections.clone();
    let cfg = Arc::new(LuleshConfig::timing(s, iterations, threads));
    WorldBuilder::new(p)
        .machine(machine.clone())
        .seed(seed)
        .tool(sections.clone())
        .run(move |pr| {
            run_lulesh(pr, &sh, &cfg);
        })
        .expect("lulesh run failed");
    profiler.snapshot()
}

// ---------------------------------------------------------------------
// Output helpers
// ---------------------------------------------------------------------

/// Write rows as CSV under `results/` (creating the directory), returning
/// the path written.
pub fn write_csv(
    dir: &Path,
    name: &str,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{}", header.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(path)
}

/// Render an aligned text table (header + rows) to a string.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(header.to_vec(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(|s| s.as_str()).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Format a float with 2 decimals (table cells).
pub fn f2(x: f64) -> String {
    if x.is_infinite() {
        "inf".to_string()
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_measurement_smoke() {
        let m = machine::presets::nehalem_cluster();
        let run = measure_convolution(4, 5, &m, &[1, 2]);
        assert_eq!(run.p, 4);
        assert!(run.wall > 0.0);
        assert!(run.section_total["CONVOLVE"] > 0.0);
        let pct_sum: f64 = convolution::SECTIONS.iter().map(|l| run.percent(l)).sum();
        assert!((pct_sum - 100.0).abs() < 1e-6, "{pct_sum}");
    }

    #[test]
    fn lulesh_measurement_smoke() {
        let m = machine::presets::knl();
        let run = measure_lulesh(1, 8, 3, 2, &m, 1);
        assert!(run.walltime > 0.0);
        assert!(run.nodal > 0.0 && run.elements > 0.0);
        assert!(run.nodal + run.elements < run.walltime * 1.01);
    }

    #[test]
    fn table_rendering() {
        let t = render_table(
            &["p", "time"],
            &[
                vec!["1".into(), "10.00".into()],
                vec!["64".into(), "0.50".into()],
            ],
        );
        assert!(t.contains(" p   time"));
        assert!(t.contains("64   0.50"));
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("bench-csv-test");
        let path = write_csv(&dir, "test", &["a", "b"], &[vec!["1".into(), "2".into()]]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        std::fs::remove_file(path).ok();
    }
}
