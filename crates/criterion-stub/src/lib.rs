//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API shape the workspace's benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `throughput`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple wall-clock timer that
//! prints mean time per iteration. No statistics, plots, or HTML reports;
//! enough to keep `cargo bench` compiling and producing usable numbers
//! without network access to crates.io.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting a benched
/// computation whose result is otherwise unused.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    /// Substring filter from the CLI (`cargo bench -- <filter>`).
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as the first free
        // argument; `--bench` etc. are flags added by the harness.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.is_empty());
        Criterion { filter }
    }
}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            sample_size: 10,
            throughput: None,
        }
    }

    fn matches(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }
}

/// Work-per-iteration annotation (reported as a rate when set).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier `function_name/parameter` for one benchmark in a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayable parameter.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate the amount of work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark over `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        if !self.criterion.matches(&id.id) {
            return self;
        }
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        // One untimed warm-up pass, then the timed samples.
        routine(&mut bencher, input);
        bencher.total = Duration::ZERO;
        bencher.iters = 0;
        for _ in 0..self.sample_size {
            routine(&mut bencher, input);
        }
        bencher.report(&id.id, self.throughput);
        self
    }

    /// Run one benchmark with no per-benchmark input.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if !self.criterion.matches(id) {
            return self;
        }
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        routine(&mut bencher);
        bencher.total = Duration::ZERO;
        bencher.iters = 0;
        for _ in 0..self.sample_size {
            routine(&mut bencher);
        }
        bencher.report(id, self.throughput);
        self
    }

    /// End the group (kept for API parity; printing is incremental).
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.total += start.elapsed();
        self.iters += 1;
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            println!("{id:<40} (no samples)");
            return;
        }
        let mean = self.total / u32::try_from(self.iters).unwrap_or(u32::MAX);
        let rate = throughput.map(|t| {
            let per_sec = |n: u64| n as f64 / mean.as_secs_f64().max(1e-12);
            match t {
                Throughput::Elements(n) => format!("  {:>12.0} elem/s", per_sec(n)),
                Throughput::Bytes(n) => format!("  {:>12.0} B/s", per_sec(n)),
            }
        });
        println!(
            "{id:<40} {mean:>12.3?}/iter over {} samples{}",
            self.iters,
            rate.unwrap_or_default()
        );
    }
}

/// Bundle benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_iterations() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(4));
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 1), &2u64, |b, &x| {
            b.iter(|| x * 2);
            calls += 1;
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut group = c.benchmark_group("g");
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 1), &(), |b, ()| {
            b.iter(|| ());
            calls += 1;
        });
        assert_eq!(calls, 0);
    }
}
