//! Property tests for the shared-memory model: schedules partition
//! iteration spaces exactly, bodies execute exactly once per index, and
//! region pricing respects basic monotonicities.

use machine::{presets, OmpModel, Work};
use mpisim::WorldBuilder;
use proptest::prelude::*;
use shmem::{Schedule, Team};

proptest! {
    #[test]
    fn static_ranges_partition(n in 0usize..10_000, threads in 1usize..128) {
        let mut covered = 0;
        let mut prev_end = 0;
        for tid in 0..threads {
            let (s, e) = Schedule::static_range(n, threads, tid);
            prop_assert_eq!(s, prev_end);
            prop_assert!(e >= s);
            // Balanced to within one iteration.
            prop_assert!(e - s <= n / threads + 1);
            covered += e - s;
            prev_end = e;
        }
        prop_assert_eq!(covered, n);
    }

    #[test]
    fn chunk_counts_bounded(n in 1usize..100_000, threads in 1usize..256, chunk in 1usize..512) {
        for sched in [
            Schedule::Static,
            Schedule::StaticChunk(chunk),
            Schedule::Dynamic(chunk),
            Schedule::Guided,
        ] {
            let c = sched.chunk_count(n, threads);
            prop_assert!(c >= 1);
            prop_assert!(c <= n, "never more chunks than iterations ({sched:?})");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_index_visited_once(
        n in 0usize..2_000,
        threads in 1usize..64,
        schedule in prop_oneof![
            Just(Schedule::Static),
            (1usize..64).prop_map(Schedule::StaticChunk),
            (1usize..64).prop_map(Schedule::Dynamic),
            Just(Schedule::Guided),
        ],
    ) {
        let report = WorldBuilder::new(1)
            .run(move |p| {
                let mut seen = vec![0u8; n];
                Team::new(threads)
                    .with_schedule(schedule)
                    .parallel_for_weighted(p, n, |_| Work::flops(1.0), |i| seen[i] += 1);
                seen
            })
            .unwrap();
        prop_assert!(report.results[0].iter().all(|&c| c == 1));
    }

    #[test]
    fn pricing_monotone_in_work(
        n in 1usize..10_000,
        threads in 1usize..64,
        flops in 1.0f64..1e9,
    ) {
        let report = WorldBuilder::new(1)
            .run(move |p| {
                let team = Team::new(threads);
                let small = team.for_cost_uniform(p, n, Work::flops(flops));
                let large = team.for_cost_uniform(p, n, Work::flops(flops * 2.0));
                (small, large)
            })
            .unwrap();
        let (small, large) = report.results[0];
        prop_assert!(large >= small);
        prop_assert!(small >= 0.0);
    }

    #[test]
    fn ideal_machine_region_cost_is_exact(
        n in 1usize..10_000,
        threads in 1usize..64,
    ) {
        // On the ideal machine (1 Gflop/s, free runtime) a uniform loop of
        // k flops per item costs exactly max_chunk * k / 1e9 seconds.
        let report = WorldBuilder::new(1)
            .run(move |p| {
                Team::new(threads).for_cost_uniform(p, n, Work::flops(1000.0))
            })
            .unwrap();
        let max_chunk = n.div_ceil(threads);
        let expect = max_chunk as f64 * 1000.0 / 1e9;
        prop_assert!((report.results[0] - expect).abs() < 1e-12);
    }

    #[test]
    fn overheads_grow_with_threads(t_small in 1usize..32, extra in 1usize..32) {
        let mut m = presets::ideal();
        m.omp = OmpModel {
            fork_base: 1e-6,
            fork_per_thread: 1e-6,
            barrier_base: 1e-6,
            barrier_per_round: 1e-6,
            dynamic_per_chunk: 0.0,
        };
        // Empty loop: pure overhead. More threads can only cost more.
        let report = WorldBuilder::new(1)
            .machine(m)
            .run(move |p| {
                let a = Team::new(t_small).for_cost_uniform(p, 0, Work::ZERO);
                let b = Team::new(t_small + extra).for_cost_uniform(p, 0, Work::ZERO);
                (a, b)
            })
            .unwrap();
        let (a, b) = report.results[0];
        prop_assert!(b >= a);
    }

    #[test]
    fn reduction_matches_sequential_fold(n in 0usize..5_000, threads in 1usize..64) {
        let report = WorldBuilder::new(1)
            .run(move |p| {
                Team::new(threads).parallel_reduce_uniform(
                    p,
                    n,
                    Work::flops(1.0),
                    0u64,
                    |acc, i| acc + (i as u64) * (i as u64),
                )
            })
            .unwrap();
        let expect: u64 = (0..n as u64).map(|i| i * i).sum();
        prop_assert_eq!(report.results[0], expect);
    }
}
