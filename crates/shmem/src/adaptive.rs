//! Dynamic parallelism restriction — the paper's §8 closing idea: "we
//! would like to explore the possibility of dynamically restraining
//! parallelism for non-scalable sections — investigating potential
//! improvements for the overall computation."
//!
//! [`AdaptiveTeam`] manages one thread-count decision per region label.
//! For each label it first *probes* a geometric ladder of candidate
//! thread counts (1, 2, 4, …, max), measuring each candidate over a fixed
//! number of invocations, then *commits* to the fastest. A region beyond
//! its inflexion point therefore converges onto the inflexion-point thread
//! count instead of wasting the full team — turning the paper's
//! "configurations beyond the inflexion point should never be ran" from a
//! post-mortem observation into a runtime policy.

use crate::schedule::Schedule;
use crate::team::Team;
use machine::Work;
use mpisim::Proc;
use std::collections::HashMap;

/// How many invocations each candidate thread count is measured for
/// before moving on (averages out per-thread jitter).
const PROBES_PER_CANDIDATE: usize = 3;

#[derive(Debug, Clone)]
struct AdaptState {
    /// The candidate ladder, ascending.
    candidates: Vec<usize>,
    /// Index of the candidate currently being probed.
    probing: usize,
    /// Invocations of the current candidate so far.
    probe_calls: usize,
    /// Accumulated seconds of the current candidate.
    probe_secs: f64,
    /// Best (threads, mean seconds) seen so far.
    best: Option<(usize, f64)>,
    /// Committed thread count once probing finished.
    committed: Option<usize>,
}

impl AdaptState {
    fn new(max_threads: usize) -> AdaptState {
        let mut candidates = Vec::new();
        let mut t = 1;
        while t < max_threads {
            candidates.push(t);
            t *= 2;
        }
        candidates.push(max_threads);
        candidates.dedup();
        AdaptState {
            candidates,
            probing: 0,
            probe_calls: 0,
            probe_secs: 0.0,
            best: None,
            committed: None,
        }
    }

    fn current_threads(&self) -> usize {
        self.committed
            .unwrap_or_else(|| self.candidates[self.probing])
    }

    fn record(&mut self, secs: f64) {
        if self.committed.is_some() {
            return;
        }
        self.probe_calls += 1;
        self.probe_secs += secs;
        if self.probe_calls >= PROBES_PER_CANDIDATE {
            let mean = self.probe_secs / self.probe_calls as f64;
            let threads = self.candidates[self.probing];
            let improved = match self.best {
                None => true,
                Some((_, best_mean)) => mean < best_mean,
            };
            if improved {
                self.best = Some((threads, mean));
            }
            self.probe_calls = 0;
            self.probe_secs = 0.0;
            self.probing += 1;
            if self.probing >= self.candidates.len() {
                // Ladder exhausted: commit to the winner.
                self.committed = Some(self.best.expect("probed at least once").0);
            } else if !improved && self.probing >= 2 {
                // The curve turned upward: we passed the inflexion point;
                // stop climbing (unimodal assumption, as in Fig. 10).
                self.committed = Some(self.best.expect("probed at least once").0);
            }
        }
    }
}

/// A per-label adaptive thread-count controller.
#[derive(Debug)]
pub struct AdaptiveTeam {
    max_threads: usize,
    schedule: Schedule,
    state: HashMap<String, AdaptState>,
}

impl AdaptiveTeam {
    /// A controller allowed to use up to `max_threads` threads.
    pub fn new(max_threads: usize) -> AdaptiveTeam {
        AdaptiveTeam {
            max_threads: max_threads.max(1),
            schedule: Schedule::Static,
            state: HashMap::new(),
        }
    }

    /// Override the schedule used by adapted regions.
    pub fn with_schedule(mut self, schedule: Schedule) -> AdaptiveTeam {
        self.schedule = schedule;
        self
    }

    /// The thread count the controller would use for `label` right now.
    pub fn threads_for(&self, label: &str) -> usize {
        self.state
            .get(label)
            .map(|s| s.current_threads())
            .unwrap_or(1)
    }

    /// Has the controller committed a final decision for `label`?
    pub fn decided(&self, label: &str) -> Option<usize> {
        self.state.get(label).and_then(|s| s.committed)
    }

    /// Run a timing-only uniform region under the adaptive policy;
    /// returns the region seconds charged.
    pub fn for_cost_uniform(&mut self, p: &mut Proc, label: &str, n: usize, per_item: Work) -> f64 {
        let max = self.max_threads;
        let state = self
            .state
            .entry(label.to_string())
            .or_insert_with(|| AdaptState::new(max));
        let team = Team::new(state.current_threads()).with_schedule(self.schedule);
        let secs = team.for_cost_uniform(p, n, per_item);
        state.record(secs);
        secs
    }

    /// Run a full-fidelity uniform region under the adaptive policy.
    pub fn parallel_for_uniform<F>(
        &mut self,
        p: &mut Proc,
        label: &str,
        n: usize,
        per_item: Work,
        body: F,
    ) -> f64
    where
        F: FnMut(usize),
    {
        let max = self.max_threads;
        let state = self
            .state
            .entry(label.to_string())
            .or_insert_with(|| AdaptState::new(max));
        let team = Team::new(state.current_threads()).with_schedule(self.schedule);
        let secs = team.parallel_for_uniform(p, n, per_item, body);
        state.record(secs);
        secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::{presets, OmpModel};
    use mpisim::WorldBuilder;

    /// A machine where the optimum for 0.576 s of work is 24 threads
    /// (W/t + 1e-3·t minimized at sqrt(0.576/1e-3) = 24).
    fn inflexion_machine() -> machine::MachineModel {
        let mut m = presets::ideal();
        m.cores_per_node = 1024;
        m.omp = OmpModel {
            fork_per_thread: 1e-3,
            ..OmpModel::FREE
        };
        m
    }

    #[test]
    fn converges_near_the_inflexion_point() {
        let report = WorldBuilder::new(1)
            .machine(inflexion_machine())
            .run(|p| {
                let mut adaptive = AdaptiveTeam::new(256);
                for _ in 0..200 {
                    adaptive.for_cost_uniform(p, "kernel", 576, Work::flops(1e6));
                }
                adaptive.decided("kernel")
            })
            .unwrap();
        let decided = report.results[0].expect("decision reached");
        // The ladder contains 16 and 32; the true optimum is 24, whose
        // neighbours cost within ~4%: either ladder value is acceptable,
        // anything far off is not.
        assert!(
            decided == 16 || decided == 32,
            "decided {decided}, expected near 24"
        );
    }

    #[test]
    fn scalable_region_commits_to_max() {
        // No overheads: more threads always win; must commit to max.
        let report = WorldBuilder::new(1)
            .machine(presets::ideal())
            .run(|p| {
                let mut adaptive = AdaptiveTeam::new(64);
                for _ in 0..200 {
                    adaptive.for_cost_uniform(p, "kernel", 4096, Work::flops(1e6));
                }
                adaptive.decided("kernel")
            })
            .unwrap();
        assert_eq!(report.results[0], Some(64));
    }

    #[test]
    fn serial_dominated_region_stays_small() {
        // Overhead-only "region": 1 thread is optimal.
        let mut m = presets::ideal();
        m.omp = OmpModel {
            fork_base: 1e-4,
            fork_per_thread: 1e-3,
            ..OmpModel::FREE
        };
        let report = WorldBuilder::new(1)
            .machine(m)
            .run(|p| {
                let mut adaptive = AdaptiveTeam::new(64);
                for _ in 0..200 {
                    adaptive.for_cost_uniform(p, "tiny", 4, Work::flops(10.0));
                }
                adaptive.decided("tiny")
            })
            .unwrap();
        assert_eq!(report.results[0], Some(1));
    }

    #[test]
    fn labels_adapt_independently() {
        let report = WorldBuilder::new(1)
            .machine(inflexion_machine())
            .run(|p| {
                let mut adaptive = AdaptiveTeam::new(256);
                for _ in 0..200 {
                    adaptive.for_cost_uniform(p, "big", 40_000, Work::flops(1e6));
                    adaptive.for_cost_uniform(p, "small", 64, Work::flops(1e6));
                }
                (adaptive.decided("big"), adaptive.decided("small"))
            })
            .unwrap();
        let (big, small) = report.results[0];
        assert!(big.unwrap() > small.unwrap(), "{big:?} vs {small:?}");
    }

    #[test]
    fn adaptive_beats_oversized_fixed_team() {
        // Total virtual time with adaptation must beat always-max once the
        // region is past its inflexion at max threads.
        let time_with = |adaptive: bool| -> f64 {
            WorldBuilder::new(1)
                .machine(inflexion_machine())
                .run(move |p| {
                    if adaptive {
                        let mut team = AdaptiveTeam::new(256);
                        for _ in 0..300 {
                            team.for_cost_uniform(p, "k", 576, Work::flops(1e6));
                        }
                    } else {
                        let team = Team::new(256);
                        for _ in 0..300 {
                            team.for_cost_uniform(p, 576, Work::flops(1e6));
                        }
                    }
                    p.now().as_secs_f64()
                })
                .unwrap()
                .results[0]
        };
        let fixed = time_with(false);
        let adapted = time_with(true);
        assert!(
            adapted < fixed * 0.6,
            "adaptive {adapted} should clearly beat fixed-256 {fixed}"
        );
    }

    #[test]
    fn body_still_runs_every_index() {
        let report = WorldBuilder::new(1)
            .run(|p| {
                let mut adaptive = AdaptiveTeam::new(8);
                let mut seen = vec![0u8; 50];
                for _ in 0..5 {
                    adaptive.parallel_for_uniform(p, "k", 50, Work::flops(1.0), |i| seen[i] += 1);
                }
                seen
            })
            .unwrap();
        assert!(report.results[0].iter().all(|&c| c == 5));
    }
}
