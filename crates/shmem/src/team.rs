//! Thread teams and parallel regions.

use crate::schedule::Schedule;
use machine::Work;
use mpisim::Proc;

/// A thread team: the simulated equivalent of `#pragma omp parallel`.
///
/// ```
/// use machine::Work;
/// use shmem::Team;
///
/// let report = mpisim::WorldBuilder::new(1).run(|p| {
///     // 1000 items of 1e6 flops on 10 threads of the ideal machine
///     // (1 Gflop/s, zero fork cost): exactly 0.1 s.
///     Team::new(10).for_cost_uniform(p, 1000, Work::flops(1e6))
/// }).unwrap();
/// assert!((report.results[0] - 0.1).abs() < 1e-12);
/// ```
///
/// A team does not own OS threads — loop bodies run sequentially on the
/// simulated rank while the region's *cost* is priced as if `threads`
/// hardware threads executed it, including fork/join overhead, per-thread
/// jitter and memory contention from the other ranks on the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Team {
    threads: usize,
    schedule: Schedule,
}

impl Team {
    /// A team of `threads` threads with the default static schedule.
    /// Thread counts are clamped to at least 1.
    pub fn new(threads: usize) -> Team {
        Team {
            threads: threads.max(1),
            schedule: Schedule::Static,
        }
    }

    /// Override the loop schedule.
    pub fn with_schedule(mut self, schedule: Schedule) -> Team {
        self.schedule = schedule;
        self
    }

    /// Number of threads in the team.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The team's schedule.
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// Software threads active on the node while this team runs: every rank
    /// on the node is assumed to run a team of the same size (the SPMD
    /// hybrid pattern).
    fn active_on_node(&self, p: &Proc) -> usize {
        p.ranks_on_node().saturating_mul(self.threads)
    }

    /// Seconds one thread needs for `work` under this team's contention.
    fn item_secs(&self, p: &Proc, work: Work) -> f64 {
        p.price_contended(work, self.active_on_node(p))
    }

    /// Price a region from per-thread loads (seconds each) and advance the
    /// rank's clock. Returns the region's duration in seconds.
    fn charge_region(&self, p: &mut Proc, loads: &[f64], n_items: usize) -> f64 {
        let omp = &p.machine().omp;
        let t = self.threads;
        let fork = omp.fork_secs(t);
        let barrier = omp.barrier_secs(t);
        let sched = if self.schedule.is_dynamic() {
            // Bookkeeping is distributed over the team.
            omp.dynamic_secs(self.schedule.chunk_count(n_items, t)) / t as f64
        } else {
            0.0
        };
        // The slowest (jittered) thread sets the region time; the
        // jitter-free baseline (median factor is 1) is the slowest raw
        // load, reported alongside so replay tools can null the noise.
        let mut body = 0.0f64;
        let mut body_base = 0.0f64;
        for &load in loads {
            let f = p.jitter_factor();
            body = body.max(load * f);
            body_base = body_base.max(load);
        }
        let secs = fork + body + sched + barrier;
        p.advance_jittered(fork + body_base + sched + barrier, secs);
        secs
    }

    /// Per-thread loads for `n` iterations of uniform cost `per_item`.
    fn uniform_loads(&self, p: &Proc, n: usize, per_item: Work) -> Vec<f64> {
        let item = self.item_secs(p, per_item);
        match self.schedule {
            Schedule::Static => (0..self.threads)
                .map(|tid| {
                    let (s, e) = Schedule::static_range(n, self.threads, tid);
                    (e - s) as f64 * item
                })
                .collect(),
            Schedule::StaticChunk(c) => {
                // Round-robin chunk assignment, matching the execution
                // mapping in `parallel_for_weighted`.
                let c = c.max(1);
                let mut loads = vec![0.0f64; self.threads];
                for (chunk_idx, chunk_start) in (0..n).step_by(c).enumerate() {
                    let len = c.min(n - chunk_start);
                    loads[chunk_idx % self.threads] += len as f64 * item;
                }
                loads
            }
            Schedule::Dynamic(chunk) => {
                // Near-perfect balance plus a one-chunk tail on one thread.
                let even = n as f64 / self.threads as f64 * item;
                let tail = chunk.max(1).min(n) as f64 * item;
                let mut loads = vec![even; self.threads];
                if let Some(first) = loads.first_mut() {
                    *first += tail / 2.0;
                }
                loads
            }
            Schedule::Guided => {
                let even = n as f64 / self.threads as f64 * item;
                let tail = (n.div_ceil(4 * self.threads)).max(1).min(n) as f64 * item;
                let mut loads = vec![even; self.threads];
                if let Some(first) = loads.first_mut() {
                    *first += tail / 2.0;
                }
                loads
            }
        }
    }

    /// Timing-only parallel loop with uniform per-iteration cost (no body
    /// executed). Returns the region's duration in seconds.
    pub fn for_cost_uniform(&self, p: &mut Proc, n: usize, per_item: Work) -> f64 {
        let loads = self.uniform_loads(p, n, per_item);
        self.charge_region(p, &loads, n)
    }

    /// Parallel loop with uniform per-iteration cost; the body executes
    /// sequentially for every index (full-fidelity mode).
    pub fn parallel_for_uniform<F>(
        &self,
        p: &mut Proc,
        n: usize,
        per_item: Work,
        mut body: F,
    ) -> f64
    where
        F: FnMut(usize),
    {
        for i in 0..n {
            body(i);
        }
        self.for_cost_uniform(p, n, per_item)
    }

    /// Parallel loop with per-iteration weights given by a closure; the
    /// body executes sequentially. Use for irregular loops.
    #[allow(clippy::needless_range_loop)] // tid indexes both range and loads
    pub fn parallel_for_weighted<W, F>(&self, p: &mut Proc, n: usize, weight: W, mut body: F) -> f64
    where
        W: Fn(usize) -> Work,
        F: FnMut(usize),
    {
        // Accumulate per-thread loads according to the schedule's mapping.
        let mut loads = vec![0.0f64; self.threads];
        match self.schedule {
            Schedule::Static => {
                for tid in 0..self.threads {
                    let (s, e) = Schedule::static_range(n, self.threads, tid);
                    for i in s..e {
                        loads[tid] += self.item_secs(p, weight(i));
                        body(i);
                    }
                }
            }
            Schedule::StaticChunk(c) => {
                let c = c.max(1);
                for (chunk_idx, chunk_start) in (0..n).step_by(c).enumerate() {
                    let tid = chunk_idx % self.threads;
                    for i in chunk_start..(chunk_start + c).min(n) {
                        loads[tid] += self.item_secs(p, weight(i));
                        body(i);
                    }
                }
            }
            Schedule::Dynamic(_) | Schedule::Guided => {
                // Model ideal load balancing: spread total evenly.
                let mut total = 0.0;
                for i in 0..n {
                    total += self.item_secs(p, weight(i));
                    body(i);
                }
                let even = total / self.threads as f64;
                loads.iter_mut().for_each(|l| *l = even);
            }
        }
        self.charge_region(p, &loads, n)
    }

    /// Parallel reduction with uniform per-iteration cost: the fold runs
    /// sequentially (deterministic result), the cost is a parallel loop
    /// plus a log-depth combine priced as one extra barrier.
    pub fn parallel_reduce_uniform<T, F>(
        &self,
        p: &mut Proc,
        n: usize,
        per_item: Work,
        init: T,
        mut fold: F,
    ) -> T
    where
        F: FnMut(T, usize) -> T,
    {
        let mut acc = init;
        for i in 0..n {
            acc = fold(acc, i);
        }
        let loads = self.uniform_loads(p, n, per_item);
        self.charge_region(p, &loads, n);
        // Combine tree: one extra barrier-ish step.
        let extra = p.machine().omp.barrier_secs(self.threads);
        p.advance_secs(extra);
        acc
    }

    /// An explicit team barrier (`#pragma omp barrier`).
    pub fn barrier(&self, p: &mut Proc) {
        let secs = p.machine().omp.barrier_secs(self.threads);
        p.advance_secs(secs);
    }

    /// A `single`/`master` region: `body` runs on one thread while the
    /// team waits; costs the body plus a barrier.
    pub fn single<R, F>(&self, p: &mut Proc, work: Work, body: F) -> R
    where
        F: FnOnce() -> R,
    {
        let result = body();
        let secs = self.item_secs(p, work);
        p.advance_secs(secs);
        self.barrier(p);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::{presets, OmpModel, Work};
    use mpisim::WorldBuilder;

    fn run1<R: Send>(m: machine::MachineModel, f: impl Fn(&mut Proc) -> R + Send + Sync) -> R {
        WorldBuilder::new(1)
            .machine(m)
            .run(f)
            .unwrap()
            .results
            .remove(0)
    }

    #[test]
    fn ideal_machine_scales_perfectly() {
        // No overheads: t threads cut the time exactly t-fold.
        let m = presets::ideal();
        let t1 = run1(m.clone(), |p| {
            Team::new(1).for_cost_uniform(p, 1000, Work::flops(1e6))
        });
        let t10 = run1(m, |p| {
            Team::new(10).for_cost_uniform(p, 1000, Work::flops(1e6))
        });
        assert!((t1 / t10 - 10.0).abs() < 1e-9, "t1={t1} t10={t10}");
    }

    #[test]
    fn body_executes_every_index_once() {
        let m = presets::ideal();
        let sum = run1(m, |p| {
            let mut seen = vec![0u32; 100];
            Team::new(7).parallel_for_uniform(p, 100, Work::flops(1.0), |i| seen[i] += 1);
            assert!(seen.iter().all(|&c| c == 1));
            seen.iter().sum::<u32>()
        });
        assert_eq!(sum, 100);
    }

    #[test]
    fn weighted_static_prices_imbalance() {
        // All the weight on the first thread's range: region ~ total, not
        // total/threads.
        let m = presets::ideal();
        let secs = run1(m, |p| {
            Team::new(4).parallel_for_weighted(
                p,
                100,
                |i| {
                    if i < 25 {
                        Work::flops(1e6)
                    } else {
                        Work::ZERO
                    }
                },
                |_| {},
            )
        });
        assert!((secs - 25.0 * 1e-3).abs() < 1e-9, "secs={secs}");
    }

    #[test]
    fn dynamic_balances_imbalanced_loads() {
        let m = presets::ideal();
        let weight = |i: usize| {
            if i < 25 {
                Work::flops(1e6)
            } else {
                Work::ZERO
            }
        };
        let static_secs = run1(m.clone(), |p| {
            Team::new(4).parallel_for_weighted(p, 100, weight, |_| {})
        });
        let dynamic_secs = run1(m, |p| {
            Team::new(4)
                .with_schedule(Schedule::Dynamic(1))
                .parallel_for_weighted(p, 100, weight, |_| {})
        });
        assert!(
            dynamic_secs < static_secs / 2.0,
            "dynamic {dynamic_secs} vs static {static_secs}"
        );
    }

    #[test]
    fn dynamic_bookkeeping_costs_show_up() {
        let mut m = presets::ideal();
        m.omp = OmpModel {
            dynamic_per_chunk: 1e-5,
            ..OmpModel::FREE
        };
        let coarse = run1(m.clone(), |p| {
            Team::new(4)
                .with_schedule(Schedule::Dynamic(100))
                .for_cost_uniform(p, 10_000, Work::ZERO)
        });
        let fine = run1(m, |p| {
            Team::new(4)
                .with_schedule(Schedule::Dynamic(1))
                .for_cost_uniform(p, 10_000, Work::ZERO)
        });
        assert!(fine > coarse * 10.0, "fine={fine} coarse={coarse}");
    }

    #[test]
    fn reduce_is_deterministic_and_correct() {
        let m = presets::ideal();
        let total = run1(m, |p| {
            Team::new(8)
                .parallel_reduce_uniform(p, 1000, Work::flops(1.0), 0u64, |acc, i| acc + i as u64)
        });
        assert_eq!(total, 499_500);
    }

    #[test]
    fn oversubscription_stops_scaling() {
        // 4-core node, no SMT: 8 threads cannot beat 4.
        let mut m = presets::ideal();
        m.cores_per_node = 4;
        m.hw_threads_per_core = 1;
        m.topology = machine::Topology::SINGLE_NODE;
        let t4 = run1(m.clone(), |p| {
            Team::new(4).for_cost_uniform(p, 64, Work::flops(1e7))
        });
        let t8 = run1(m, |p| {
            Team::new(8).for_cost_uniform(p, 64, Work::flops(1e7))
        });
        assert!(t8 >= t4 * 0.99, "t8={t8} should not beat t4={t4}");
    }

    #[test]
    fn single_region_costs_body_plus_barrier() {
        let mut m = presets::ideal();
        m.omp = OmpModel {
            barrier_base: 1e-3,
            ..OmpModel::FREE
        };
        let (value, now) = run1(m, |p| {
            let v = Team::new(4).single(p, Work::flops(2e9), || 7);
            (v, p.now().as_secs_f64())
        });
        assert_eq!(value, 7);
        assert!((now - (2.0 + 1e-3)).abs() < 1e-9, "now={now}");
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Team::new(0).threads(), 1);
    }

    #[test]
    fn empty_loop_costs_only_overheads() {
        let mut m = presets::ideal();
        m.omp = OmpModel {
            fork_base: 5e-4,
            barrier_base: 5e-4,
            ..OmpModel::FREE
        };
        let secs = run1(m, |p| Team::new(4).for_cost_uniform(p, 0, Work::flops(1e9)));
        assert!((secs - 1e-3).abs() < 1e-12, "secs={secs}");
    }
}
