//! Loop schedules: how iterations map onto threads.
//!
//! The load vector a schedule produces (seconds of work per thread) is the
//! input to the region pricing in [`crate::team`]. `Static` splits
//! contiguously; `Dynamic`/`Guided` balance loads at the cost of scheduler
//! bookkeeping priced by `OmpModel::dynamic_secs`.

/// An OpenMP-style loop schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Contiguous blocks of ~n/t iterations (OpenMP `schedule(static)`).
    #[default]
    Static,
    /// Round-robin blocks of the given chunk size
    /// (`schedule(static, chunk)`).
    StaticChunk(usize),
    /// First-come-first-served chunks (`schedule(dynamic, chunk)`):
    /// near-perfect balance plus per-chunk bookkeeping and a one-chunk tail.
    Dynamic(usize),
    /// Geometrically shrinking chunks (`schedule(guided)`): balance close
    /// to dynamic with roughly `4·t` chunks of bookkeeping.
    Guided,
}

impl Schedule {
    /// The contiguous range of iterations thread `tid` executes under a
    /// static schedule (used both for pricing and for `Static` execution
    /// order). Returns `start..end` indices into `0..n`.
    pub fn static_range(n: usize, threads: usize, tid: usize) -> (usize, usize) {
        let t = threads.max(1);
        let base = n / t;
        let extra = n % t;
        // The first `extra` threads get one extra iteration.
        let start = tid * base + tid.min(extra);
        let len = base + usize::from(tid < extra);
        (start, start + len)
    }

    /// Number of scheduler chunks this schedule hands out for `n`
    /// iterations on `threads` threads (for bookkeeping pricing).
    pub fn chunk_count(&self, n: usize, threads: usize) -> usize {
        let t = threads.max(1);
        match self {
            Schedule::Static => t.min(n.max(1)),
            Schedule::StaticChunk(c) => n.div_ceil((*c).max(1)),
            Schedule::Dynamic(c) => n.div_ceil((*c).max(1)),
            Schedule::Guided => (4 * t).min(n.max(1)),
        }
    }

    /// True for schedules whose chunks are handed out at run time.
    pub fn is_dynamic(&self) -> bool {
        matches!(self, Schedule::Dynamic(_) | Schedule::Guided)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_ranges_partition_exactly() {
        for n in [0usize, 1, 7, 100, 101] {
            for t in [1usize, 2, 3, 8, 17] {
                let mut covered = 0;
                let mut prev_end = 0;
                for tid in 0..t {
                    let (s, e) = Schedule::static_range(n, t, tid);
                    assert_eq!(s, prev_end, "contiguous");
                    assert!(e >= s);
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, n, "n={n} t={t}");
                assert_eq!(prev_end, n);
            }
        }
    }

    #[test]
    fn static_ranges_are_balanced() {
        let t = 7;
        let n = 100;
        let sizes: Vec<usize> = (0..t)
            .map(|tid| {
                let (s, e) = Schedule::static_range(n, t, tid);
                e - s
            })
            .collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
    }

    #[test]
    fn chunk_counts() {
        assert_eq!(Schedule::Static.chunk_count(100, 4), 4);
        assert_eq!(Schedule::StaticChunk(10).chunk_count(100, 4), 10);
        assert_eq!(Schedule::StaticChunk(7).chunk_count(100, 4), 15);
        assert_eq!(Schedule::Dynamic(1).chunk_count(100, 4), 100);
        assert_eq!(Schedule::Guided.chunk_count(100, 4), 16);
        // Never more chunks than iterations for block schedules.
        assert_eq!(Schedule::Static.chunk_count(2, 8), 2);
    }

    #[test]
    fn dynamic_classification() {
        assert!(Schedule::Dynamic(4).is_dynamic());
        assert!(Schedule::Guided.is_dynamic());
        assert!(!Schedule::Static.is_dynamic());
        assert!(!Schedule::StaticChunk(4).is_dynamic());
    }
}
