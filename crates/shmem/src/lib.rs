//! # shmem — an OpenMP-like fork-join model on virtual time
//!
//! The paper's second experiment (LULESH, §5.2) measures *OpenMP* scaling
//! purely from MPI-level sections. To reproduce it we need a shared-memory
//! runtime whose parallel regions cost what OpenMP regions cost: a fork
//! overhead growing with the thread count, per-thread chunks of the loop
//! body, scheduling bookkeeping, per-thread jitter (the slowest thread sets
//! the region time), and a closing barrier.
//!
//! A [`Team`] prices a region as
//!
//! ```text
//! region = fork(t) + max_i(load_i * jitter_i) + sched(t) + barrier(t)
//! ```
//!
//! where the per-thread loads follow the selected [`Schedule`]. Loop bodies
//! execute *sequentially* on the simulated rank's thread (correctness is
//! preserved; wall-clock is virtual), or not at all when only timing is
//! requested — mirroring the two fidelity modes of the message runtime.
//!
//! The sum `work/t + overhead(t)` is what produces the paper's *inflexion
//! point* (Fig. 10): past some thread count, adding threads makes the
//! region slower, and that point bounds the program's speedup (Eq. 6).

pub mod adaptive;
pub mod schedule;
pub mod team;

pub use adaptive::AdaptiveTeam;
pub use schedule::Schedule;
pub use team::Team;

#[cfg(test)]
mod tests {
    use super::*;
    use machine::{presets, OmpModel, VTime, Work};
    use mpisim::WorldBuilder;

    #[test]
    fn inflexion_point_emerges_from_the_model() {
        // With work W = 0.576 s and fork_per_thread = 1 ms, the analytic
        // optimum of W/t + a*t is t* = sqrt(W/a) = 24 — the KNL shape of
        // Fig. 10.
        let mut m = presets::ideal();
        m.cores_per_node = 1024; // plenty of cores: overhead-limited only
        m.omp = OmpModel {
            fork_per_thread: 1e-3,
            ..OmpModel::FREE
        };
        let time_at = |threads: usize| -> VTime {
            WorldBuilder::new(1)
                .machine(m.clone())
                .run(|p| {
                    let team = Team::new(threads);
                    team.for_cost_uniform(p, 576, Work::flops(1e6)); // 0.576 s
                    p.now()
                })
                .unwrap()
                .results[0]
        };
        let t8 = time_at(8);
        let t24 = time_at(24);
        let t96 = time_at(96);
        assert!(t24 < t8, "24 threads beat 8 ({t24} vs {t8})");
        assert!(t24 < t96, "24 threads beat 96 ({t24} vs {t96})");
    }
}
