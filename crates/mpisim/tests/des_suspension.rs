//! Integration tests for the DES engine's suspension/resume machinery
//! around wildcard receives: a rank that blocks on `Src::Any` suspends
//! its fiber into the event queue, is woken by each deposit, re-suspends
//! on a non-matching scan, and finally matches — all deterministically,
//! so reruns are bit-identical.

use mpisim::{Engine, Src, TagSel, WorldBuilder};

/// Rank 0 blocks on wildcard receives before any sender has run (it is
/// first in the ready heap), so every message arrival goes through the
/// suspend → deposit → wake → match cycle. Two runs must observe the
/// same (source, tag, payload) sequence.
#[test]
fn wildcard_receive_suspends_and_resumes_deterministically() {
    let run = || {
        WorldBuilder::new(4)
            .engine(Engine::Des)
            .seed(5)
            .run(|p| {
                let world = p.world();
                if p.world_rank() == 0 {
                    let mut got = Vec::new();
                    for _ in 0..3 {
                        let r = world.recv::<u64>(p, Src::Any, TagSel::Any);
                        got.push((r.src, r.tag, r.data[0]));
                    }
                    got
                } else {
                    let r = p.world_rank() as u64;
                    // Stagger send times in virtual time so arrival order
                    // is meaningful, not just heap order.
                    p.advance_secs(1e-3 * r as f64);
                    world.send(p, 0, r as i32, &[r]);
                    Vec::new()
                }
            })
            .expect("wildcard run failed")
            .results
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "rerun diverged under the DES engine");
    assert_eq!(first[0].len(), 3, "rank 0 matched all three sends");
    let mut sources: Vec<usize> = first[0].iter().map(|(s, _, _)| *s).collect();
    sources.sort_unstable();
    assert_eq!(sources, vec![1, 2, 3]);
    for (src, tag, payload) in &first[0] {
        assert_eq!(*tag as usize, *src);
        assert_eq!(*payload as usize, *src);
    }
}

/// A selective receive must survive being woken by deposits that do NOT
/// match: each miss re-suspends the fiber until the matching message
/// lands, and the skipped messages stay queued for later receives.
#[test]
fn nonmatching_deposits_resuspend_until_match() {
    let report = WorldBuilder::new(2)
        .engine(Engine::Des)
        .run(|p| {
            let world = p.world();
            if p.world_rank() == 0 {
                // Wait for tag 9 first although tags 1 and 2 arrive
                // earlier; each early deposit wakes rank 0, the scan
                // misses, and the fiber suspends again.
                let last = world.recv::<u32>(p, Src::Rank(1), TagSel::Is(9));
                let first = world.recv::<u32>(p, Src::Rank(1), TagSel::Is(1));
                let second = world.recv::<u32>(p, Src::Any, TagSel::Any);
                vec![last.data[0], first.data[0], second.data[0]]
            } else {
                world.send(p, 0, 1, &[10u32]);
                world.send(p, 0, 2, &[20u32]);
                world.send(p, 0, 9, &[90u32]);
                Vec::new()
            }
        })
        .expect("selective run failed");
    assert_eq!(report.results[0], vec![90, 10, 20]);
}

/// The same wildcard program on both engines: the matched sequence the
/// DES scheduler produces must be one the threads engine can also
/// produce — and with staggered virtual send times it is the unique
/// arrival-ordered one, so the results agree exactly.
#[test]
fn wildcard_matching_agrees_with_threads_engine() {
    let run = |engine| {
        WorldBuilder::new(3)
            .engine(engine)
            .seed(11)
            .run(|p| {
                let world = p.world();
                if p.world_rank() == 0 {
                    world.barrier(p);
                    let a = world.recv::<u32>(p, Src::Any, TagSel::Is(7));
                    let b = world.recv::<u32>(p, Src::Any, TagSel::Is(7));
                    vec![a.data[0], b.data[0]]
                } else {
                    world.send(p, 0, 7, &[p.world_rank() as u32]);
                    world.barrier(p);
                    Vec::new()
                }
            })
            .expect("run failed")
            .results
    };
    let des = run(Engine::Des);
    let threads = run(Engine::Threads);
    let mut des_sorted = des[0].clone();
    des_sorted.sort_unstable();
    assert_eq!(des_sorted, vec![1, 2]);
    assert_eq!(des, threads, "engines disagreed on wildcard matching");
}
