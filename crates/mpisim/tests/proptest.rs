//! Property tests for the runtime: collectives compute the right values
//! for arbitrary inputs, communicator splits partition the world, and
//! virtual time behaves causally under random workloads.

use machine::{presets, VTime, Work};
use mpisim::{dims_create, CartGrid, Src, TagSel, WorldBuilder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn allreduce_sums_arbitrary_vectors(
        nranks in 1usize..9,
        len in 1usize..32,
        base in -1000i64..1000,
    ) {
        let report = WorldBuilder::new(nranks)
            .run(move |p| {
                let world = p.world();
                let data: Vec<i64> = (0..len)
                    .map(|i| base + (p.world_rank() * 31 + i) as i64)
                    .collect();
                world.allreduce(p, data, |a, b| a + b)
            })
            .unwrap();
        let expect: Vec<i64> = (0..len)
            .map(|i| {
                (0..nranks)
                    .map(|r| base + (r * 31 + i) as i64)
                    .sum::<i64>()
            })
            .collect();
        for result in report.results {
            prop_assert_eq!(&result, &expect);
        }
    }

    #[test]
    fn scatter_gather_identity(nranks in 1usize..9, chunk in 1usize..16) {
        let report = WorldBuilder::new(nranks)
            .run(move |p| {
                let world = p.world();
                let data = (p.world_rank() == 0)
                    .then(|| (0..nranks * chunk).map(|x| x as u32).collect::<Vec<_>>());
                let mine = world.scatter(p, 0, data);
                world.gather(p, 0, mine)
            })
            .unwrap();
        let expect: Vec<u32> = (0..nranks * chunk).map(|x| x as u32).collect();
        prop_assert_eq!(&report.results[0], &expect);
    }

    #[test]
    fn alltoall_is_a_transpose(nranks in 1usize..7, chunk in 1usize..5) {
        let report = WorldBuilder::new(nranks)
            .run(move |p| {
                let world = p.world();
                let me = p.world_rank();
                let chunks: Vec<Vec<usize>> = (0..nranks)
                    .map(|dest| vec![me * 1000 + dest; chunk])
                    .collect();
                world.alltoall(p, chunks)
            })
            .unwrap();
        for (me, rows) in report.results.iter().enumerate() {
            for (src, data) in rows.iter().enumerate() {
                prop_assert_eq!(data, &vec![src * 1000 + me; chunk]);
            }
        }
    }

    #[test]
    fn scan_matches_prefix_sums(nranks in 1usize..9) {
        let report = WorldBuilder::new(nranks)
            .run(move |p| {
                let world = p.world();
                world.scan(p, vec![p.world_rank() as u64 + 1], |a, b| a + b)[0]
            })
            .unwrap();
        for (r, &got) in report.results.iter().enumerate() {
            let expect: u64 = (1..=r as u64 + 1).sum();
            prop_assert_eq!(got, expect);
        }
    }

    #[test]
    fn split_partitions_the_world(nranks in 1usize..13, ncolors in 1usize..5) {
        let report = WorldBuilder::new(nranks)
            .run(move |p| {
                let world = p.world();
                let color = (p.world_rank() % ncolors) as i32;
                let sub = world.split(p, Some(color), 0).unwrap();
                (color, sub.size(), sub.rank(), sub.world_rank_of(sub.rank()))
            })
            .unwrap();
        // Sizes by color sum to the world, local ranks are consistent, and
        // the member's own mapping points back at itself.
        let mut total = 0;
        for color in 0..ncolors as i32 {
            let members: Vec<_> = report
                .results
                .iter()
                .enumerate()
                .filter(|(_, (c, ..))| *c == color)
                .collect();
            if members.is_empty() {
                continue;
            }
            let size = members[0].1 .1;
            prop_assert_eq!(size, members.len());
            total += size;
            for (world_rank, (_, _, local, self_world)) in members {
                prop_assert_eq!(*self_world, world_rank);
                prop_assert!(*local < size);
            }
        }
        prop_assert_eq!(total, nranks);
    }

    #[test]
    fn message_payloads_arrive_intact(len in 0usize..512, tag in 0i32..100) {
        let report = WorldBuilder::new(2)
            .run(move |p| {
                let world = p.world();
                if p.world_rank() == 0 {
                    let data: Vec<u16> = (0..len).map(|x| (x * 7) as u16).collect();
                    world.send(p, 1, tag, &data);
                    Vec::new()
                } else {
                    world.recv::<u16>(p, Src::Rank(0), TagSel::Is(tag)).data
                }
            })
            .unwrap();
        let expect: Vec<u16> = (0..len).map(|x| (x * 7) as u16).collect();
        prop_assert_eq!(&report.results[1], &expect);
    }

    #[test]
    fn clocks_are_causal_under_random_work(
        seed in any::<u64>(),
        costs in prop::collection::vec(0u64..1_000_000, 4),
    ) {
        // Receiver's final time must be at least the sender's send time:
        // information cannot arrive before it was produced.
        let costs2 = costs.clone();
        let report = WorldBuilder::new(2)
            .machine(presets::nehalem_cluster())
            .seed(seed)
            .run(move |p| {
                let world = p.world();
                if p.world_rank() == 0 {
                    for &c in &costs2 {
                        p.compute(Work::flops(c as f64));
                        world.send(p, 1, 0, &[p.now().as_nanos()]);
                    }
                    p.now()
                } else {
                    let mut last_send = VTime::ZERO;
                    for _ in 0..costs2.len() {
                        let msg = world.recv::<u64>(p, Src::Rank(0), TagSel::Is(0));
                        let sent = VTime::from_nanos(msg.data[0]);
                        // Plain asserts: a rank panic surfaces as RunError
                        // and fails the proptest via unwrap below.
                        assert!(p.now() >= sent, "arrival before departure");
                        assert!(sent >= last_send, "FIFO per sender");
                        last_send = sent;
                    }
                    p.now()
                }
            })
            .unwrap();
        prop_assert!(report.makespan >= report.results[0].min(report.results[1]));
    }

    #[test]
    fn barrier_equalizes_arbitrary_skews(skews in prop::collection::vec(0u64..1 << 32, 1..9)) {
        let n = skews.len();
        let skews2 = skews.clone();
        let report = WorldBuilder::new(n)
            .run(move |p| {
                p.advance(VTime::from_nanos(skews2[p.world_rank()]));
                let world = p.world();
                world.barrier(p);
                p.now()
            })
            .unwrap();
        let max_skew = VTime::from_nanos(*skews.iter().max().unwrap());
        for t in &report.final_times {
            prop_assert_eq!(*t, max_skew);
        }
    }
}

proptest! {
    #[test]
    fn dims_create_product_and_balance(n in 1usize..10_000, ndims in 1usize..5) {
        let dims = dims_create(n, ndims);
        prop_assert_eq!(dims.len(), ndims);
        prop_assert_eq!(dims.iter().product::<usize>(), n);
        // Sorted decreasing.
        for w in dims.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn cart_grid_roundtrip(d0 in 1usize..8, d1 in 1usize..8, d2 in 1usize..8) {
        let g = CartGrid::new(vec![d0, d1, d2]);
        for rank in 0..g.size() {
            prop_assert_eq!(g.rank_of(&g.coords_of(rank)), rank);
            // Face neighbours are mutual.
            for n in g.face_neighbors(rank) {
                prop_assert!(g.face_neighbors(n).contains(&rank));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Failure injection: whatever rank dies at whatever point of a
    /// communication-heavy program, the world terminates with an error
    /// attributing the right rank — it never deadlocks (the test would
    /// time out) and never reports success.
    #[test]
    fn injected_failures_always_terminate_with_the_right_culprit(
        nranks in 2usize..8,
        steps in 1usize..6,
        fail_rank_seed in any::<u64>(),
        fail_step_seed in any::<u64>(),
        fail_in_collective in any::<bool>(),
    ) {
        let fail_rank = (fail_rank_seed % nranks as u64) as usize;
        let fail_step = (fail_step_seed % steps as u64) as usize;
        let result = WorldBuilder::new(nranks).run(move |p| {
            let world = p.world();
            for step in 0..steps {
                if p.world_rank() == fail_rank && step == fail_step {
                    if fail_in_collective {
                        // Die *inside* the collective pattern: others are
                        // already blocked in the rendezvous.
                        panic!("injected failure at step {step}");
                    }
                    panic!("injected failure before comm at step {step}");
                }
                // A mixed step: neighbour exchange + a collective.
                let n = world.size();
                let right = (p.world_rank() + 1) % n;
                let left = (p.world_rank() + n - 1) % n;
                let _ = world.sendrecv(
                    p,
                    right,
                    step as i32,
                    &[p.world_rank() as u32],
                    Src::Rank(left),
                    TagSel::Is(step as i32),
                );
                let _ = world.allreduce_sum_f64(p, 1.0);
            }
        });
        match result {
            Err(mpisim::RunError::RankPanicked { rank, message }) => {
                prop_assert_eq!(rank, fail_rank);
                prop_assert!(message.contains("injected failure"), "{}", message);
            }
            other => prop_assert!(false, "expected failure report, got {:?}", other.is_ok()),
        }
    }
}
