//! Misuse and failure-path tests: the runtime must fail loudly (like
//! `MPI_ERRORS_ARE_FATAL`) and never deadlock the world.

use mpisim::{RunError, Src, TagSel, WorldBuilder};

fn expect_panic_containing<F>(nranks: usize, fragment: &str, f: F)
where
    F: Fn(&mut mpisim::Proc) + Send + Sync,
{
    match WorldBuilder::new(nranks).run(f) {
        Err(RunError::RankPanicked { message, .. }) => {
            assert!(
                message.contains(fragment),
                "expected '{fragment}' in '{message}'"
            );
        }
        other => panic!("expected failure containing '{fragment}', got {other:?}"),
    }
}

#[test]
fn send_to_invalid_rank() {
    expect_panic_containing(2, "invalid rank", |p| {
        let world = p.world();
        world.send(p, 7, 0, &[1u8]);
    });
}

#[test]
fn receive_datatype_mismatch() {
    expect_panic_containing(2, "datatype mismatch", |p| {
        let world = p.world();
        if p.world_rank() == 0 {
            world.send(p, 1, 0, &[1u32]);
        } else {
            let _ = world.recv::<f64>(p, Src::Rank(0), TagSel::Is(0));
        }
    });
}

#[test]
fn scatter_with_indivisible_length() {
    expect_panic_containing(3, "not divisible", |p| {
        let world = p.world();
        let data = (p.world_rank() == 0).then(|| vec![1u8; 7]);
        let _ = world.scatter(p, 0, data);
    });
}

#[test]
fn scatterv_with_wrong_chunk_count() {
    expect_panic_containing(3, "one chunk per rank", |p| {
        let world = p.world();
        let chunks = (p.world_rank() == 0).then(|| vec![vec![1u8]; 2]); // 2 != 3
        let _ = world.scatterv(p, 0, chunks);
    });
}

#[test]
fn bcast_root_out_of_range() {
    expect_panic_containing(2, "root out of range", |p| {
        let world = p.world();
        let _ = world.bcast(p, 5, (p.world_rank() == 0).then(|| vec![1u8]));
    });
}

#[test]
fn bcast_data_on_non_root() {
    expect_panic_containing(2, "exactly on the root", |p| {
        let world = p.world();
        // Everyone passes Some: wrong.
        let _ = world.bcast(p, 0, Some(vec![1u8]));
    });
}

#[test]
fn mismatched_collectives_across_ranks() {
    expect_panic_containing(2, "collective mismatch", |p| {
        let world = p.world();
        if p.world_rank() == 0 {
            world.barrier(p);
        } else {
            let _ = world.allreduce_sum_f64(p, 1.0);
        }
    });
}

#[test]
fn reduce_length_mismatch() {
    expect_panic_containing(2, "different lengths", |p| {
        let world = p.world();
        let data = vec![1i64; 1 + p.world_rank()];
        let _ = world.reduce(p, 0, data, |a, b| a + b);
    });
}

#[test]
fn alltoall_wrong_chunk_count() {
    expect_panic_containing(3, "one chunk per rank", |p| {
        let world = p.world();
        let _ = world.alltoall(p, vec![vec![0u8]; 2]);
    });
}

#[test]
fn reduce_scatter_indivisible() {
    expect_panic_containing(3, "not divisible", |p| {
        let world = p.world();
        let _ = world.reduce_scatter_block(p, vec![0i64; 7], |a, b| a + b);
    });
}

#[test]
fn blocked_peers_unwind_when_a_rank_fails_mid_collective() {
    // Rank 1 dies while 0 and 2 sit in a barrier; the run must return
    // (not hang) and report rank 1.
    let result = WorldBuilder::new(3).run(|p| {
        if p.world_rank() == 1 {
            panic!("casualty");
        }
        let world = p.world();
        world.barrier(p);
    });
    match result {
        Err(RunError::RankPanicked { rank, message }) => {
            assert_eq!(rank, 1);
            assert!(message.contains("casualty"));
        }
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn blocked_receiver_unwinds_when_sender_fails() {
    let result = WorldBuilder::new(2).run(|p| {
        let world = p.world();
        if p.world_rank() == 0 {
            panic!("sender died before sending");
        }
        let _ = world.recv::<u8>(p, Src::Rank(0), TagSel::Any);
    });
    assert!(matches!(
        result,
        Err(RunError::RankPanicked { rank: 0, .. })
    ));
}

#[test]
fn probe_does_not_consume() {
    let report = WorldBuilder::new(2)
        .run(|p| {
            let world = p.world();
            if p.world_rank() == 0 {
                world.send(p, 1, 9, &[42u8]);
                0
            } else {
                // Spin (bounded) until the probe sees it.
                let mut probes = 0;
                while !world.probe(p, Src::Rank(0), TagSel::Is(9)) {
                    probes += 1;
                    assert!(probes < 1_000_000, "message never arrived");
                    std::thread::yield_now();
                }
                // Probing twice still true; receiving consumes it.
                assert!(world.probe(p, Src::Rank(0), TagSel::Is(9)));
                let msg = world.recv::<u8>(p, Src::Rank(0), TagSel::Is(9));
                assert!(!world.probe(p, Src::Rank(0), TagSel::Is(9)));
                msg.data[0] as usize
            }
        })
        .unwrap();
    assert_eq!(report.results[1], 42);
}

#[test]
fn split_color_none_excludes_only_those_ranks() {
    let report = WorldBuilder::new(5)
        .run(|p| {
            let world = p.world();
            let color = (p.world_rank() != 2).then_some(0);
            world.split(p, color, 0).map(|c| (c.size(), c.rank()))
        })
        .unwrap();
    assert_eq!(report.results[2], None);
    assert_eq!(report.results[0], Some((4, 0)));
    assert_eq!(report.results[4], Some((4, 3)));
}

#[test]
fn nested_splits_work() {
    // Split the world, then split the sub-communicator again.
    let report = WorldBuilder::new(8)
        .run(|p| {
            let world = p.world();
            let half = world
                .split(p, Some((p.world_rank() / 4) as i32), 0)
                .unwrap();
            let quarter = half.split(p, Some((half.rank() / 2) as i32), 0).unwrap();
            let sum = quarter.allreduce(p, vec![p.world_rank() as u64], |a, b| a + b)[0];
            (quarter.size(), sum)
        })
        .unwrap();
    // Quarters: {0,1} {2,3} {4,5} {6,7}.
    assert_eq!(report.results[0], (2, 1));
    assert_eq!(report.results[3], (2, 5));
    assert_eq!(report.results[6], (2, 13));
}
